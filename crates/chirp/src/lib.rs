//! # chirp — the I/O proxy protocol of the Condor Java Universe
//!
//! "This library does not communicate directly with any storage resource,
//! but instead calls a proxy in the starter via a simple protocol called
//! Chirp" (Thain & Livny §2.2). This crate implements that protocol as a
//! disciplined example of the paper's Principle 4: every operation declares
//! a concise, finite explicit-error vocabulary, and any failure outside it
//! escapes by breaking the connection.
//!
//! * [`proto`] — requests, responses, the finite [`proto::ChirpError`]
//!   vocabulary, and the auditable interface declaration.
//! * [`wire`] — length-prefixed binary framing.
//! * [`cookie`] — the shared-secret authentication of §2.2.
//! * [`backend`] — storage behind the proxy, with injectable environmental
//!   faults (offline file system, expired credentials, timeouts).
//! * [`server`] — the proxy, in both the paper's redesigned (scoped) and
//!   original (naive generic) disciplines.
//! * [`transport`] — in-process and threaded loopback transports; a broken
//!   transport is the escaping error.
//! * [`tcp`] — the same protocol over a real `127.0.0.1` socket, where the
//!   client experiences escaping errors exactly as a real program does:
//!   the connection just closes.
//! * [`client`] — the job-side I/O library in both disciplines.
//!
//! ```
//! use chirp::prelude::*;
//!
//! let mut fs = MemFs::default();
//! fs.put("input.txt", b"hello");
//! let cookie = Cookie::generate(7);
//! let server = ChirpServer::new(fs, cookie.clone());
//! let mut client = ChirpClient::new(DirectTransport::new(server));
//!
//! client.auth(cookie.as_bytes()).unwrap();
//! let fd = client.open("input.txt", OpenMode::Read).unwrap();
//! assert_eq!(client.read_all(fd).unwrap(), b"hello");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod client;
pub mod cookie;
pub mod proto;
pub mod server;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use backend::{BackendFailure, EnvFault, FileBackend, MemFs};
pub use client::{ChirpClient, ClientDiscipline, IoError, IoResult};
pub use cookie::Cookie;
pub use proto::{ChirpError, Fd, FileInfo, OpenMode, Request, Response};
pub use server::{ChirpServer, DisconnectReason, ErrorDiscipline, ServerOutcome};
pub use tcp::{serve_once, TcpSession, TcpTransport};
pub use transport::{Broken, ChannelTransport, DirectTransport, Transport};

/// Convenient glob import.
pub mod prelude {
    pub use crate::backend::{EnvFault, FileBackend, MemFs};
    pub use crate::client::{ChirpClient, ClientDiscipline, IoError};
    pub use crate::cookie::Cookie;
    pub use crate::proto::{ChirpError, OpenMode, Request, Response};
    pub use crate::server::{ChirpServer, DisconnectReason, ErrorDiscipline, ServerOutcome};
    pub use crate::transport::{ChannelTransport, DirectTransport, Transport};
}
