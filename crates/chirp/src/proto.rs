//! The Chirp protocol vocabulary.
//!
//! Chirp is the simple protocol the Java I/O library speaks to the proxy in
//! the starter (§2.2 of the paper): "This library does not communicate
//! directly with any storage resource, but instead calls a proxy in the
//! starter via a simple protocol called Chirp."
//!
//! Following Principle 4, every operation declares a **concise and finite**
//! set of explicit error codes ([`explicit_errors_of`]). A failure outside
//! an operation's vocabulary is *never* returned as a response; the server
//! instead breaks the connection — the network form of an escaping error
//! ("On a network connection, an escaping error is communicated by breaking
//! the connection", §3.1).

use errorscope::interface::{ErrorVocabulary, InterfaceDecl};
use std::fmt;

/// A file descriptor in the proxy's table.
pub type Fd = u32;

/// Open mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; the file must exist.
    Read,
    /// Write-only; created if missing, truncated if present.
    Write,
    /// Write-only, appending; created if missing.
    Append,
}

impl OpenMode {
    /// Stable wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            OpenMode::Read => 0,
            OpenMode::Write => 1,
            OpenMode::Append => 2,
        }
    }

    /// Decode the wire byte.
    pub fn from_byte(b: u8) -> Option<OpenMode> {
        match b {
            0 => Some(OpenMode::Read),
            1 => Some(OpenMode::Write),
            2 => Some(OpenMode::Append),
            _ => None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Authenticate with the shared-secret cookie. Must be the first
    /// request on a connection.
    Auth {
        /// The cookie revealed to the job through the local file system.
        cookie: Vec<u8>,
    },
    /// Open a file.
    Open {
        /// Path within the backend namespace.
        path: String,
        /// Access mode.
        mode: OpenMode,
    },
    /// Read up to `len` bytes from an open file.
    Read {
        /// Descriptor from a prior `Open`.
        fd: Fd,
        /// Maximum bytes to return.
        len: u32,
    },
    /// Write bytes to an open file.
    Write {
        /// Descriptor from a prior `Open`.
        fd: Fd,
        /// The data.
        data: Vec<u8>,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor to release.
        fd: Fd,
    },
    /// Stat a path.
    Stat {
        /// Path to inspect.
        path: String,
    },
    /// Remove a file.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Rename a file.
    Rename {
        /// Existing path.
        from: String,
        /// New path.
        to: String,
    },
    /// Fetch a whole file in one round trip — the staging primitive the
    /// starter uses for input transfer.
    GetFile {
        /// Path to fetch.
        path: String,
    },
    /// Store a whole file in one round trip.
    PutFile {
        /// Destination path (created or truncated).
        path: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// Store a checkpoint image under an opaque key. Semantically a
    /// `PutFile` into the checkpoint namespace, but a distinct operation so
    /// the checkpoint server can enforce its own vocabulary and limits.
    PutCkpt {
        /// Checkpoint key, e.g. `ckpt/job3/attempt1`.
        key: String,
        /// The serialized checkpoint image bytes (opaque to the protocol).
        data: Vec<u8>,
    },
    /// Fetch a previously stored checkpoint image by key.
    GetCkpt {
        /// Checkpoint key to fetch.
        key: String,
    },
}

impl Request {
    /// The operation name, as used in vocabulary declarations.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Auth { .. } => "auth",
            Request::Open { .. } => "open",
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::Close { .. } => "close",
            Request::Stat { .. } => "stat",
            Request::Unlink { .. } => "unlink",
            Request::Rename { .. } => "rename",
            Request::GetFile { .. } => "getfile",
            Request::PutFile { .. } => "putfile",
            Request::PutCkpt { .. } => "put_ckpt",
            Request::GetCkpt { .. } => "get_ckpt",
        }
    }
}

/// File metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileInfo {
    /// Size in bytes.
    pub size: u64,
}

/// The explicit error codes of the Chirp protocol. This enum is the
/// protocol's whole explicit-error world: anything else that goes wrong is
/// an escaping error, delivered by disconnection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChirpError {
    /// The named file does not exist.
    NotFound,
    /// Permission denied.
    AccessDenied,
    /// No space for the write.
    DiskFull,
    /// The descriptor is not open (or wrong mode for the operation).
    BadFd,
    /// Too many open descriptors.
    TooManyOpen,
    /// The cookie presented at `auth` was wrong.
    NotAuthenticated,
    /// The destination of a rename already exists.
    AlreadyExists,
}

impl ChirpError {
    /// Stable wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            ChirpError::NotFound => 1,
            ChirpError::AccessDenied => 2,
            ChirpError::DiskFull => 3,
            ChirpError::BadFd => 4,
            ChirpError::TooManyOpen => 5,
            ChirpError::NotAuthenticated => 6,
            ChirpError::AlreadyExists => 7,
        }
    }

    /// Decode the wire byte.
    pub fn from_byte(b: u8) -> Option<ChirpError> {
        match b {
            1 => Some(ChirpError::NotFound),
            2 => Some(ChirpError::AccessDenied),
            3 => Some(ChirpError::DiskFull),
            4 => Some(ChirpError::BadFd),
            5 => Some(ChirpError::TooManyOpen),
            6 => Some(ChirpError::NotAuthenticated),
            7 => Some(ChirpError::AlreadyExists),
            _ => None,
        }
    }

    /// The [`errorscope`] error-code name for this condition.
    pub fn code_name(self) -> &'static str {
        match self {
            ChirpError::NotFound => "FileNotFound",
            ChirpError::AccessDenied => "AccessDenied",
            ChirpError::DiskFull => "DiskFull",
            ChirpError::BadFd => "BadFileDescriptor",
            ChirpError::TooManyOpen => "TooManyOpenFiles",
            ChirpError::NotAuthenticated => "NotAuthenticated",
            ChirpError::AlreadyExists => "AlreadyExists",
        }
    }
}

impl fmt::Display for ChirpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code_name())
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic success (auth, close, unlink, rename).
    Ok,
    /// Successful open.
    Opened {
        /// The new descriptor.
        fd: Fd,
    },
    /// Successful read; an empty payload means end of file.
    Data {
        /// Bytes read.
        data: Vec<u8>,
    },
    /// Successful write.
    Written {
        /// Bytes accepted (always all of them — short writes are not part
        /// of the contract).
        len: u32,
    },
    /// Successful stat.
    Info(FileInfo),
    /// An explicit, in-vocabulary error.
    Error(ChirpError),
}

/// The per-operation explicit-error vocabularies (Principle 4). Mirrors the
/// paper's revised `FileWriter`: opening is subject to namespace errors;
/// reads and writes only to the errors that can strike a locked-open file.
pub fn explicit_errors_of(op: &str) -> Vec<ChirpError> {
    use ChirpError::*;
    match op {
        "auth" => vec![NotAuthenticated],
        "open" => vec![NotFound, AccessDenied, TooManyOpen],
        "read" => vec![BadFd],
        "write" => vec![DiskFull, BadFd],
        "close" => vec![BadFd],
        "stat" => vec![NotFound, AccessDenied],
        "unlink" => vec![NotFound, AccessDenied],
        "rename" => vec![NotFound, AccessDenied, AlreadyExists],
        "getfile" => vec![NotFound, AccessDenied],
        "putfile" => vec![AccessDenied, DiskFull],
        // Checkpoint traffic. A missing checkpoint is an ordinary explicit
        // answer to `get_ckpt` (first attempt of a job has none); storage
        // refusals are explicit on `put_ckpt` so the starter can fall back
        // to non-checkpointed execution rather than treating a full disk as
        // an environmental catastrophe.
        "put_ckpt" => vec![AccessDenied, DiskFull],
        "get_ckpt" => vec![NotFound, AccessDenied],
        _ => vec![],
    }
}

/// The whole protocol contract as an [`errorscope`] interface declaration,
/// suitable for auditing.
pub fn chirp_interface() -> InterfaceDecl {
    let ops = [
        "auth", "open", "read", "write", "close", "stat", "unlink", "rename", "getfile", "putfile",
        "put_ckpt", "get_ckpt",
    ];
    let mut decl = InterfaceDecl::new("chirp");
    for op in ops {
        decl = decl.op(
            op,
            ErrorVocabulary::finite(
                explicit_errors_of(op)
                    .into_iter()
                    .map(|e| errorscope::ErrorCode::new(e.code_name())),
            ),
        );
    }
    decl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bytes_round_trip() {
        for b in 1..=7u8 {
            let e = ChirpError::from_byte(b).unwrap();
            assert_eq!(e.to_byte(), b);
        }
        assert_eq!(ChirpError::from_byte(0), None);
        assert_eq!(ChirpError::from_byte(99), None);
    }

    #[test]
    fn mode_bytes_round_trip() {
        for m in [OpenMode::Read, OpenMode::Write, OpenMode::Append] {
            assert_eq!(OpenMode::from_byte(m.to_byte()), Some(m));
        }
        assert_eq!(OpenMode::from_byte(9), None);
    }

    #[test]
    fn write_vocabulary_matches_paper() {
        // "write throws DiskFull" — and emphatically NOT FileNotFound.
        let v = explicit_errors_of("write");
        assert!(v.contains(&ChirpError::DiskFull));
        assert!(!v.contains(&ChirpError::NotFound));
        // open IS subject to namespace errors.
        let v = explicit_errors_of("open");
        assert!(v.contains(&ChirpError::NotFound));
        assert!(v.contains(&ChirpError::AccessDenied));
    }

    #[test]
    fn interface_is_concise_and_finite() {
        let decl = chirp_interface();
        assert!(decl.is_concise_and_finite());
        assert!(errorscope::audit::audit_interface(&decl).is_empty());
    }

    #[test]
    fn interface_escapes_out_of_vocabulary() {
        use errorscope::interface::Conformance;
        let decl = chirp_interface();
        let timeout = errorscope::ErrorCode::new("ConnectionTimedOut");
        for op in ["open", "read", "write", "close"] {
            assert_eq!(decl.conformance(op, &timeout), Conformance::MustEscape);
        }
        let disk_full = errorscope::ErrorCode::new("DiskFull");
        assert_eq!(
            decl.conformance("write", &disk_full),
            Conformance::DeliverExplicit
        );
        assert_eq!(
            decl.conformance("read", &disk_full),
            Conformance::MustEscape
        );
    }

    #[test]
    fn request_op_names() {
        assert_eq!(
            Request::Open {
                path: "x".into(),
                mode: OpenMode::Read
            }
            .op(),
            "open"
        );
        assert_eq!(Request::Auth { cookie: vec![] }.op(), "auth");
        assert_eq!(
            Request::Rename {
                from: "a".into(),
                to: "b".into()
            }
            .op(),
            "rename"
        );
        assert_eq!(
            Request::PutCkpt {
                key: "ckpt/job1/attempt0".into(),
                data: vec![]
            }
            .op(),
            "put_ckpt"
        );
        assert_eq!(
            Request::GetCkpt {
                key: "ckpt/job1/attempt0".into()
            }
            .op(),
            "get_ckpt"
        );
    }

    #[test]
    fn checkpoint_vocabularies() {
        // A first-attempt job has no checkpoint: NotFound is an ordinary
        // explicit answer to get_ckpt, never a disconnect.
        let v = explicit_errors_of("get_ckpt");
        assert!(v.contains(&ChirpError::NotFound));
        // Storing may legitimately hit a full disk.
        let v = explicit_errors_of("put_ckpt");
        assert!(v.contains(&ChirpError::DiskFull));
        assert!(!v.contains(&ChirpError::NotFound));
    }
}
