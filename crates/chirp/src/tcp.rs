//! A real TCP loopback transport.
//!
//! "The connection is established from one process to another on the
//! loopback network interface" (§2.2). This module runs the Chirp proxy on
//! an actual `127.0.0.1` socket: the starter binds an ephemeral port,
//! reveals it (together with the cookie) through the job's scratch
//! directory, and the I/O library dials in.
//!
//! Unlike [`crate::transport::DirectTransport`], the client here learns of
//! an escaping error exactly the way a real program does: **the socket
//! closes**, with no reason attached. The starter-side reason is recorded
//! in the value returned by the server thread — observable by the starter,
//! never by the job, which is precisely the paper's separation.

use crate::backend::FileBackend;
use crate::proto::{Request, Response};
use crate::server::{ChirpServer, DisconnectReason, ServerOutcome};
use crate::transport::{Broken, Transport};
use crate::wire::{
    decode_request, decode_response, deframe, encode_request, encode_response, frame,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

/// What the server thread returns to the starter when the session ends.
pub struct TcpSession<B: FileBackend> {
    /// The server, with its backend and counters.
    pub server: ChirpServer<B>,
    /// Why the connection ended, if the server ended it.
    pub disconnect: Option<DisconnectReason>,
}

/// Bind an ephemeral loopback port and serve exactly one Chirp session on
/// it. Returns the address to dial and the server thread's handle.
pub fn serve_once<B: FileBackend + 'static>(
    mut server: ChirpServer<B>,
) -> std::io::Result<(SocketAddr, JoinHandle<TcpSession<B>>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let Ok((mut stream, _peer)) = listener.accept() else {
            return TcpSession {
                server,
                disconnect: None,
            };
        };
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Drain complete frames already buffered.
            loop {
                match deframe(&buf) {
                    Ok(Some((payload, used))) => {
                        buf.drain(..used);
                        let req = match decode_request(&payload) {
                            Ok(r) => r,
                            Err(e) => {
                                return TcpSession {
                                    server,
                                    disconnect: Some(DisconnectReason::ProtocolViolation(
                                        e.to_string(),
                                    )),
                                }
                            }
                        };
                        match server.handle(&req) {
                            ServerOutcome::Reply(resp) => {
                                let bytes = frame(&encode_response(&resp));
                                if stream.write_all(&bytes).is_err() {
                                    return TcpSession {
                                        server,
                                        disconnect: None,
                                    };
                                }
                            }
                            ServerOutcome::Disconnect(reason) => {
                                // The escaping error: just close the socket.
                                return TcpSession {
                                    server,
                                    disconnect: Some(reason),
                                };
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return TcpSession {
                            server,
                            disconnect: Some(DisconnectReason::ProtocolViolation(e.to_string())),
                        }
                    }
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Client hung up.
                    return TcpSession {
                        server,
                        disconnect: None,
                    };
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => {
                    return TcpSession {
                        server,
                        disconnect: None,
                    }
                }
            }
        }
    });
    Ok((addr, handle))
}

/// The client side: a framed connection over a real socket.
pub struct TcpTransport {
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Dial the proxy.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream: Some(stream),
            buf: Vec::new(),
        })
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, Broken> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(Broken {
                detail: "connection already closed".into(),
                reason: None,
            });
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match deframe(&self.buf) {
                Ok(Some((payload, used))) => {
                    self.buf.drain(..used);
                    return Ok(payload);
                }
                Ok(None) => {}
                Err(e) => {
                    self.stream = None;
                    return Err(Broken {
                        detail: e.to_string(),
                        reason: None,
                    });
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // The server hung up — the escaping error as the
                    // program actually experiences it: silence.
                    self.stream = None;
                    return Err(Broken {
                        detail: "connection closed by proxy".into(),
                        reason: None,
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => {
                    self.stream = None;
                    return Err(Broken {
                        detail: format!("socket error: {e}"),
                        reason: None,
                    });
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, Broken> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(Broken {
                detail: "connection already closed".into(),
                reason: None,
            });
        };
        let bytes = frame(&encode_request(req));
        if let Err(e) = stream.write_all(&bytes) {
            self.stream = None;
            return Err(Broken {
                detail: format!("send failed: {e}"),
                reason: None,
            });
        }
        let payload = self.read_frame()?;
        decode_response(&payload).map_err(|e| Broken {
            detail: e.to_string(),
            reason: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EnvFault, MemFs};
    use crate::client::{ChirpClient, IoError};
    use crate::cookie::Cookie;
    use crate::proto::OpenMode;
    use errorscope::Scope;

    #[test]
    fn full_session_over_real_sockets() {
        let mut fs = MemFs::default();
        fs.put("input.txt", b"over tcp");
        let cookie = Cookie::generate(88);
        let server = ChirpServer::new(fs, cookie.clone());
        let (addr, handle) = serve_once(server).expect("bind loopback");

        let transport = TcpTransport::connect(addr).expect("dial");
        let mut lib = ChirpClient::new(transport);
        lib.auth(cookie.as_bytes()).expect("cookie over tcp");

        let fd = lib.open("input.txt", OpenMode::Read).expect("open");
        assert_eq!(lib.read_all(fd).unwrap(), b"over tcp");
        lib.close(fd).unwrap();

        let out = lib.open("out.txt", OpenMode::Write).unwrap();
        lib.write(out, b"result").unwrap();
        lib.close(out).unwrap();
        assert_eq!(lib.stat("out.txt").unwrap().size, 6);

        drop(lib); // hang up
        let session = handle.join().unwrap();
        assert!(session.disconnect.is_none());
        assert!(session.server.requests_handled >= 6);
        assert_eq!(
            session.server.backend_ref().get("out.txt"),
            Some(&b"result"[..])
        );
    }

    #[test]
    fn env_fault_closes_the_socket_and_client_escapes_blind() {
        let mut fs = MemFs::default();
        fs.put("f", b"x");
        fs.set_fault_after(4, EnvFault::FilesystemOffline);
        let cookie = Cookie::generate(89);
        let server = ChirpServer::new(fs, cookie.clone());
        let (addr, handle) = serve_once(server).unwrap();

        let mut lib = ChirpClient::new(TcpTransport::connect(addr).unwrap());
        lib.auth(cookie.as_bytes()).unwrap();
        let fd = lib.open("f", OpenMode::Read).unwrap();
        // Keep reading until the backend fault strikes and the proxy hangs
        // up on us.
        let mut saw_escape = false;
        for _ in 0..10 {
            match lib.read(fd, 1) {
                Ok(_) => continue,
                Err(IoError::Escape(se)) => {
                    // Over a real socket, the client cannot know why: the
                    // escape defaults to network scope — indeterminate, to
                    // be widened with time (§5).
                    assert_eq!(se.scope, Scope::Network);
                    saw_escape = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_escape);

        // The starter, on its side, knows exactly why.
        let session = handle.join().unwrap();
        assert_eq!(
            session.disconnect,
            Some(DisconnectReason::Env(EnvFault::FilesystemOffline))
        );
    }

    #[test]
    fn wrong_cookie_is_explicit_over_tcp() {
        let server = ChirpServer::new(MemFs::default(), Cookie::generate(90));
        let (addr, handle) = serve_once(server).unwrap();
        let mut lib = ChirpClient::new(TcpTransport::connect(addr).unwrap());
        let err = lib.auth(&[0u8; 32]).unwrap_err();
        assert!(matches!(
            err,
            IoError::Explicit(crate::proto::ChirpError::NotAuthenticated)
        ));
        drop(lib);
        handle.join().unwrap();
    }

    #[test]
    fn garbage_frames_break_the_connection() {
        let server = ChirpServer::new(MemFs::default(), Cookie::generate(91));
        let (addr, handle) = serve_once(server).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        // A frame whose payload is not a valid request.
        raw.write_all(&frame(&[0xFF, 0x00, 0x01])).unwrap();
        let mut buf = [0u8; 16];
        let n = raw.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must hang up, not answer");
        let session = handle.join().unwrap();
        assert!(matches!(
            session.disconnect,
            Some(DisconnectReason::ProtocolViolation(_))
        ));
    }
}
