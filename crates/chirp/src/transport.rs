//! Transports carrying Chirp frames between the I/O library and the proxy.
//!
//! Two implementations:
//!
//! * [`DirectTransport`] — the client and server in one process, every
//!   message still passing through the real wire encoding. This is what the
//!   simulated grid uses: deterministic, allocation-cheap, but bytes on the
//!   "wire" are real bytes.
//! * [`ChannelTransport`] — the server on its own thread behind crossbeam
//!   channels, demonstrating the protocol is not simulation-only. The
//!   connection established "from one process to another on the loopback
//!   network interface" (§2.2).
//!
//! A transport failure *is* the escaping error: "On a network connection,
//! an escaping error is communicated by breaking the connection" (§3.1).
//! [`Broken`] carries the disconnect reason when the local end can know it
//! (the starter hosts the proxy, so in-process it always can).

use crate::backend::FileBackend;
use crate::proto::{Request, Response};
use crate::server::{ChirpServer, DisconnectReason, ServerOutcome};
use crate::wire::{
    decode_request, decode_response, deframe, encode_request, encode_response, frame,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The connection is gone. Whatever the client was doing cannot be
/// expressed as a response — this is the network-level escaping error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Broken {
    /// Human-readable detail.
    pub detail: String,
    /// The server's reason, when observable from this side.
    pub reason: Option<DisconnectReason>,
}

impl std::fmt::Display for Broken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connection broken: {}", self.detail)
    }
}

impl std::error::Error for Broken {}

/// A request/reply channel to a Chirp proxy.
pub trait Transport {
    /// Send one request and await the reply. `Err` means the connection
    /// broke — before, during, or instead of the reply.
    fn call(&mut self, req: &Request) -> Result<Response, Broken>;
}

/// Client and server in one process, through the full wire encoding.
pub struct DirectTransport<B: FileBackend> {
    server: Option<ChirpServer<B>>,
    /// The reason the connection broke, observable by the hosting starter.
    pub last_disconnect: Option<DisconnectReason>,
}

impl<B: FileBackend> DirectTransport<B> {
    /// Wrap a server.
    pub fn new(server: ChirpServer<B>) -> Self {
        DirectTransport {
            server: Some(server),
            last_disconnect: None,
        }
    }

    /// Access the server (e.g. for fault injection), if still connected.
    pub fn server_mut(&mut self) -> Option<&mut ChirpServer<B>> {
        self.server.as_mut()
    }
}

impl<B: FileBackend> Transport for DirectTransport<B> {
    fn call(&mut self, req: &Request) -> Result<Response, Broken> {
        let Some(server) = self.server.as_mut() else {
            return Err(Broken {
                detail: "connection already closed".into(),
                reason: self.last_disconnect.clone(),
            });
        };
        // Round-trip through the real encoding: any encoding bug is a test
        // failure, not a silent shortcut.
        let framed = frame(&encode_request(req));
        let (payload, _) = deframe(&framed)
            .expect("self-framed request")
            .expect("complete frame");
        let decoded = decode_request(&payload).map_err(|e| Broken {
            detail: format!("request failed to decode: {e}"),
            reason: None,
        })?;
        match server.handle(&decoded) {
            ServerOutcome::Reply(resp) => {
                let framed = frame(&encode_response(&resp));
                let (payload, _) = deframe(&framed)
                    .expect("self-framed response")
                    .expect("complete frame");
                decode_response(&payload).map_err(|e| Broken {
                    detail: format!("response failed to decode: {e}"),
                    reason: None,
                })
            }
            ServerOutcome::Disconnect(reason) => {
                self.last_disconnect = Some(reason.clone());
                self.server = None;
                Err(Broken {
                    detail: format!("server disconnected: {reason:?}"),
                    reason: Some(reason),
                })
            }
        }
    }
}

/// The threaded loopback transport.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Disconnect reason recorded by the server thread (the starter's view).
    pub server_side_reason: Arc<Mutex<Option<DisconnectReason>>>,
    closed: bool,
}

impl ChannelTransport {
    /// Spawn `server` on its own thread and return a connected transport
    /// plus the server thread's handle.
    pub fn spawn<B: FileBackend + 'static>(
        mut server: ChirpServer<B>,
    ) -> (ChannelTransport, JoinHandle<ChirpServer<B>>) {
        let (req_tx, req_rx) = bounded::<Vec<u8>>(16);
        let (resp_tx, resp_rx) = bounded::<Vec<u8>>(16);
        let reason: Arc<Mutex<Option<DisconnectReason>>> = Arc::new(Mutex::new(None));
        let reason_server = Arc::clone(&reason);

        let handle = std::thread::spawn(move || {
            let mut buf: Vec<u8> = Vec::new();
            while let Ok(chunk) = req_rx.recv() {
                buf.extend_from_slice(&chunk);
                loop {
                    match deframe(&buf) {
                        Ok(Some((payload, used))) => {
                            buf.drain(..used);
                            let req = match decode_request(&payload) {
                                Ok(r) => r,
                                Err(e) => {
                                    *reason_server.lock() =
                                        Some(DisconnectReason::ProtocolViolation(e.to_string()));
                                    return server; // drop channels: connection breaks
                                }
                            };
                            match server.handle(&req) {
                                ServerOutcome::Reply(resp) => {
                                    let bytes = frame(&encode_response(&resp));
                                    if resp_tx.send(bytes).is_err() {
                                        return server; // client went away
                                    }
                                }
                                ServerOutcome::Disconnect(r) => {
                                    *reason_server.lock() = Some(r);
                                    return server;
                                }
                            }
                        }
                        Ok(None) => break, // need more bytes
                        Err(e) => {
                            *reason_server.lock() =
                                Some(DisconnectReason::ProtocolViolation(e.to_string()));
                            return server;
                        }
                    }
                }
            }
            server
        });

        (
            ChannelTransport {
                tx: req_tx,
                rx: resp_rx,
                server_side_reason: reason,
                closed: false,
            },
            handle,
        )
    }
}

impl Transport for ChannelTransport {
    fn call(&mut self, req: &Request) -> Result<Response, Broken> {
        if self.closed {
            return Err(Broken {
                detail: "connection already closed".into(),
                reason: self.server_side_reason.lock().clone(),
            });
        }
        let bytes = frame(&encode_request(req));
        if self.tx.send(bytes).is_err() {
            self.closed = true;
            return Err(Broken {
                detail: "send failed: server hung up".into(),
                reason: self.server_side_reason.lock().clone(),
            });
        }
        match self.rx.recv() {
            Ok(chunk) => {
                let (payload, _) = deframe(&chunk)
                    .map_err(|e| Broken {
                        detail: e.to_string(),
                        reason: None,
                    })?
                    .ok_or_else(|| Broken {
                        detail: "short frame from server".into(),
                        reason: None,
                    })?;
                decode_response(&payload).map_err(|e| Broken {
                    detail: e.to_string(),
                    reason: None,
                })
            }
            Err(_) => {
                self.closed = true;
                Err(Broken {
                    detail: "recv failed: server hung up".into(),
                    reason: self.server_side_reason.lock().clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EnvFault, MemFs};
    use crate::cookie::Cookie;
    use crate::proto::{ChirpError, OpenMode};

    fn authed_direct() -> DirectTransport<MemFs> {
        let mut fs = MemFs::default();
        fs.put("in", b"abc");
        let server = ChirpServer::new(fs, Cookie::generate(1));
        let mut t = DirectTransport::new(server);
        let r = t
            .call(&Request::Auth {
                cookie: Cookie::generate(1).as_bytes().to_vec(),
            })
            .unwrap();
        assert_eq!(r, Response::Ok);
        t
    }

    #[test]
    fn direct_round_trip() {
        let mut t = authed_direct();
        let r = t
            .call(&Request::Open {
                path: "in".into(),
                mode: OpenMode::Read,
            })
            .unwrap();
        let Response::Opened { fd } = r else {
            panic!("{r:?}")
        };
        let r = t.call(&Request::Read { fd, len: 10 }).unwrap();
        assert_eq!(
            r,
            Response::Data {
                data: b"abc".to_vec()
            }
        );
    }

    #[test]
    fn direct_disconnect_breaks_connection_permanently() {
        let mut t = authed_direct();
        let Response::Opened { fd } = t
            .call(&Request::Open {
                path: "in".into(),
                mode: OpenMode::Read,
            })
            .unwrap()
        else {
            panic!()
        };
        t.server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::FilesystemOffline));
        let err = t.call(&Request::Read { fd, len: 1 }).unwrap_err();
        assert_eq!(
            err.reason,
            Some(DisconnectReason::Env(EnvFault::FilesystemOffline))
        );
        // The connection stays broken.
        let err = t.call(&Request::Stat { path: "in".into() }).unwrap_err();
        assert!(err.detail.contains("closed"));
        assert_eq!(
            t.last_disconnect,
            Some(DisconnectReason::Env(EnvFault::FilesystemOffline))
        );
    }

    #[test]
    fn channel_transport_serves_requests() {
        let mut fs = MemFs::default();
        fs.put("data", b"threaded");
        let server = ChirpServer::new(fs, Cookie::generate(2));
        let (mut t, handle) = ChannelTransport::spawn(server);

        let r = t
            .call(&Request::Auth {
                cookie: Cookie::generate(2).as_bytes().to_vec(),
            })
            .unwrap();
        assert_eq!(r, Response::Ok);
        let Response::Opened { fd } = t
            .call(&Request::Open {
                path: "data".into(),
                mode: OpenMode::Read,
            })
            .unwrap()
        else {
            panic!()
        };
        let r = t.call(&Request::Read { fd, len: 100 }).unwrap();
        assert_eq!(
            r,
            Response::Data {
                data: b"threaded".to_vec()
            }
        );
        drop(t);
        let server = handle.join().unwrap();
        assert!(server.requests_handled >= 3);
    }

    #[test]
    fn channel_transport_surfaces_disconnect_reason() {
        let mut fs = MemFs::default();
        fs.put("data", b"x");
        fs.set_fault_after(2, EnvFault::CredentialsExpired);
        let server = ChirpServer::new(fs, Cookie::generate(3));
        let (mut t, handle) = ChannelTransport::spawn(server);

        t.call(&Request::Auth {
            cookie: Cookie::generate(3).as_bytes().to_vec(),
        })
        .unwrap();
        let Response::Opened { fd } = t
            .call(&Request::Open {
                path: "data".into(),
                mode: OpenMode::Read,
            })
            .unwrap()
        else {
            panic!()
        };
        // exists() consumed one op; read consumes the rest until the fault.
        let mut broke = None;
        for _ in 0..5 {
            match t.call(&Request::Read { fd, len: 1 }) {
                Ok(_) => continue,
                Err(b) => {
                    broke = Some(b);
                    break;
                }
            }
        }
        let b = broke.expect("connection should break");
        // The starter-side reason is recorded even if the client only saw a
        // hangup.
        let reason = b
            .reason
            .clone()
            .or_else(|| t.server_side_reason.lock().clone());
        assert_eq!(
            reason,
            Some(DisconnectReason::Env(EnvFault::CredentialsExpired))
        );
        handle.join().unwrap();
    }

    #[test]
    fn wrong_cookie_over_channel() {
        let server = ChirpServer::new(MemFs::default(), Cookie::generate(4));
        let (mut t, handle) = ChannelTransport::spawn(server);
        let r = t
            .call(&Request::Auth {
                cookie: vec![9; 32],
            })
            .unwrap();
        assert_eq!(r, Response::Error(ChirpError::NotAuthenticated));
        drop(t);
        handle.join().unwrap();
    }
}
