//! The proxy server that lives in the starter.
//!
//! The server applies the Chirp contract of [`crate::proto`]: a backend
//! failure that is *in* the operation's vocabulary is returned as an
//! explicit [`Response::Error`]; anything else — an environmental fault, or
//! a backend condition the operation's contract does not admit (the
//! paper's "file system subject to losing a file in the middle of a
//! write") — causes a [`ServerOutcome::Disconnect`]: the network form of an
//! escaping error.
//!
//! The server can also run in the **naive generic** discipline the paper's
//! first implementation used ("we blindly converted all possible explicit
//! errors from the proxy directly into corresponding Java exceptions … we
//! simply extended the basic IOException"): every failure is squeezed into
//! an explicit response, violating Principles 2 and 4. The E4 experiment
//! measures the difference.

use crate::backend::{BackendFailure, EnvFault, FileBackend};
use crate::cookie::Cookie;
use crate::proto::{explicit_errors_of, ChirpError, Fd, FileInfo, OpenMode, Request, Response};
use std::collections::BTreeMap;

/// How the server treats failures outside an operation's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorDiscipline {
    /// The paper's redesign: out-of-vocabulary failures escape by breaking
    /// the connection (Principles 2 and 4).
    Scoped,
    /// The paper's first, flawed implementation: everything becomes an
    /// explicit error, using the catch-all [`ChirpError::BadFd`]-like
    /// generic code. Kept as the experimental baseline.
    NaiveGeneric,
}

/// Why the server hung up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisconnectReason {
    /// An environmental fault from the backend.
    Env(EnvFault),
    /// The backend produced a condition the operation's contract does not
    /// admit (e.g. `NotFound` during `write`).
    ContractViolation {
        /// The operation whose contract was violated.
        op: &'static str,
        /// The out-of-contract condition.
        code: &'static str,
    },
    /// The client broke protocol (e.g. skipped authentication).
    ProtocolViolation(String),
}

/// The outcome of handling one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerOutcome {
    /// Send this response and continue.
    Reply(Response),
    /// Break the connection — an escaping error. The reason is available to
    /// the *starter* (the proxy's host program), never to the client.
    Disconnect(DisconnectReason),
}

struct OpenFile {
    path: String,
    mode: OpenMode,
    read_offset: u64,
}

/// A Chirp proxy server bound to one backend and one job cookie.
pub struct ChirpServer<B: FileBackend> {
    backend: B,
    cookie: Cookie,
    discipline: ErrorDiscipline,
    authenticated: bool,
    fds: BTreeMap<Fd, OpenFile>,
    next_fd: Fd,
    max_open: usize,
    /// Count of requests handled, for metrics.
    pub requests_handled: u64,
}

impl<B: FileBackend> ChirpServer<B> {
    /// A server in the scoped (redesigned) discipline.
    pub fn new(backend: B, cookie: Cookie) -> Self {
        ChirpServer {
            backend,
            cookie,
            discipline: ErrorDiscipline::Scoped,
            authenticated: false,
            fds: BTreeMap::new(),
            next_fd: 3,
            max_open: 64,
            requests_handled: 0,
        }
    }

    /// Switch discipline (builder style).
    pub fn with_discipline(mut self, d: ErrorDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// Cap on simultaneously open descriptors.
    pub fn with_max_open(mut self, n: usize) -> Self {
        self.max_open = n;
        self
    }

    /// Access the backend (e.g. to inject faults mid-session in tests).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Read-only backend access (post-session inspection).
    pub fn backend_ref(&self) -> &B {
        &self.backend
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.fds.len()
    }

    /// Handle one request.
    pub fn handle(&mut self, req: &Request) -> ServerOutcome {
        self.requests_handled += 1;
        if !self.authenticated {
            return match req {
                Request::Auth { cookie } => {
                    if self.cookie.verify(cookie) {
                        self.authenticated = true;
                        ServerOutcome::Reply(Response::Ok)
                    } else {
                        ServerOutcome::Reply(Response::Error(ChirpError::NotAuthenticated))
                    }
                }
                other => ServerOutcome::Disconnect(DisconnectReason::ProtocolViolation(format!(
                    "'{}' before authentication",
                    other.op()
                ))),
            };
        }
        match req {
            Request::Auth { .. } => ServerOutcome::Reply(Response::Ok), // idempotent re-auth
            Request::Open { path, mode } => self.do_open(path, *mode),
            Request::Read { fd, len } => self.do_read(*fd, *len),
            Request::Write { fd, data } => self.do_write(*fd, data),
            Request::Close { fd } => self.do_close(*fd),
            Request::Stat { path } => self.do_stat(path),
            Request::Unlink { path } => self.do_unlink(path),
            Request::Rename { from, to } => self.do_rename(from, to),
            Request::GetFile { path } => self.do_getfile(path),
            Request::PutFile { path, data } => self.do_putfile(path, data),
            Request::PutCkpt { key, data } => self.do_put_ckpt(key, data),
            Request::GetCkpt { key } => self.do_get_ckpt(key),
        }
    }

    fn do_open(&mut self, path: &str, mode: OpenMode) -> ServerOutcome {
        if self.fds.len() >= self.max_open {
            return self.explicit("open", ChirpError::TooManyOpen);
        }
        let prep = match mode {
            OpenMode::Read => match self.backend.exists(path) {
                Ok(true) => Ok(()),
                Ok(false) => Err(BackendFailure::NotFound),
                Err(e) => Err(e),
            },
            OpenMode::Write => self.backend.create(path),
            OpenMode::Append => match self.backend.exists(path) {
                Ok(true) => Ok(()),
                Ok(false) => self.backend.create(path),
                Err(e) => Err(e),
            },
        };
        if let Err(e) = prep {
            return self.map_failure("open", e);
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                mode,
                read_offset: 0,
            },
        );
        ServerOutcome::Reply(Response::Opened { fd })
    }

    fn do_read(&mut self, fd: Fd, len: u32) -> ServerOutcome {
        let Some(of) = self.fds.get(&fd) else {
            return self.explicit("read", ChirpError::BadFd);
        };
        if of.mode != OpenMode::Read {
            return self.explicit("read", ChirpError::BadFd);
        }
        let (path, offset) = (of.path.clone(), of.read_offset);
        match self.backend.read_at(&path, offset, len) {
            Ok(data) => {
                self.fds.get_mut(&fd).unwrap().read_offset += data.len() as u64;
                ServerOutcome::Reply(Response::Data { data })
            }
            Err(e) => self.map_failure("read", e),
        }
    }

    fn do_write(&mut self, fd: Fd, data: &[u8]) -> ServerOutcome {
        let Some(of) = self.fds.get(&fd) else {
            return self.explicit("write", ChirpError::BadFd);
        };
        if of.mode == OpenMode::Read {
            return self.explicit("write", ChirpError::BadFd);
        }
        let path = of.path.clone();
        match self.backend.append(&path, data) {
            Ok(()) => ServerOutcome::Reply(Response::Written {
                len: data.len() as u32,
            }),
            Err(e) => self.map_failure("write", e),
        }
    }

    fn do_close(&mut self, fd: Fd) -> ServerOutcome {
        if self.fds.remove(&fd).is_some() {
            ServerOutcome::Reply(Response::Ok)
        } else {
            self.explicit("close", ChirpError::BadFd)
        }
    }

    fn do_stat(&mut self, path: &str) -> ServerOutcome {
        match self.backend.size(path) {
            Ok(size) => ServerOutcome::Reply(Response::Info(FileInfo { size })),
            Err(e) => self.map_failure("stat", e),
        }
    }

    fn do_unlink(&mut self, path: &str) -> ServerOutcome {
        match self.backend.unlink(path) {
            Ok(()) => ServerOutcome::Reply(Response::Ok),
            Err(e) => self.map_failure("unlink", e),
        }
    }

    fn do_rename(&mut self, from: &str, to: &str) -> ServerOutcome {
        match self.backend.rename(from, to) {
            Ok(()) => ServerOutcome::Reply(Response::Ok),
            Err(e) => self.map_failure("rename", e),
        }
    }

    fn do_getfile(&mut self, path: &str) -> ServerOutcome {
        let size = match self.backend.size(path) {
            Ok(n) => n,
            Err(e) => return self.map_failure("getfile", e),
        };
        match self
            .backend
            .read_at(path, 0, size.min(u64::from(u32::MAX)) as u32)
        {
            Ok(data) => ServerOutcome::Reply(Response::Data { data }),
            Err(e) => self.map_failure("getfile", e),
        }
    }

    fn do_putfile(&mut self, path: &str, data: &[u8]) -> ServerOutcome {
        if let Err(e) = self.backend.create(path) {
            return self.map_failure("putfile", e);
        }
        match self.backend.append(path, data) {
            Ok(()) => ServerOutcome::Reply(Response::Written {
                len: data.len() as u32,
            }),
            Err(e) => self.map_failure("putfile", e),
        }
    }

    fn do_put_ckpt(&mut self, key: &str, data: &[u8]) -> ServerOutcome {
        // A checkpoint store is a truncating whole-file write under the key.
        // The image bytes are opaque here: integrity is the *restorer's*
        // concern (the starter validates the CRC and version before resuming),
        // the server only promises durable bytes-in, bytes-out.
        if let Err(e) = self.backend.create(key) {
            return self.map_failure("put_ckpt", e);
        }
        match self.backend.append(key, data) {
            Ok(()) => ServerOutcome::Reply(Response::Written {
                len: data.len() as u32,
            }),
            Err(e) => self.map_failure("put_ckpt", e),
        }
    }

    fn do_get_ckpt(&mut self, key: &str) -> ServerOutcome {
        let size = match self.backend.size(key) {
            Ok(n) => n,
            Err(e) => return self.map_failure("get_ckpt", e),
        };
        match self
            .backend
            .read_at(key, 0, size.min(u64::from(u32::MAX)) as u32)
        {
            Ok(data) => ServerOutcome::Reply(Response::Data { data }),
            Err(e) => self.map_failure("get_ckpt", e),
        }
    }

    /// Return an explicit error, which is always legitimate because callers
    /// only pass codes from the operation's own vocabulary.
    fn explicit(&self, op: &'static str, code: ChirpError) -> ServerOutcome {
        debug_assert!(
            explicit_errors_of(op).contains(&code),
            "{code} is not in {op}'s vocabulary"
        );
        ServerOutcome::Reply(Response::Error(code))
    }

    /// Map a backend failure through the operation's contract.
    fn map_failure(&self, op: &'static str, failure: BackendFailure) -> ServerOutcome {
        let candidate = match failure {
            BackendFailure::NotFound => Some(ChirpError::NotFound),
            BackendFailure::AccessDenied => Some(ChirpError::AccessDenied),
            BackendFailure::DiskFull => Some(ChirpError::DiskFull),
            BackendFailure::AlreadyExists => Some(ChirpError::AlreadyExists),
            BackendFailure::Env(_) => None,
        };
        match (candidate, self.discipline) {
            // In-vocabulary: explicit, in either discipline.
            (Some(code), _) if explicit_errors_of(op).contains(&code) => {
                ServerOutcome::Reply(Response::Error(code))
            }
            // Out-of-vocabulary protocol-level condition.
            (Some(code), ErrorDiscipline::Scoped) => {
                ServerOutcome::Disconnect(DisconnectReason::ContractViolation {
                    op,
                    code: code.code_name(),
                })
            }
            (Some(code), ErrorDiscipline::NaiveGeneric) => {
                // The generic interface happily delivers it.
                ServerOutcome::Reply(Response::Error(code))
            }
            // Environmental fault.
            (None, ErrorDiscipline::Scoped) => {
                let BackendFailure::Env(f) = failure else {
                    unreachable!()
                };
                ServerOutcome::Disconnect(DisconnectReason::Env(f))
            }
            (None, ErrorDiscipline::NaiveGeneric) => {
                // "Although this was easy, it was incorrect": squeeze the
                // environmental fault into the nearest explicit code.
                ServerOutcome::Reply(Response::Error(ChirpError::AccessDenied))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemFs;

    fn server() -> ChirpServer<MemFs> {
        let mut fs = MemFs::new(1_000);
        fs.put("input.txt", b"hello world");
        let mut s = ChirpServer::new(fs, Cookie::generate(1));
        let out = s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Ok));
        s
    }

    fn open(s: &mut ChirpServer<MemFs>, path: &str, mode: OpenMode) -> Fd {
        match s.handle(&Request::Open {
            path: path.into(),
            mode,
        }) {
            ServerOutcome::Reply(Response::Opened { fd }) => fd,
            other => panic!("open failed: {other:?}"),
        }
    }

    #[test]
    fn auth_gate() {
        let fs = MemFs::default();
        let mut s = ChirpServer::new(fs, Cookie::generate(5));
        // Request before auth: protocol violation, disconnect.
        let out = s.handle(&Request::Stat { path: "x".into() });
        assert!(matches!(
            out,
            ServerOutcome::Disconnect(DisconnectReason::ProtocolViolation(_))
        ));
        // Wrong cookie: explicit NotAuthenticated (in auth's vocabulary).
        let mut s = ChirpServer::new(MemFs::default(), Cookie::generate(5));
        let out = s.handle(&Request::Auth {
            cookie: vec![0; 32],
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::NotAuthenticated))
        );
    }

    #[test]
    fn read_a_file_end_to_end() {
        let mut s = server();
        let fd = open(&mut s, "input.txt", OpenMode::Read);
        let out = s.handle(&Request::Read { fd, len: 5 });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Data {
                data: b"hello".to_vec()
            })
        );
        let out = s.handle(&Request::Read { fd, len: 100 });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Data {
                data: b" world".to_vec()
            })
        );
        // EOF: empty data.
        let out = s.handle(&Request::Read { fd, len: 100 });
        assert_eq!(out, ServerOutcome::Reply(Response::Data { data: vec![] }));
        assert_eq!(
            s.handle(&Request::Close { fd }),
            ServerOutcome::Reply(Response::Ok)
        );
        assert_eq!(s.open_count(), 0);
    }

    #[test]
    fn write_and_stat() {
        let mut s = server();
        let fd = open(&mut s, "out.txt", OpenMode::Write);
        let out = s.handle(&Request::Write {
            fd,
            data: b"result".to_vec(),
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Written { len: 6 }));
        let out = s.handle(&Request::Stat {
            path: "out.txt".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Info(FileInfo { size: 6 }))
        );
    }

    #[test]
    fn open_missing_file_is_explicit_not_found() {
        let mut s = server();
        let out = s.handle(&Request::Open {
            path: "no-such".into(),
            mode: OpenMode::Read,
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::NotFound))
        );
    }

    #[test]
    fn disk_full_is_explicit_on_write() {
        let mut fs = MemFs::new(4);
        fs.put("f", b"");
        let mut s = ChirpServer::new(fs, Cookie::generate(1));
        s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        let fd = open(&mut s, "f", OpenMode::Append);
        let out = s.handle(&Request::Write {
            fd,
            data: b"too much data".to_vec(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::DiskFull))
        );
    }

    #[test]
    fn bad_fd_is_explicit() {
        let mut s = server();
        assert_eq!(
            s.handle(&Request::Read { fd: 99, len: 1 }),
            ServerOutcome::Reply(Response::Error(ChirpError::BadFd))
        );
        assert_eq!(
            s.handle(&Request::Close { fd: 99 }),
            ServerOutcome::Reply(Response::Error(ChirpError::BadFd))
        );
        // Writing a read-only fd is BadFd too.
        let fd = open(&mut s, "input.txt", OpenMode::Read);
        assert_eq!(
            s.handle(&Request::Write {
                fd,
                data: b"x".to_vec()
            }),
            ServerOutcome::Reply(Response::Error(ChirpError::BadFd))
        );
    }

    #[test]
    fn env_fault_disconnects_in_scoped_discipline() {
        let mut s = server();
        let fd = open(&mut s, "input.txt", OpenMode::Read);
        s.backend_mut()
            .set_env_fault(Some(EnvFault::FilesystemOffline));
        let out = s.handle(&Request::Read { fd, len: 1 });
        assert_eq!(
            out,
            ServerOutcome::Disconnect(DisconnectReason::Env(EnvFault::FilesystemOffline))
        );
    }

    #[test]
    fn env_fault_masquerades_in_naive_discipline() {
        let mut fs = MemFs::default();
        fs.put("input.txt", b"data");
        let mut s = ChirpServer::new(fs, Cookie::generate(1))
            .with_discipline(ErrorDiscipline::NaiveGeneric);
        s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        let fd = open(&mut s, "input.txt", OpenMode::Read);
        s.backend_mut()
            .set_env_fault(Some(EnvFault::CredentialsExpired));
        // The naive proxy delivers an explicit error — exactly the bug the
        // paper describes.
        let out = s.handle(&Request::Read { fd, len: 1 });
        assert!(matches!(out, ServerOutcome::Reply(Response::Error(_))));
    }

    #[test]
    fn mid_write_vanishing_file_escapes() {
        // "Even if we could manage to build a bizarre distributed file
        // system subject to losing a file in the middle of a write, we
        // would expect to receive an escaping error, not an explicit
        // error."
        let mut s = server();
        let fd = open(&mut s, "victim", OpenMode::Write);
        // Remove the file behind the proxy's back.
        s.backend_mut().unlink("victim").unwrap();
        let out = s.handle(&Request::Write {
            fd,
            data: b"x".to_vec(),
        });
        assert_eq!(
            out,
            ServerOutcome::Disconnect(DisconnectReason::ContractViolation {
                op: "write",
                code: "FileNotFound",
            })
        );
    }

    #[test]
    fn too_many_open_is_explicit() {
        let mut fs = MemFs::default();
        fs.put("f", b"x");
        let mut s = ChirpServer::new(fs, Cookie::generate(1)).with_max_open(2);
        s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        open(&mut s, "f", OpenMode::Read);
        open(&mut s, "f", OpenMode::Read);
        let out = s.handle(&Request::Open {
            path: "f".into(),
            mode: OpenMode::Read,
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::TooManyOpen))
        );
    }

    #[test]
    fn getfile_and_putfile() {
        let mut s = server();
        let out = s.handle(&Request::GetFile {
            path: "input.txt".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Data {
                data: b"hello world".to_vec()
            })
        );
        let out = s.handle(&Request::PutFile {
            path: "staged.bin".into(),
            data: vec![7; 32],
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Written { len: 32 }));
        // PutFile truncates.
        let out = s.handle(&Request::PutFile {
            path: "staged.bin".into(),
            data: vec![1; 4],
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Written { len: 4 }));
        let out = s.handle(&Request::Stat {
            path: "staged.bin".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Info(FileInfo { size: 4 }))
        );
        // Missing source is an explicit in-vocabulary error.
        let out = s.handle(&Request::GetFile {
            path: "ghost".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::NotFound))
        );
    }

    #[test]
    fn putfile_disk_full_is_explicit() {
        let fs = MemFs::new(8);
        let mut s = ChirpServer::new(fs, Cookie::generate(1));
        s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        let out = s.handle(&Request::PutFile {
            path: "big".into(),
            data: vec![0; 100],
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::DiskFull))
        );
    }

    #[test]
    fn checkpoint_store_and_fetch() {
        let mut s = server();
        let image = vec![0xC4u8; 128];
        let out = s.handle(&Request::PutCkpt {
            key: "ckpt/job7/attempt0".into(),
            data: image.clone(),
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Written { len: 128 }));
        let out = s.handle(&Request::GetCkpt {
            key: "ckpt/job7/attempt0".into(),
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Data { data: image }));
        // Re-put truncates: a fresh checkpoint fully replaces the old one.
        let out = s.handle(&Request::PutCkpt {
            key: "ckpt/job7/attempt0".into(),
            data: vec![1; 4],
        });
        assert_eq!(out, ServerOutcome::Reply(Response::Written { len: 4 }));
        let out = s.handle(&Request::GetCkpt {
            key: "ckpt/job7/attempt0".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Data { data: vec![1; 4] })
        );
    }

    #[test]
    fn missing_checkpoint_is_explicit_not_found() {
        // First attempt of a job: no checkpoint exists. The answer must be
        // an in-vocabulary explicit error, never a disconnect.
        let mut s = server();
        let out = s.handle(&Request::GetCkpt {
            key: "ckpt/job99/attempt0".into(),
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::NotFound))
        );
    }

    #[test]
    fn put_ckpt_disk_full_is_explicit() {
        let fs = MemFs::new(16);
        let mut s = ChirpServer::new(fs, Cookie::generate(1));
        s.handle(&Request::Auth {
            cookie: Cookie::generate(1).as_bytes().to_vec(),
        });
        let out = s.handle(&Request::PutCkpt {
            key: "ckpt/job1/attempt0".into(),
            data: vec![0; 1024],
        });
        assert_eq!(
            out,
            ServerOutcome::Reply(Response::Error(ChirpError::DiskFull))
        );
    }

    #[test]
    fn rename_and_unlink() {
        let mut s = server();
        assert_eq!(
            s.handle(&Request::Rename {
                from: "input.txt".into(),
                to: "renamed.txt".into()
            }),
            ServerOutcome::Reply(Response::Ok)
        );
        assert_eq!(
            s.handle(&Request::Unlink {
                path: "renamed.txt".into()
            }),
            ServerOutcome::Reply(Response::Ok)
        );
        assert_eq!(
            s.handle(&Request::Unlink {
                path: "renamed.txt".into()
            }),
            ServerOutcome::Reply(Response::Error(ChirpError::NotFound))
        );
    }
}
