//! Shared-secret authentication.
//!
//! "The library authenticates itself to the starter by presenting a shared
//! secret revealed to it through the local file system. Thus, the
//! connection is secure to the same degree as the local system" (§2.2).
//!
//! The starter generates a [`Cookie`] per job, writes it into the job's
//! scratch directory, and accepts only connections that present it.

use std::fmt;

/// Length of a cookie in bytes.
pub const COOKIE_LEN: usize = 32;

/// A per-job shared secret.
#[derive(Clone, PartialEq, Eq)]
pub struct Cookie(Vec<u8>);

impl Cookie {
    /// Generate a cookie from a deterministic seed (the simulation is
    /// seeded; real deployments would use an OS entropy source here).
    pub fn generate(seed: u64) -> Cookie {
        // SplitMix64 expansion of the seed into COOKIE_LEN bytes.
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut bytes = Vec::with_capacity(COOKIE_LEN);
        while bytes.len() < COOKIE_LEN {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            bytes.extend_from_slice(&z.to_le_bytes());
        }
        bytes.truncate(COOKIE_LEN);
        Cookie(bytes)
    }

    /// A cookie from raw bytes (as read back from the scratch directory).
    pub fn from_bytes(b: &[u8]) -> Cookie {
        Cookie(b.to_vec())
    }

    /// The raw bytes, for writing into the scratch directory.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Constant-time comparison against a presented secret: the comparison
    /// examines every byte regardless of where a mismatch occurs, so the
    /// check leaks no prefix-length timing information.
    pub fn verify(&self, presented: &[u8]) -> bool {
        if presented.len() != self.0.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in self.0.iter().zip(presented) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl fmt::Debug for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "Cookie(<{} bytes>)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        assert_eq!(
            Cookie::generate(1).as_bytes(),
            Cookie::generate(1).as_bytes()
        );
        assert_ne!(
            Cookie::generate(1).as_bytes(),
            Cookie::generate(2).as_bytes()
        );
        assert_eq!(Cookie::generate(0).as_bytes().len(), COOKIE_LEN);
    }

    #[test]
    fn verify_accepts_exact_match_only() {
        let c = Cookie::generate(7);
        assert!(c.verify(c.as_bytes()));
        let mut tampered = c.as_bytes().to_vec();
        tampered[0] ^= 1;
        assert!(!c.verify(&tampered));
        assert!(!c.verify(&tampered[..16]));
        assert!(!c.verify(&[]));
    }

    #[test]
    fn from_bytes_round_trip() {
        let c = Cookie::generate(9);
        let c2 = Cookie::from_bytes(c.as_bytes());
        assert!(c2.verify(c.as_bytes()));
    }

    #[test]
    fn debug_does_not_leak() {
        let c = Cookie::generate(3);
        let dbg = format!("{c:?}");
        assert!(!dbg.contains(&format!("{:02x}", c.as_bytes()[0])) || dbg.len() < 30);
        assert!(dbg.contains("bytes"));
    }
}
