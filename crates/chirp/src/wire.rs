//! Wire encoding: length-prefixed binary frames.
//!
//! Every request and response travels as one frame: a `u32` little-endian
//! payload length followed by the payload. Within a payload, integers are
//! little-endian and byte strings are `u32` length + bytes. A frame that
//! fails to decode is a protocol violation — the receiving end treats it as
//! a broken connection, not as any in-vocabulary error.

use crate::proto::{ChirpError, FileInfo, OpenMode, Request, Response};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum payload we will accept, to bound memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A decoding failure — always a protocol violation, never an application
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol violation: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn get_bytes(buf: &mut Bytes) -> Result<Vec<u8>, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError("truncated length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(WireError("truncated bytes".into()));
    }
    Ok(buf.copy_to_bytes(n).to_vec())
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| WireError("invalid utf-8".into()))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

/// Encode a request payload (without the outer frame length).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = BytesMut::new();
    match req {
        Request::Auth { cookie } => {
            b.put_u8(0);
            put_bytes(&mut b, cookie);
        }
        Request::Open { path, mode } => {
            b.put_u8(1);
            put_str(&mut b, path);
            b.put_u8(mode.to_byte());
        }
        Request::Read { fd, len } => {
            b.put_u8(2);
            b.put_u32_le(*fd);
            b.put_u32_le(*len);
        }
        Request::Write { fd, data } => {
            b.put_u8(3);
            b.put_u32_le(*fd);
            put_bytes(&mut b, data);
        }
        Request::Close { fd } => {
            b.put_u8(4);
            b.put_u32_le(*fd);
        }
        Request::Stat { path } => {
            b.put_u8(5);
            put_str(&mut b, path);
        }
        Request::Unlink { path } => {
            b.put_u8(6);
            put_str(&mut b, path);
        }
        Request::Rename { from, to } => {
            b.put_u8(7);
            put_str(&mut b, from);
            put_str(&mut b, to);
        }
        Request::GetFile { path } => {
            b.put_u8(8);
            put_str(&mut b, path);
        }
        Request::PutFile { path, data } => {
            b.put_u8(9);
            put_str(&mut b, path);
            put_bytes(&mut b, data);
        }
        Request::PutCkpt { key, data } => {
            b.put_u8(10);
            put_str(&mut b, key);
            put_bytes(&mut b, data);
        }
        Request::GetCkpt { key } => {
            b.put_u8(11);
            put_str(&mut b, key);
        }
    }
    b.to_vec()
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut buf = Bytes::copy_from_slice(payload);
    let tag = get_u8(&mut buf)?;
    let req = match tag {
        0 => Request::Auth {
            cookie: get_bytes(&mut buf)?,
        },
        1 => {
            let path = get_str(&mut buf)?;
            let mode = OpenMode::from_byte(get_u8(&mut buf)?)
                .ok_or_else(|| WireError("bad open mode".into()))?;
            Request::Open { path, mode }
        }
        2 => Request::Read {
            fd: get_u32(&mut buf)?,
            len: get_u32(&mut buf)?,
        },
        3 => Request::Write {
            fd: get_u32(&mut buf)?,
            data: get_bytes(&mut buf)?,
        },
        4 => Request::Close {
            fd: get_u32(&mut buf)?,
        },
        5 => Request::Stat {
            path: get_str(&mut buf)?,
        },
        6 => Request::Unlink {
            path: get_str(&mut buf)?,
        },
        7 => {
            let from = get_str(&mut buf)?;
            let to = get_str(&mut buf)?;
            Request::Rename { from, to }
        }
        8 => Request::GetFile {
            path: get_str(&mut buf)?,
        },
        9 => {
            let path = get_str(&mut buf)?;
            let data = get_bytes(&mut buf)?;
            Request::PutFile { path, data }
        }
        10 => {
            let key = get_str(&mut buf)?;
            let data = get_bytes(&mut buf)?;
            Request::PutCkpt { key, data }
        }
        11 => Request::GetCkpt {
            key: get_str(&mut buf)?,
        },
        t => return Err(WireError(format!("unknown request tag {t}"))),
    };
    if buf.has_remaining() {
        return Err(WireError("trailing bytes in request".into()));
    }
    Ok(req)
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = BytesMut::new();
    match resp {
        Response::Ok => b.put_u8(0),
        Response::Opened { fd } => {
            b.put_u8(1);
            b.put_u32_le(*fd);
        }
        Response::Data { data } => {
            b.put_u8(2);
            put_bytes(&mut b, data);
        }
        Response::Written { len } => {
            b.put_u8(3);
            b.put_u32_le(*len);
        }
        Response::Info(info) => {
            b.put_u8(4);
            b.put_u64_le(info.size);
        }
        Response::Error(e) => {
            b.put_u8(255);
            b.put_u8(e.to_byte());
        }
    }
    b.to_vec()
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut buf = Bytes::copy_from_slice(payload);
    let tag = get_u8(&mut buf)?;
    let resp = match tag {
        0 => Response::Ok,
        1 => Response::Opened {
            fd: get_u32(&mut buf)?,
        },
        2 => Response::Data {
            data: get_bytes(&mut buf)?,
        },
        3 => Response::Written {
            len: get_u32(&mut buf)?,
        },
        4 => Response::Info(FileInfo {
            size: get_u64(&mut buf)?,
        }),
        255 => Response::Error(
            ChirpError::from_byte(get_u8(&mut buf)?)
                .ok_or_else(|| WireError("unknown error code".into()))?,
        ),
        t => return Err(WireError(format!("unknown response tag {t}"))),
    };
    if buf.has_remaining() {
        return Err(WireError("trailing bytes in response".into()));
    }
    Ok(resp)
}

/// Add the outer frame (u32 LE length prefix) to a payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Strip one frame from the front of `stream`, if complete. Returns the
/// payload and the number of bytes consumed. Applies the default
/// [`MAX_FRAME`] cap; receivers with tighter memory budgets use
/// [`deframe_with_limit`].
pub fn deframe(stream: &[u8]) -> Result<Option<(Vec<u8>, usize)>, WireError> {
    deframe_with_limit(stream, MAX_FRAME)
}

/// [`deframe`] with a caller-chosen frame cap. The length prefix is checked
/// against `limit` *before* any payload allocation, so an oversized
/// (checkpoint-scale) frame is an explicit protocol error — the receiver
/// hangs up — rather than an unbounded allocation.
pub fn deframe_with_limit(
    stream: &[u8],
    limit: u32,
) -> Result<Option<(Vec<u8>, usize)>, WireError> {
    if stream.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]);
    if len > limit {
        return Err(WireError(format!(
            "frame of {len} bytes exceeds limit of {limit}"
        )));
    }
    let total = 4 + len as usize;
    if stream.len() < total {
        return Ok(None);
    }
    Ok(Some((stream[4..total].to_vec(), total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Auth {
                cookie: vec![1, 2, 3],
            },
            Request::Open {
                path: "data/in.txt".into(),
                mode: OpenMode::Read,
            },
            Request::Open {
                path: "out".into(),
                mode: OpenMode::Append,
            },
            Request::Read { fd: 7, len: 4096 },
            Request::Write {
                fd: 7,
                data: b"hello".to_vec(),
            },
            Request::Close { fd: 7 },
            Request::Stat { path: "x/y".into() },
            Request::Unlink { path: "x".into() },
            Request::Rename {
                from: "a".into(),
                to: "b".into(),
            },
            Request::GetFile {
                path: "whole.bin".into(),
            },
            Request::PutFile {
                path: "dest.bin".into(),
                data: vec![9; 300],
            },
            Request::PutCkpt {
                key: "ckpt/job42/attempt1".into(),
                data: vec![0xC4; 512],
            },
            Request::GetCkpt {
                key: "ckpt/job42/attempt1".into(),
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Opened { fd: 3 },
            Response::Data {
                data: b"payload".to_vec(),
            },
            Response::Data { data: vec![] },
            Response::Written { len: 5 },
            Response::Info(FileInfo { size: 1 << 40 }),
            Response::Error(ChirpError::DiskFull),
            Response::Error(ChirpError::NotFound),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            let enc = encode_response(&resp);
            assert_eq!(decode_response(&enc).unwrap(), resp);
        }
    }

    #[test]
    fn corrupt_frames_are_violations_not_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[255, 0]).is_err()); // error code 0 invalid
        assert!(decode_response(&[250]).is_err());
        // Truncated string.
        let mut enc = encode_request(&Request::Stat {
            path: "abcdef".into(),
        });
        enc.truncate(enc.len() - 3);
        assert!(decode_request(&enc).is_err());
        // Trailing garbage.
        let mut enc = encode_response(&Response::Ok);
        enc.push(0);
        assert!(decode_response(&enc).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Hand-build an Open with invalid UTF-8 in the path.
        let mut b = vec![1u8];
        b.extend_from_slice(&2u32.to_le_bytes());
        b.extend_from_slice(&[0xFF, 0xFE]);
        b.push(0);
        assert!(decode_request(&b).is_err());
    }

    #[test]
    fn framing_round_trip() {
        let payload = encode_request(&Request::Close { fd: 1 });
        let framed = frame(&payload);
        let (got, used) = deframe(&framed).unwrap().unwrap();
        assert_eq!(got, payload);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn deframe_handles_partial_and_concatenated() {
        let p1 = encode_request(&Request::Close { fd: 1 });
        let p2 = encode_request(&Request::Close { fd: 2 });
        let mut stream = frame(&p1);
        stream.extend_from_slice(&frame(&p2));

        // Partial: only 2 bytes of the length.
        assert_eq!(deframe(&stream[..2]).unwrap(), None);
        // Partial: length present, payload incomplete.
        assert_eq!(deframe(&stream[..5]).unwrap(), None);
        // First frame complete.
        let (got1, used1) = deframe(&stream).unwrap().unwrap();
        assert_eq!(got1, p1);
        let (got2, used2) = deframe(&stream[used1..]).unwrap().unwrap();
        assert_eq!(got2, p2);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(deframe(&huge).is_err());
    }

    #[test]
    fn configurable_frame_limit() {
        let payload = encode_request(&Request::PutCkpt {
            key: "k".into(),
            data: vec![0; 200],
        });
        let framed = frame(&payload);
        // Fits under the default cap.
        assert!(deframe(&framed).unwrap().is_some());
        // A tighter receiver rejects the same frame explicitly, without
        // waiting for (or allocating) the payload.
        let err = deframe_with_limit(&framed[..4], 64).unwrap_err();
        assert!(err.0.contains("exceeds limit of 64"));
        // At exactly the limit it is accepted.
        assert!(deframe_with_limit(&framed, payload.len() as u32)
            .unwrap()
            .is_some());
    }

    #[test]
    fn empty_write_and_large_write() {
        let req = Request::Write {
            fd: 0,
            data: vec![],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let req = Request::Write {
            fd: 0,
            data: vec![0xAB; 100_000],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }
}
