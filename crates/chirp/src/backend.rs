//! Storage backends behind the proxy.
//!
//! "The proxy allows the starter to transparently add additional I/O
//! functionality to the job without placing any burden on the user" (§2.2).
//! A [`FileBackend`] is whatever the proxy ultimately talks to: the local
//! scratch space, or the Condor remote I/O channel to the shadow.
//!
//! Backends report failures as [`BackendFailure`]: either an in-vocabulary
//! [`crate::proto::ChirpError`]-equivalent condition, or an
//! [`EnvFault`] — an environmental failure (file system offline, expired
//! credentials, network timeout) that no Chirp operation's vocabulary
//! admits, and which therefore must escape.

use errorscope::error::codes;
use errorscope::{ErrorCode, Scope};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Environmental failures that lie outside every Chirp vocabulary. These
/// are exactly the §4 examples: "errors such as 'connection timed out' and
/// 'credentials expired' could technically be represented by an
/// IOException … they violated a program's reasonable expectations of the
/// I/O interface."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvFault {
    /// The backing file system is offline (e.g. the submitter's home file
    /// system, reached via the shadow).
    FilesystemOffline,
    /// The security credentials for the remote channel have expired.
    CredentialsExpired,
    /// The remote channel stopped answering.
    ConnectionTimedOut,
}

impl EnvFault {
    /// The [`errorscope`] error code.
    pub fn code(self) -> ErrorCode {
        match self {
            EnvFault::FilesystemOffline => codes::FILESYSTEM_OFFLINE,
            EnvFault::CredentialsExpired => codes::CREDENTIALS_EXPIRED,
            EnvFault::ConnectionTimedOut => codes::CONNECTION_TIMED_OUT,
        }
    }

    /// The scope each fault invalidates. An offline home file system or a
    /// dead credential invalidates the job's access to *local* (submission-
    /// side) resources — the shadow's domain. A timeout is indeterminate
    /// and starts at network scope (§5).
    pub fn scope(self) -> Scope {
        match self {
            EnvFault::FilesystemOffline => Scope::LocalResource,
            EnvFault::CredentialsExpired => Scope::LocalResource,
            EnvFault::ConnectionTimedOut => Scope::Network,
        }
    }
}

impl fmt::Display for EnvFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How a backend operation can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFailure {
    /// No such file.
    NotFound,
    /// Permission denied.
    AccessDenied,
    /// Quota exhausted.
    DiskFull,
    /// Rename target exists.
    AlreadyExists,
    /// An environmental fault that must escape the protocol.
    Env(EnvFault),
}

/// Result alias for backend operations.
pub type BResult<T> = Result<T, BackendFailure>;

/// A flat-namespace file store.
pub trait FileBackend: Send {
    /// Does the path exist?
    fn exists(&mut self, path: &str) -> BResult<bool>;
    /// Size of the file in bytes.
    fn size(&mut self, path: &str) -> BResult<u64>;
    /// Create (or truncate) a file.
    fn create(&mut self, path: &str) -> BResult<()>;
    /// Read up to `len` bytes starting at `offset`.
    fn read_at(&mut self, path: &str, offset: u64, len: u32) -> BResult<Vec<u8>>;
    /// Append bytes to the end of the file.
    fn append(&mut self, path: &str, data: &[u8]) -> BResult<()>;
    /// Remove a file.
    fn unlink(&mut self, path: &str) -> BResult<()>;
    /// Rename a file; fails with `AlreadyExists` if the target exists.
    fn rename(&mut self, from: &str, to: &str) -> BResult<()>;
}

/// An in-memory file store with quota, read-only paths, and injectable
/// environmental faults. Used both as the sandbox scratch space and — with
/// faults injected — as the stand-in for the shadow's remote channel.
pub struct MemFs {
    files: BTreeMap<String, Vec<u8>>,
    readonly: BTreeSet<String>,
    quota: u64,
    used: u64,
    env_fault: Option<EnvFault>,
    /// If set, inject `fault_after.1` once `fault_after.0` more operations
    /// have completed — for mid-stream failure tests.
    fault_after: Option<(u64, EnvFault)>,
}

impl Default for MemFs {
    fn default() -> Self {
        MemFs::new(u64::MAX)
    }
}

impl MemFs {
    /// A store with a total byte quota.
    pub fn new(quota: u64) -> MemFs {
        MemFs {
            files: BTreeMap::new(),
            readonly: BTreeSet::new(),
            quota,
            used: 0,
            env_fault: None,
            fault_after: None,
        }
    }

    /// Pre-populate a file (does not count against later quota checks'
    /// ordering — it is charged immediately).
    pub fn put(&mut self, path: &str, data: &[u8]) -> &mut Self {
        if let Some(old) = self.files.insert(path.to_string(), data.to_vec()) {
            self.used -= old.len() as u64;
        }
        self.used += data.len() as u64;
        self
    }

    /// Fetch a file's current contents (test/assertion helper).
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Mark a path read-only: writes yield `AccessDenied`.
    pub fn set_readonly(&mut self, path: &str) {
        self.readonly.insert(path.to_string());
    }

    /// Inject (or clear) a persistent environmental fault. While set, every
    /// operation fails with it.
    pub fn set_env_fault(&mut self, fault: Option<EnvFault>) {
        self.env_fault = fault;
    }

    /// Inject a fault that fires after `ops` more successful operations.
    pub fn set_fault_after(&mut self, ops: u64, fault: EnvFault) {
        self.fault_after = Some((ops, fault));
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    fn gate(&mut self) -> BResult<()> {
        if let Some(f) = self.env_fault {
            return Err(BackendFailure::Env(f));
        }
        if let Some((remaining, fault)) = self.fault_after.as_mut() {
            if *remaining == 0 {
                let f = *fault;
                self.env_fault = Some(f);
                return Err(BackendFailure::Env(f));
            }
            *remaining -= 1;
        }
        Ok(())
    }
}

impl FileBackend for MemFs {
    fn exists(&mut self, path: &str) -> BResult<bool> {
        self.gate()?;
        Ok(self.files.contains_key(path))
    }

    fn size(&mut self, path: &str) -> BResult<u64> {
        self.gate()?;
        self.files
            .get(path)
            .map(|v| v.len() as u64)
            .ok_or(BackendFailure::NotFound)
    }

    fn create(&mut self, path: &str) -> BResult<()> {
        self.gate()?;
        if self.readonly.contains(path) {
            return Err(BackendFailure::AccessDenied);
        }
        if let Some(old) = self.files.insert(path.to_string(), Vec::new()) {
            self.used -= old.len() as u64;
        }
        Ok(())
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u32) -> BResult<Vec<u8>> {
        self.gate()?;
        let data = self.files.get(path).ok_or(BackendFailure::NotFound)?;
        let start = (offset as usize).min(data.len());
        let end = (start + len as usize).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn append(&mut self, path: &str, data: &[u8]) -> BResult<()> {
        self.gate()?;
        if self.readonly.contains(path) {
            return Err(BackendFailure::AccessDenied);
        }
        if !self.files.contains_key(path) {
            return Err(BackendFailure::NotFound);
        }
        if self.used + data.len() as u64 > self.quota {
            return Err(BackendFailure::DiskFull);
        }
        self.files.get_mut(path).unwrap().extend_from_slice(data);
        self.used += data.len() as u64;
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> BResult<()> {
        self.gate()?;
        if self.readonly.contains(path) {
            return Err(BackendFailure::AccessDenied);
        }
        match self.files.remove(path) {
            Some(old) => {
                self.used -= old.len() as u64;
                Ok(())
            }
            None => Err(BackendFailure::NotFound),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> BResult<()> {
        self.gate()?;
        if !self.files.contains_key(from) {
            return Err(BackendFailure::NotFound);
        }
        if self.files.contains_key(to) {
            return Err(BackendFailure::AlreadyExists);
        }
        if self.readonly.contains(from) || self.readonly.contains(to) {
            return Err(BackendFailure::AccessDenied);
        }
        let data = self.files.remove(from).unwrap();
        self.files.insert(to.to_string(), data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_file_lifecycle() {
        let mut fs = MemFs::default();
        assert_eq!(fs.exists("a"), Ok(false));
        fs.create("a").unwrap();
        assert_eq!(fs.exists("a"), Ok(true));
        fs.append("a", b"hello ").unwrap();
        fs.append("a", b"world").unwrap();
        assert_eq!(fs.size("a"), Ok(11));
        assert_eq!(fs.read_at("a", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read_at("a", 6, 100).unwrap(), b"world");
        assert_eq!(fs.read_at("a", 100, 10).unwrap(), b"");
        fs.unlink("a").unwrap();
        assert_eq!(fs.exists("a"), Ok(false));
    }

    #[test]
    fn missing_files_are_not_found() {
        let mut fs = MemFs::default();
        assert_eq!(fs.size("x"), Err(BackendFailure::NotFound));
        assert_eq!(fs.read_at("x", 0, 1), Err(BackendFailure::NotFound));
        assert_eq!(fs.append("x", b"d"), Err(BackendFailure::NotFound));
        assert_eq!(fs.unlink("x"), Err(BackendFailure::NotFound));
        assert_eq!(fs.rename("x", "y"), Err(BackendFailure::NotFound));
    }

    #[test]
    fn quota_yields_disk_full() {
        let mut fs = MemFs::new(10);
        fs.create("f").unwrap();
        fs.append("f", b"12345").unwrap();
        fs.append("f", b"67890").unwrap();
        assert_eq!(fs.append("f", b"x"), Err(BackendFailure::DiskFull));
        // Freeing space makes writes possible again.
        fs.unlink("f").unwrap();
        fs.create("g").unwrap();
        assert_eq!(fs.append("g", b"ok"), Ok(()));
        assert_eq!(fs.used(), 2);
    }

    #[test]
    fn readonly_paths_deny_writes() {
        let mut fs = MemFs::default();
        fs.put("etc", b"config");
        fs.set_readonly("etc");
        assert_eq!(fs.append("etc", b"x"), Err(BackendFailure::AccessDenied));
        assert_eq!(fs.create("etc"), Err(BackendFailure::AccessDenied));
        assert_eq!(fs.unlink("etc"), Err(BackendFailure::AccessDenied));
        // Reads still work.
        assert_eq!(fs.read_at("etc", 0, 6).unwrap(), b"config");
    }

    #[test]
    fn rename_semantics() {
        let mut fs = MemFs::default();
        fs.put("a", b"data");
        fs.put("b", b"other");
        assert_eq!(fs.rename("a", "b"), Err(BackendFailure::AlreadyExists));
        fs.rename("a", "c").unwrap();
        assert_eq!(fs.get("c"), Some(&b"data"[..]));
        assert_eq!(fs.get("a"), None);
    }

    #[test]
    fn env_fault_poisons_everything() {
        let mut fs = MemFs::default();
        fs.put("a", b"data");
        fs.set_env_fault(Some(EnvFault::FilesystemOffline));
        assert_eq!(
            fs.read_at("a", 0, 1),
            Err(BackendFailure::Env(EnvFault::FilesystemOffline))
        );
        assert_eq!(
            fs.exists("a"),
            Err(BackendFailure::Env(EnvFault::FilesystemOffline))
        );
        fs.set_env_fault(None);
        assert_eq!(fs.exists("a"), Ok(true));
    }

    #[test]
    fn fault_after_counts_operations() {
        let mut fs = MemFs::default();
        fs.put("a", b"0123456789");
        fs.set_fault_after(2, EnvFault::ConnectionTimedOut);
        assert!(fs.read_at("a", 0, 1).is_ok());
        assert!(fs.read_at("a", 1, 1).is_ok());
        assert_eq!(
            fs.read_at("a", 2, 1),
            Err(BackendFailure::Env(EnvFault::ConnectionTimedOut))
        );
        // And it sticks.
        assert_eq!(
            fs.exists("a"),
            Err(BackendFailure::Env(EnvFault::ConnectionTimedOut))
        );
    }

    #[test]
    fn env_fault_scopes_match_paper() {
        assert_eq!(EnvFault::FilesystemOffline.scope(), Scope::LocalResource);
        assert_eq!(EnvFault::CredentialsExpired.scope(), Scope::LocalResource);
        assert_eq!(EnvFault::ConnectionTimedOut.scope(), Scope::Network);
        assert_eq!(
            EnvFault::FilesystemOffline.code(),
            codes::FILESYSTEM_OFFLINE
        );
    }

    #[test]
    fn put_replaces_and_tracks_usage() {
        let mut fs = MemFs::new(100);
        fs.put("a", b"12345");
        assert_eq!(fs.used(), 5);
        fs.put("a", b"12");
        assert_eq!(fs.used(), 2);
        assert_eq!(fs.file_count(), 1);
    }
}
