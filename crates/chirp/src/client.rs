//! The job-side I/O library.
//!
//! "For such programs, we provide a simple I/O library. This library
//! presents files using standard Java abstractions" (§2.2). Here the
//! abstraction is a typed Rust API over a [`Transport`].
//!
//! The library exists in the paper's two incarnations:
//!
//! * [`ClientDiscipline::Scoped`] — the redesign: in-vocabulary protocol
//!   errors surface as [`IoError::Explicit`]; a broken connection becomes
//!   an [`IoError::Escape`] carrying a [`ScopedError`] destined for the
//!   wrapper (Principle 2).
//! * [`ClientDiscipline::NaiveGeneric`] — the first implementation: every
//!   failure, environmental or not, is delivered to the program as a
//!   generic exception ([`IoError::GenericException`]) — "although this was
//!   easy, it was incorrect."

use crate::proto::{ChirpError, Fd, FileInfo, OpenMode, Request, Response};
use crate::server::DisconnectReason;
use crate::transport::{Broken, Transport};
use errorscope::error::codes;
use errorscope::{ErrorCode, Scope, ScopedError};

/// Which error discipline the library applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientDiscipline {
    /// The paper's redesign (Principles 2–4 respected).
    Scoped,
    /// The paper's flawed first cut: everything is an explicit generic
    /// exception.
    NaiveGeneric,
}

/// A failure surfaced by the I/O library.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// An explicit error within the operation's contract: a legitimate
    /// program-visible result (file scope).
    Explicit(ChirpError),
    /// The naive library's catch-all "IOException subtype". Only produced
    /// under [`ClientDiscipline::NaiveGeneric`]; its presence in a run is a
    /// Principle 2/4 violation by construction.
    GenericException(ErrorCode),
    /// An escaping error: the condition cannot be expressed in the I/O
    /// interface and must travel to the wrapper, which will classify its
    /// scope and record it in the result file.
    Escape(ScopedError),
}

impl IoError {
    /// True for escaping errors.
    pub fn is_escape(&self) -> bool {
        matches!(self, IoError::Escape(_))
    }
}

/// Result alias for library calls.
pub type IoResult<T> = Result<T, IoError>;

/// The I/O library bound to one transport.
pub struct ChirpClient<T: Transport> {
    transport: T,
    discipline: ClientDiscipline,
    /// Requests issued, for metrics.
    pub calls: u64,
    /// Typed per-operation telemetry, drained by the host (the starter)
    /// into the simulation's event collector.
    events: obs::RingBuffer<obs::Event>,
}

const LAYER: &str = "io-library";

/// How many I/O op events the client retains before evicting the oldest.
const EVENT_CAPACITY: usize = 4096;

impl<T: Transport> ChirpClient<T> {
    /// A scoped-discipline client.
    pub fn new(transport: T) -> Self {
        ChirpClient {
            transport,
            discipline: ClientDiscipline::Scoped,
            calls: 0,
            events: obs::RingBuffer::new(EVENT_CAPACITY),
        }
    }

    /// Select a discipline (builder style).
    pub fn with_discipline(mut self, d: ClientDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// The underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Authenticate with the cookie read from the scratch directory.
    pub fn auth(&mut self, cookie: &[u8]) -> IoResult<()> {
        let r = match self.call(&Request::Auth {
            cookie: cookie.to_vec(),
        }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("auth", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("auth", r)
    }

    /// Open a file.
    pub fn open(&mut self, path: &str, mode: OpenMode) -> IoResult<Fd> {
        let r = match self.call(&Request::Open {
            path: path.to_string(),
            mode,
        }) {
            Ok(Response::Opened { fd }) => Ok(fd),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("open", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("open", r)
    }

    /// Read up to `len` bytes. An empty vector means end of file.
    pub fn read(&mut self, fd: Fd, len: u32) -> IoResult<Vec<u8>> {
        let r = match self.call(&Request::Read { fd, len }) {
            Ok(Response::Data { data }) => Ok(data),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("read", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("read", r)
    }

    /// Read the whole remainder of a file.
    pub fn read_all(&mut self, fd: Fd) -> IoResult<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let chunk = self.read(fd, 64 * 1024)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend_from_slice(&chunk);
        }
    }

    /// Write all of `data`.
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> IoResult<u32> {
        let r = match self.call(&Request::Write {
            fd,
            data: data.to_vec(),
        }) {
            Ok(Response::Written { len }) => Ok(len),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("write", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("write", r)
    }

    /// Close a descriptor.
    pub fn close(&mut self, fd: Fd) -> IoResult<()> {
        let r = match self.call(&Request::Close { fd }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("close", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("close", r)
    }

    /// Stat a path.
    pub fn stat(&mut self, path: &str) -> IoResult<FileInfo> {
        let r = match self.call(&Request::Stat {
            path: path.to_string(),
        }) {
            Ok(Response::Info(i)) => Ok(i),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("stat", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("stat", r)
    }

    /// Remove a file.
    pub fn unlink(&mut self, path: &str) -> IoResult<()> {
        let r = match self.call(&Request::Unlink {
            path: path.to_string(),
        }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("unlink", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("unlink", r)
    }

    /// Fetch a whole file in one round trip.
    pub fn get_file(&mut self, path: &str) -> IoResult<Vec<u8>> {
        let r = match self.call(&Request::GetFile {
            path: path.to_string(),
        }) {
            Ok(Response::Data { data }) => Ok(data),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("getfile", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("getfile", r)
    }

    /// Store a whole file in one round trip.
    pub fn put_file(&mut self, path: &str, data: &[u8]) -> IoResult<u32> {
        let r = match self.call(&Request::PutFile {
            path: path.to_string(),
            data: data.to_vec(),
        }) {
            Ok(Response::Written { len }) => Ok(len),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("putfile", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("putfile", r)
    }

    /// Store a checkpoint image under a key in one round trip.
    pub fn put_ckpt(&mut self, key: &str, data: &[u8]) -> IoResult<u32> {
        let r = match self.call(&Request::PutCkpt {
            key: key.to_string(),
            data: data.to_vec(),
        }) {
            Ok(Response::Written { len }) => Ok(len),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("put_ckpt", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("put_ckpt", r)
    }

    /// Fetch a checkpoint image by key. [`ChirpError::NotFound`] is the
    /// explicit, expected answer when no checkpoint has been taken yet.
    pub fn get_ckpt(&mut self, key: &str) -> IoResult<Vec<u8>> {
        let r = match self.call(&Request::GetCkpt {
            key: key.to_string(),
        }) {
            Ok(Response::Data { data }) => Ok(data),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("get_ckpt", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("get_ckpt", r)
    }

    /// Rename a file.
    pub fn rename(&mut self, from: &str, to: &str) -> IoResult<()> {
        let r = match self.call(&Request::Rename {
            from: from.to_string(),
            to: to.to_string(),
        }) {
            Ok(Response::Ok) => Ok(()),
            Ok(Response::Error(e)) => Err(self.explicit(e)),
            Ok(other) => Err(self.protocol_surprise("rename", &other)),
            Err(broke) => Err(broke),
        };
        self.finish("rename", r)
    }

    /// Recorded I/O op events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &obs::Event> {
        self.events.iter()
    }

    /// Drain the recorded op events (oldest first), leaving the log empty.
    pub fn take_events(&mut self) -> Vec<obs::Event> {
        let out: Vec<obs::Event> = self.events.iter().cloned().collect();
        self.events.clear();
        out
    }

    fn call(&mut self, req: &Request) -> Result<Response, IoError> {
        self.calls += 1;
        self.transport.call(req).map_err(|b| self.broken(b))
    }

    /// Record the op's outcome as a typed event and pass the result through.
    fn finish<V>(&mut self, op: &'static str, r: IoResult<V>) -> IoResult<V> {
        let outcome = match &r {
            Ok(_) => obs::IoOutcome::Ok,
            Err(IoError::Explicit(e)) => obs::IoOutcome::Error {
                code: e.to_string(),
            },
            Err(IoError::GenericException(c)) => obs::IoOutcome::Error {
                code: c.as_str().to_string(),
            },
            Err(IoError::Escape(se)) => obs::IoOutcome::Escaped {
                code: se.code.as_str().to_string(),
            },
        };
        self.events.push(obs::Event::IoOp {
            op: op.to_string(),
            outcome,
        });
        r
    }

    /// An in-vocabulary protocol error. Both disciplines deliver it
    /// explicitly; the naive one wraps it in its generic type, losing the
    /// contract information.
    fn explicit(&self, e: ChirpError) -> IoError {
        match self.discipline {
            ClientDiscipline::Scoped => IoError::Explicit(e),
            ClientDiscipline::NaiveGeneric => {
                IoError::GenericException(ErrorCode::owned(format!("IOException:{e}")))
            }
        }
    }

    /// The connection broke.
    fn broken(&self, b: Broken) -> IoError {
        // Recover the richest description available. In-process (the real
        // deployment: the proxy lives in the starter on the same host) the
        // disconnect reason is observable; over a raw socket it may not be.
        let (code, scope, detail): (ErrorCode, Scope, String) = match &b.reason {
            Some(DisconnectReason::Env(f)) => (f.code(), f.scope(), f.to_string()),
            Some(DisconnectReason::ContractViolation { op, code }) => (
                ErrorCode::owned(format!("ContractViolation:{code}")),
                Scope::Process,
                format!("backend produced {code} during {op}"),
            ),
            Some(DisconnectReason::ProtocolViolation(d)) => (
                ErrorCode::new("ProtocolViolation"),
                Scope::Process,
                d.clone(),
            ),
            None => (
                codes::CONNECTION_TIMED_OUT,
                Scope::Network,
                b.detail.clone(),
            ),
        };
        match self.discipline {
            ClientDiscipline::Scoped => {
                IoError::Escape(ScopedError::escaping(code, scope, LAYER, detail))
            }
            ClientDiscipline::NaiveGeneric => {
                // The flawed library extends IOException yet again.
                IoError::GenericException(ErrorCode::owned(format!("IOException:{code}")))
            }
        }
    }

    /// The server answered with a response shape that does not belong to
    /// this operation — a protocol violation, hence an escape (never a
    /// fabricated value: Principle 1).
    fn protocol_surprise(&self, op: &str, resp: &Response) -> IoError {
        let detail = format!("unexpected response to {op}: {resp:?}");
        match self.discipline {
            ClientDiscipline::Scoped => IoError::Escape(ScopedError::escaping(
                "ProtocolViolation",
                Scope::Process,
                LAYER,
                detail,
            )),
            ClientDiscipline::NaiveGeneric => {
                IoError::GenericException(ErrorCode::new("IOException:Protocol"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EnvFault, MemFs};
    use crate::cookie::Cookie;
    use crate::server::ChirpServer;
    use crate::transport::DirectTransport;

    fn client(
        discipline: ClientDiscipline,
        server_discipline: crate::server::ErrorDiscipline,
        prep: impl FnOnce(&mut MemFs),
    ) -> ChirpClient<DirectTransport<MemFs>> {
        let mut fs = MemFs::default();
        prep(&mut fs);
        let server = ChirpServer::new(fs, Cookie::generate(1)).with_discipline(server_discipline);
        let mut c = ChirpClient::new(DirectTransport::new(server)).with_discipline(discipline);
        c.auth(Cookie::generate(1).as_bytes()).unwrap();
        c
    }

    fn scoped(prep: impl FnOnce(&mut MemFs)) -> ChirpClient<DirectTransport<MemFs>> {
        client(
            ClientDiscipline::Scoped,
            crate::server::ErrorDiscipline::Scoped,
            prep,
        )
    }

    #[test]
    fn full_file_round_trip() {
        let mut c = scoped(|fs| {
            fs.put("in.dat", b"the quick brown fox");
        });
        let fd = c.open("in.dat", OpenMode::Read).unwrap();
        assert_eq!(c.read_all(fd).unwrap(), b"the quick brown fox");
        c.close(fd).unwrap();

        let out = c.open("out.dat", OpenMode::Write).unwrap();
        assert_eq!(c.write(out, b"results").unwrap(), 7);
        c.close(out).unwrap();
        assert_eq!(c.stat("out.dat").unwrap().size, 7);
        c.rename("out.dat", "final.dat").unwrap();
        c.unlink("final.dat").unwrap();
    }

    #[test]
    fn missing_file_is_explicit_file_scope() {
        let mut c = scoped(|_| {});
        let err = c.open("ghost", OpenMode::Read).unwrap_err();
        assert_eq!(err, IoError::Explicit(ChirpError::NotFound));
        assert!(!err.is_escape());
    }

    #[test]
    fn offline_filesystem_escapes_with_local_resource_scope() {
        let mut c = scoped(|fs| {
            fs.put("f", b"x");
        });
        let fd = c.open("f", OpenMode::Read).unwrap();
        c.transport_mut()
            .server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::FilesystemOffline));
        let err = c.read(fd, 1).unwrap_err();
        let IoError::Escape(se) = err else {
            panic!("expected escape, got {err:?}")
        };
        assert_eq!(se.scope, Scope::LocalResource);
        assert_eq!(se.code, codes::FILESYSTEM_OFFLINE);
        assert_eq!(se.comm, errorscope::Comm::Escaping);
        assert_eq!(se.origin(), Some(LAYER));
    }

    #[test]
    fn naive_library_delivers_generic_exceptions() {
        let mut c = client(
            ClientDiscipline::NaiveGeneric,
            crate::server::ErrorDiscipline::NaiveGeneric,
            |fs| {
                fs.put("f", b"x");
            },
        );
        let fd = c.open("f", OpenMode::Read).unwrap();
        c.transport_mut()
            .server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::CredentialsExpired));
        let err = c.read(fd, 1).unwrap_err();
        // The environmental fault reaches the program as an "IOException".
        assert!(matches!(err, IoError::GenericException(_)));
    }

    #[test]
    fn escape_persists_after_disconnect() {
        let mut c = scoped(|fs| {
            fs.put("f", b"x");
        });
        let fd = c.open("f", OpenMode::Read).unwrap();
        c.transport_mut()
            .server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::ConnectionTimedOut));
        assert!(c.read(fd, 1).unwrap_err().is_escape());
        // Every subsequent operation also escapes — the connection is gone.
        assert!(c.stat("f").unwrap_err().is_escape());
        assert!(c.open("f", OpenMode::Read).unwrap_err().is_escape());
    }

    #[test]
    fn timeout_has_network_scope() {
        let mut c = scoped(|fs| {
            fs.put("f", b"x");
        });
        let fd = c.open("f", OpenMode::Read).unwrap();
        c.transport_mut()
            .server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::ConnectionTimedOut));
        let IoError::Escape(se) = c.read(fd, 1).unwrap_err() else {
            panic!()
        };
        assert_eq!(se.scope, Scope::Network);
    }

    #[test]
    fn bad_cookie_is_explicit() {
        let fs = MemFs::default();
        let server = ChirpServer::new(fs, Cookie::generate(1));
        let mut c = ChirpClient::new(DirectTransport::new(server));
        let err = c.auth(&[0; 32]).unwrap_err();
        assert_eq!(err, IoError::Explicit(ChirpError::NotAuthenticated));
    }

    #[test]
    fn op_events_record_outcomes_in_order() {
        let mut c = scoped(|fs| {
            fs.put("f", b"x");
        });
        let fd = c.open("f", OpenMode::Read).unwrap();
        let _ = c.open("ghost", OpenMode::Read); // explicit NotFound
        c.transport_mut()
            .server_mut()
            .unwrap()
            .backend_mut()
            .set_env_fault(Some(EnvFault::FilesystemOffline));
        let _ = c.read(fd, 1); // escapes
        let events = c.take_events();
        // auth (from the helper), open, open, read.
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[1],
            obs::Event::IoOp { op, outcome: obs::IoOutcome::Ok } if op == "open"
        ));
        assert!(matches!(
            &events[2],
            obs::Event::IoOp {
                outcome: obs::IoOutcome::Error { .. },
                ..
            }
        ));
        assert!(matches!(
            &events[3],
            obs::Event::IoOp { op, outcome: obs::IoOutcome::Escaped { .. } } if op == "read"
        ));
        // Draining empties the log.
        assert!(c.take_events().is_empty());
        assert_eq!(c.events().count(), 0);
    }

    #[test]
    fn checkpoint_round_trip_and_missing_key() {
        let mut c = scoped(|_| {});
        // No checkpoint yet: explicit NotFound, not an escape.
        let err = c.get_ckpt("ckpt/job1/attempt0").unwrap_err();
        assert_eq!(err, IoError::Explicit(ChirpError::NotFound));
        assert!(!err.is_escape());
        // Store and fetch.
        let image = vec![7u8; 96];
        assert_eq!(c.put_ckpt("ckpt/job1/attempt0", &image).unwrap(), 96);
        assert_eq!(c.get_ckpt("ckpt/job1/attempt0").unwrap(), image);
    }

    #[test]
    fn call_counter_advances() {
        let mut c = scoped(|fs| {
            fs.put("f", b"xy");
        });
        let before = c.calls;
        let fd = c.open("f", OpenMode::Read).unwrap();
        let _ = c.read_all(fd);
        assert!(c.calls > before + 1);
    }
}
