//! Property-based tests for the Chirp protocol.

use chirp::backend::{BackendFailure, EnvFault, FileBackend, MemFs};
use chirp::cookie::Cookie;
use chirp::proto::{ChirpError, OpenMode, Request, Response};
use chirp::server::{ChirpServer, ServerOutcome};
use chirp::wire::{
    decode_request, decode_response, deframe, encode_request, encode_response, frame,
};
use proptest::prelude::*;

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|cookie| Request::Auth { cookie }),
        ("[ -~]{0,40}", 0u8..3).prop_map(|(path, m)| Request::Open {
            path,
            mode: OpenMode::from_byte(m).unwrap(),
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(fd, len)| Request::Read { fd, len }),
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(fd, data)| Request::Write { fd, data }),
        any::<u32>().prop_map(|fd| Request::Close { fd }),
        "[ -~]{0,40}".prop_map(|path| Request::Stat { path }),
        "[ -~]{0,40}".prop_map(|path| Request::Unlink { path }),
        ("[ -~]{0,40}", "[ -~]{0,40}").prop_map(|(from, to)| Request::Rename { from, to }),
        "[ -~]{0,40}".prop_map(|path| Request::GetFile { path }),
        ("[ -~]{0,40}", prop::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(path, data)| Request::PutFile { path, data }),
    ]
}

fn any_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<u32>().prop_map(|fd| Response::Opened { fd }),
        prop::collection::vec(any::<u8>(), 0..256).prop_map(|data| Response::Data { data }),
        any::<u32>().prop_map(|len| Response::Written { len }),
        any::<u64>().prop_map(|size| Response::Info(chirp::proto::FileInfo { size })),
        (1u8..8).prop_map(|b| Response::Error(ChirpError::from_byte(b).unwrap())),
    ]
}

proptest! {
    /// Every request survives the wire.
    #[test]
    fn request_roundtrip(req in any_request()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc).unwrap(), req);
    }

    /// Every response survives the wire.
    #[test]
    fn response_roundtrip(resp in any_response()) {
        let enc = encode_response(&resp);
        prop_assert_eq!(decode_response(&enc).unwrap(), resp);
    }

    /// Decoding arbitrary bytes never panics — it either parses or
    /// reports a protocol violation.
    #[test]
    fn decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = deframe(&bytes);
    }

    /// A concatenated stream of frames deframes back into the original
    /// payloads regardless of chunk boundaries.
    #[test]
    fn deframe_stream(payload_sizes in prop::collection::vec(0usize..200, 1..8)) {
        let payloads: Vec<Vec<u8>> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, n)| vec![i as u8; *n])
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < stream.len() {
            let (payload, used) = deframe(&stream[pos..]).unwrap().unwrap();
            out.push(payload);
            pos += used;
        }
        prop_assert_eq!(out, payloads);
    }

    /// Truncating a frame anywhere yields "need more bytes", never garbage.
    #[test]
    fn truncated_frames_wait(data in prop::collection::vec(any::<u8>(), 0..100)) {
        let full = frame(&data);
        for cut in 0..full.len() {
            let r = deframe(&full[..cut]).unwrap();
            prop_assert!(r.is_none(), "cut={cut} should be incomplete");
        }
        let (payload, used) = deframe(&full).unwrap().unwrap();
        prop_assert_eq!(payload, data);
        prop_assert_eq!(used, full.len());
    }

    /// The server never panics on any request sequence, and in the scoped
    /// discipline never emits an out-of-vocabulary explicit error.
    #[test]
    fn server_is_total_and_contract_clean(
        reqs in prop::collection::vec(any_request(), 0..40),
        authed in any::<bool>(),
    ) {
        let mut fs = MemFs::new(4096);
        fs.put("seed.txt", b"hello");
        let cookie = Cookie::generate(7);
        let mut server = ChirpServer::new(fs, cookie.clone());
        if authed {
            let out = server.handle(&Request::Auth {
                cookie: cookie.as_bytes().to_vec(),
            });
            prop_assert_eq!(out, ServerOutcome::Reply(Response::Ok));
        }
        for req in &reqs {
            match server.handle(req) {
                ServerOutcome::Reply(Response::Error(e)) => {
                    // Principle 4: any explicit error must be in the
                    // operation's declared vocabulary.
                    let vocab = chirp::proto::explicit_errors_of(req.op());
                    prop_assert!(
                        vocab.contains(&e),
                        "{e} outside vocabulary of {}",
                        req.op()
                    );
                }
                ServerOutcome::Reply(_) => {}
                ServerOutcome::Disconnect(_) => break, // connection over
            }
        }
    }

    /// MemFs quota accounting never goes negative and never exceeds quota.
    #[test]
    fn memfs_quota_invariant(ops in prop::collection::vec((0u8..4, 0usize..3, 0usize..200), 0..60)) {
        let quota = 500u64;
        let mut fs = MemFs::new(quota);
        let paths = ["a", "b", "c"];
        for (op, pi, n) in ops {
            let path = paths[pi];
            match op {
                0 => {
                    let _ = fs.create(path);
                }
                1 => {
                    let _ = fs.append(path, &vec![0u8; n]);
                }
                2 => {
                    let _ = fs.unlink(path);
                }
                _ => {
                    let _ = fs.read_at(path, 0, n as u32);
                }
            }
            prop_assert!(fs.used() <= quota, "used {} > quota {quota}", fs.used());
        }
    }

    /// Cookies only verify against themselves.
    #[test]
    fn cookie_verification(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let a = Cookie::generate(seed_a);
        let b = Cookie::generate(seed_b);
        prop_assert!(a.verify(a.as_bytes()));
        prop_assert_eq!(a.verify(b.as_bytes()), seed_a == seed_b);
    }

    /// Env faults always map to the same scope/code — the mapping is pure.
    #[test]
    fn env_fault_mapping_is_stable(which in 0u8..3) {
        let f = match which {
            0 => EnvFault::FilesystemOffline,
            1 => EnvFault::CredentialsExpired,
            _ => EnvFault::ConnectionTimedOut,
        };
        prop_assert_eq!(f.code(), f.code());
        prop_assert_eq!(f.scope(), f.scope());
        // And a faulted backend refuses everything with exactly that fault.
        let mut fs = MemFs::default();
        fs.put("x", b"1");
        fs.set_env_fault(Some(f));
        prop_assert_eq!(fs.exists("x"), Err(BackendFailure::Env(f)));
        prop_assert_eq!(fs.size("x"), Err(BackendFailure::Env(f)));
    }
}
