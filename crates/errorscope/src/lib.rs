//! # errorscope — a theory of error propagation for computational grids
//!
//! This crate is the core contribution of *Error Scope on a Computational
//! Grid: Theory and Practice* (Thain & Livny, HPDC 2002), implemented as a
//! reusable Rust library:
//!
//! * [`comm`] — the three ways an error is communicated: **implicit**,
//!   **explicit**, and **escaping** (§3.1).
//! * [`scope`] — the **error scope** lattice: the portion of a system an
//!   error invalidates, ordered by containment (§3.3).
//! * [`error`] — [`ScopedError`]: an error value carrying its code, scope,
//!   communication mode, and a provenance trail of every layer crossed.
//! * [`interface`] — finite error vocabularies and interface contracts
//!   (Principle 4: "error interfaces must be concise and finite", §3.4).
//! * [`propagate`] — layer stacks that route errors to the program that
//!   manages their scope (Principle 3), converting out-of-contract errors
//!   into escaping errors along the way (Principle 2), and the schedd's
//!   last-line-of-defense [`propagate::Disposition`]s (§4).
//! * [`escalate`] — time-based scope escalation for indeterminate errors,
//!   the NFS hard/soft-mount dilemma (§5).
//! * [`resultfile`] — the wrapper's result file: the indirect channel that
//!   replaces the JVM's ambiguous exit code (§4, Figure 4).
//! * [`mask`] — scope-aware fault-tolerance masking: retry and
//!   replication combinators that absorb only legitimately transient
//!   scopes ("we may rewrite, retry, replicate, reset, or reboot", §3).
//! * [`audit`] — after-the-fact verification of the four principles from an
//!   error's trail.
//! * [`stdio`] — classification of `std::io::Error`s into scoped errors
//!   (and back), so existing Rust code can adopt the discipline.
//!
//! ## The four principles
//!
//! 1. A program must not generate an implicit error as a result of
//!    receiving an explicit error.
//! 2. An escaping error must be used to convert a potential implicit error
//!    into an explicit error at a higher level.
//! 3. An error must be propagated to the program that manages its scope.
//! 4. Error interfaces must be concise and finite.
//!
//! ## Quick example
//!
//! ```
//! use errorscope::prelude::*;
//!
//! // The Java Universe chain of Figure 3.
//! let stack = java_universe_stack();
//!
//! // The home file system goes offline during remote I/O. This is not a
//! // program result: it must escape to the shadow, which manages
//! // local-resource scope.
//! let err = ScopedError::escaping(
//!     codes::FILESYSTEM_OFFLINE,
//!     Scope::LocalResource,
//!     "wrapper",
//!     "home file system offline",
//! );
//! let delivery = stack.propagate(err, "wrapper");
//! assert_eq!(delivery.handled_by, Some("shadow"));
//! assert_eq!(delivery.disposition, Disposition::LogAndReschedule);
//!
//! // The delivery satisfies the principles.
//! assert!(errorscope::audit::audit_delivery(&stack, &delivery).is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod comm;
pub mod error;
pub mod escalate;
pub mod interface;
pub mod mask;
pub mod propagate;
pub mod resultfile;
pub mod scope;
pub mod stdio;

pub use comm::Comm;
pub use error::{ErrorCode, ScopedError};
pub use interface::{Conformance, ErrorVocabulary, InterfaceDecl};
pub use propagate::{Delivery, Disposition, Layer, LayerStack};
pub use resultfile::{Outcome, ResultFile};
pub use scope::Scope;

/// Convenient glob import for the common types.
pub mod prelude {
    pub use crate::comm::Comm;
    pub use crate::error::{codes, ErrorCode, ScopedError};
    pub use crate::escalate::{EscalationPolicy, RetryCriteria, RetryDecision};
    pub use crate::interface::{Conformance, ErrorVocabulary, InterfaceDecl};
    pub use crate::mask::{maskable, replicate, retry, MaskOutcome, RetryPolicy};
    pub use crate::propagate::{
        java_universe_stack, pvm_stack, rpc_stack, Delivery, Disposition, Layer, LayerStack,
    };
    pub use crate::resultfile::{Outcome, ResultFile};
    pub use crate::scope::Scope;
}
