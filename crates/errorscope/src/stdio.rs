//! Bridging scoped errors to and from `std::io::Error`.
//!
//! A library claiming to bring discipline to error propagation has to meet
//! the errors programs actually have. This module classifies
//! [`std::io::Error`]s into [`ScopedError`]s — assigning each
//! [`std::io::ErrorKind`] the scope it invalidates, per the paper's
//! taxonomy — and converts scoped errors back into `std::io::Error` for
//! handing to std-flavoured interfaces.
//!
//! The kind→scope table follows §3.3's examples: namespace and per-file
//! conditions are **file scope** (the calling function handles them);
//! connection-level conditions are **network scope** (indeterminate, to be
//! escalated with time); resource exhaustion local to the process is
//! **process scope**.

use crate::error::{codes, ErrorCode, ScopedError};
use crate::scope::Scope;
use std::io;

/// The scope an [`io::ErrorKind`] invalidates.
pub fn scope_of_kind(kind: io::ErrorKind) -> Scope {
    use io::ErrorKind as K;
    match kind {
        // Namespace and per-file conditions: the caller can handle them.
        K::NotFound
        | K::PermissionDenied
        | K::AlreadyExists
        | K::InvalidFilename
        | K::IsADirectory
        | K::NotADirectory
        | K::DirectoryNotEmpty
        | K::FileTooLarge
        | K::StorageFull
        | K::ReadOnlyFilesystem
        | K::UnexpectedEof => Scope::File,
        // Connection-level conditions: indeterminate, start at network
        // scope and let time widen them (§5).
        K::ConnectionRefused
        | K::ConnectionReset
        | K::ConnectionAborted
        | K::NotConnected
        | K::AddrInUse
        | K::AddrNotAvailable
        | K::BrokenPipe
        | K::TimedOut
        | K::HostUnreachable
        | K::NetworkUnreachable
        | K::NetworkDown => Scope::Network,
        // Local exhaustion or API misuse: the process's own mechanisms are
        // suspect.
        K::OutOfMemory | K::ResourceBusy | K::WouldBlock | K::Interrupted => Scope::Process,
        // Anything unrecognised invalidates at least the calling function.
        _ => Scope::Function,
    }
}

/// The conventional error code for an [`io::ErrorKind`].
pub fn code_of_kind(kind: io::ErrorKind) -> ErrorCode {
    use io::ErrorKind as K;
    match kind {
        K::NotFound => codes::FILE_NOT_FOUND,
        K::PermissionDenied => codes::ACCESS_DENIED,
        K::StorageFull => codes::DISK_FULL,
        K::UnexpectedEof => codes::END_OF_FILE,
        K::TimedOut => codes::CONNECTION_TIMED_OUT,
        K::ConnectionRefused => codes::CONNECTION_REFUSED,
        other => ErrorCode::owned(format!("{other:?}")),
    }
}

/// Classify a `std::io::Error` into a scoped, explicit error raised at
/// `layer`.
pub fn classify_io_error(e: &io::Error, layer: &'static str) -> ScopedError {
    ScopedError::explicit(
        code_of_kind(e.kind()),
        scope_of_kind(e.kind()),
        layer,
        e.to_string(),
    )
}

/// Render a scoped error as a `std::io::Error` for std-flavoured callers.
/// The scope and trail are preserved in the error's display text; the kind
/// is the closest `ErrorKind` for well-known codes.
pub fn to_io_error(e: &ScopedError) -> io::Error {
    let kind = match e.code.as_str() {
        "FileNotFound" => io::ErrorKind::NotFound,
        "AccessDenied" => io::ErrorKind::PermissionDenied,
        "DiskFull" => io::ErrorKind::StorageFull,
        "EndOfFile" => io::ErrorKind::UnexpectedEof,
        "ConnectionTimedOut" => io::ErrorKind::TimedOut,
        "ConnectionRefused" => io::ErrorKind::ConnectionRefused,
        "AlreadyExists" => io::ErrorKind::AlreadyExists,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(kind, e.to_string())
}

/// Extension methods for classifying `std::io` results in one call.
pub trait IoResultExt<T> {
    /// Convert the error side into a [`ScopedError`] raised at `layer`.
    fn classify(self, layer: &'static str) -> Result<T, ScopedError>;
}

impl<T> IoResultExt<T> for Result<T, io::Error> {
    fn classify(self, layer: &'static str) -> Result<T, ScopedError> {
        self.map_err(|e| classify_io_error(&e, layer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use io::ErrorKind as K;

    #[test]
    fn file_conditions_are_file_scope() {
        for k in [
            K::NotFound,
            K::PermissionDenied,
            K::StorageFull,
            K::UnexpectedEof,
        ] {
            assert_eq!(scope_of_kind(k), Scope::File, "{k:?}");
        }
    }

    #[test]
    fn connection_conditions_are_network_scope() {
        for k in [
            K::ConnectionRefused,
            K::ConnectionReset,
            K::BrokenPipe,
            K::TimedOut,
        ] {
            assert_eq!(scope_of_kind(k), Scope::Network, "{k:?}");
        }
    }

    #[test]
    fn exhaustion_is_process_scope() {
        assert_eq!(scope_of_kind(K::OutOfMemory), Scope::Process);
        assert_eq!(scope_of_kind(K::Interrupted), Scope::Process);
    }

    #[test]
    fn unknown_kinds_default_to_function_scope() {
        assert_eq!(scope_of_kind(K::Other), Scope::Function);
    }

    #[test]
    fn codes_match_paper_vocabulary() {
        assert_eq!(code_of_kind(K::NotFound), codes::FILE_NOT_FOUND);
        assert_eq!(code_of_kind(K::StorageFull), codes::DISK_FULL);
        assert_eq!(code_of_kind(K::TimedOut), codes::CONNECTION_TIMED_OUT);
    }

    #[test]
    fn classify_and_back() {
        let orig = io::Error::new(K::NotFound, "no such file: data.in");
        let scoped = classify_io_error(&orig, "fs-layer");
        assert_eq!(scoped.scope, Scope::File);
        assert_eq!(scoped.code, codes::FILE_NOT_FOUND);
        assert_eq!(scoped.origin(), Some("fs-layer"));
        assert!(scoped.message.contains("data.in"));

        let back = to_io_error(&scoped);
        assert_eq!(back.kind(), K::NotFound);
        assert!(back.to_string().contains("file scope"));
    }

    #[test]
    fn result_ext_classifies() {
        let r: Result<(), io::Error> = Err(io::Error::new(K::TimedOut, "slow"));
        let e = r.classify("net-layer").unwrap_err();
        assert_eq!(e.scope, Scope::Network);
        let ok: Result<u8, io::Error> = Ok(7);
        assert_eq!(ok.classify("net-layer").unwrap(), 7);
    }

    #[test]
    fn scoped_to_io_kind_table() {
        let cases = [
            (codes::FILE_NOT_FOUND, K::NotFound),
            (codes::ACCESS_DENIED, K::PermissionDenied),
            (codes::DISK_FULL, K::StorageFull),
            (codes::CONNECTION_TIMED_OUT, K::TimedOut),
            (ErrorCode::new("SomethingElse"), K::Other),
        ];
        for (code, kind) in cases {
            let e = ScopedError::explicit(code, Scope::File, "l", "m");
            assert_eq!(to_io_error(&e).kind(), kind);
        }
    }
}
