//! The scoped error value and its provenance chain.
//!
//! A [`ScopedError`] carries an error *code* (the detail), a [`Scope`] (the
//! portion of the system it invalidates), the [`Comm`] by which it is
//! currently travelling, and a provenance trail of [`Hop`]s recording every
//! layer it crossed and what that layer did to it. The provenance trail is
//! what lets [`crate::audit`] verify the paper's four principles after the
//! fact.
//!
//! Every error is also given a telemetry **span id** at birth
//! ([`obs::next_span_id`]): components that move the error between
//! processes record each hop as a timestamped `obs::Event::SpanHop`, so the
//! journey the trail describes structurally can be replayed from the
//! recorded event stream ([`ScopedError::trail_events`]).

use crate::comm::Comm;
use crate::scope::Scope;
use obs::span::{next_span_id, SpanId};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// A short machine-readable identifier for an error condition, e.g.
/// `"FileNotFound"`, `"DiskFull"`, `"ConnectionTimedOut"`.
///
/// Codes are deliberately *not* an enum: the whole point of the paper is
/// that a grid is composed of autonomous components that invent error
/// conditions the others have never heard of. The structure comes from
/// scopes and vocabularies, not from a closed code set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ErrorCode(pub Cow<'static, str>);

impl ErrorCode {
    /// A code from a static string, without allocation.
    pub const fn new(s: &'static str) -> Self {
        ErrorCode(Cow::Borrowed(s))
    }

    /// A code from a runtime string.
    pub fn owned(s: impl Into<String>) -> Self {
        ErrorCode(Cow::Owned(s.into()))
    }

    /// The textual form of the code.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for ErrorCode {
    fn from(s: &'static str) -> Self {
        ErrorCode::new(s)
    }
}

impl From<String> for ErrorCode {
    fn from(s: String) -> Self {
        ErrorCode::owned(s)
    }
}

/// Well-known error codes used throughout the workspace. Any component may
/// define more; these are the ones the paper names.
pub mod codes {
    use super::ErrorCode;

    /// The named file cannot be found (file scope).
    pub const FILE_NOT_FOUND: ErrorCode = ErrorCode::new("FileNotFound");
    /// Permission denied while navigating a namespace.
    pub const ACCESS_DENIED: ErrorCode = ErrorCode::new("AccessDenied");
    /// The paper's §3.4 example of an error a finite `write` vocabulary
    /// *should* declare.
    pub const DISK_FULL: ErrorCode = ErrorCode::new("DiskFull");
    /// End of file on read.
    pub const END_OF_FILE: ErrorCode = ErrorCode::new("EndOfFile");
    /// §4: "connection timed out" — must escape, not masquerade as an
    /// I/O result.
    pub const CONNECTION_TIMED_OUT: ErrorCode = ErrorCode::new("ConnectionTimedOut");
    /// §4: "credentials expired" — likewise.
    pub const CREDENTIALS_EXPIRED: ErrorCode = ErrorCode::new("CredentialsExpired");
    /// A connection was refused — the paper's example of indeterminate
    /// scope (§5).
    pub const CONNECTION_REFUSED: ErrorCode = ErrorCode::new("ConnectionRefused");
    /// The JVM ran out of memory for the program (virtual-machine scope).
    pub const OUT_OF_MEMORY: ErrorCode = ErrorCode::new("OutOfMemoryError");
    /// The JVM itself failed (virtual-machine scope).
    pub const VIRTUAL_MACHINE_ERROR: ErrorCode = ErrorCode::new("VirtualMachineError");
    /// The Java installation is misconfigured (remote-resource scope).
    pub const MISCONFIGURED_INSTALLATION: ErrorCode = ErrorCode::new("MisconfiguredInstallation");
    /// The submitter's file system is offline (local-resource scope).
    pub const FILESYSTEM_OFFLINE: ErrorCode = ErrorCode::new("FilesystemOffline");
    /// The program image is corrupt (job scope).
    pub const CORRUPT_IMAGE: ErrorCode = ErrorCode::new("CorruptImage");
    /// An input file named by the job does not exist (job scope).
    pub const MISSING_INPUT: ErrorCode = ErrorCode::new("MissingInput");
    /// A program-scope exception: null dereference.
    pub const NULL_POINTER: ErrorCode = ErrorCode::new("NullPointerException");
    /// A program-scope exception: array index out of bounds.
    pub const INDEX_OUT_OF_BOUNDS: ErrorCode = ErrorCode::new("ArrayIndexOutOfBoundsException");
    /// A program-scope exception: integer division by zero.
    pub const DIVIDE_BY_ZERO: ErrorCode = ErrorCode::new("ArithmeticException");
    /// The avian-carrier joke from §3.2: any interface may be susceptible to
    /// a `PigeonLost` if given an RFC-1149 implementation.
    pub const PIGEON_LOST: ErrorCode = ErrorCode::new("PigeonLost");
}

/// What a layer did to an error as it passed through. Recorded in the
/// provenance trail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopAction {
    /// The error came into existence at this layer.
    Raised,
    /// The layer forwarded the error unchanged to the next layer up.
    Forwarded,
    /// The layer reinterpreted the error, widening its scope — e.g. a lost
    /// connection (network scope) becomes process scope in the context of
    /// RPC (§3.3).
    Widened {
        /// Scope before reinterpretation.
        from: Scope,
        /// Scope after reinterpretation.
        to: Scope,
    },
    /// The layer could not represent the error in its interface and
    /// converted it to an escaping error (Principle 2).
    Escaped,
    /// The escaping error arrived at a layer that *can* represent it, and
    /// was converted back to an explicit error at this higher level of
    /// abstraction (the second half of Principle 2).
    Reexpressed,
    /// The layer masked the error using a fault-tolerance technique
    /// (retry, mirror, replicate) and the caller never saw it.
    Masked {
        /// The technique applied, e.g. `"retry"` or `"mirror"`.
        technique: Cow<'static, str>,
    },
    /// The error reached the program that manages its scope and was
    /// consumed there (Principle 3 satisfied).
    Handled,
    /// The layer swallowed the error and fabricated a valid-looking result —
    /// a deliberate implicit error, the cardinal sin of Principle 1.
    SwallowedIntoImplicit,
}

/// One step of an error's journey: which layer, and what it did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The name of the software layer (e.g. `"io-library"`, `"starter"`,
    /// `"shadow"`, `"schedd"`).
    pub layer: Cow<'static, str>,
    /// What the layer did.
    pub action: HopAction,
}

/// An error with a scope, a communication mode, and a provenance trail.
///
/// Equality deliberately ignores [`span`](ScopedError::span): two errors
/// describing the same condition compare equal even though each instance
/// has its own telemetry identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopedError {
    /// Machine-readable condition.
    pub code: ErrorCode,
    /// The portion of the system this error invalidates.
    pub scope: Scope,
    /// How the error is currently being communicated.
    pub comm: Comm,
    /// Human-readable detail.
    pub message: String,
    /// Every layer the error has crossed, oldest first.
    pub trail: Vec<Hop>,
    /// Telemetry span id, assigned at birth. `obs::NO_SPAN` (0) after
    /// deserialising a record written before spans existed.
    #[serde(default)]
    pub span: SpanId,
}

impl PartialEq for ScopedError {
    fn eq(&self, other: &Self) -> bool {
        self.code == other.code
            && self.scope == other.scope
            && self.comm == other.comm
            && self.message == other.message
            && self.trail == other.trail
    }
}

impl Eq for ScopedError {}

impl ScopedError {
    /// Raise a new explicit error at `layer`.
    pub fn explicit(
        code: impl Into<ErrorCode>,
        scope: Scope,
        layer: impl Into<Cow<'static, str>>,
        message: impl Into<String>,
    ) -> Self {
        ScopedError {
            code: code.into(),
            scope,
            comm: Comm::Explicit,
            message: message.into(),
            trail: vec![Hop {
                layer: layer.into(),
                action: HopAction::Raised,
            }],
            span: next_span_id(),
        }
    }

    /// Raise a new escaping error at `layer` — used when the failure cannot
    /// be represented in the layer's interface at all.
    pub fn escaping(
        code: impl Into<ErrorCode>,
        scope: Scope,
        layer: impl Into<Cow<'static, str>>,
        message: impl Into<String>,
    ) -> Self {
        ScopedError {
            code: code.into(),
            scope,
            comm: Comm::Escaping,
            message: message.into(),
            trail: vec![Hop {
                layer: layer.into(),
                action: HopAction::Raised,
            }],
            span: next_span_id(),
        }
    }

    /// Record that `layer` forwarded the error unchanged.
    pub fn forwarded(mut self, layer: impl Into<Cow<'static, str>>) -> Self {
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Forwarded,
        });
        self
    }

    /// Reinterpret the error at a wider scope (§3.3). Panics in debug builds
    /// if `to` does not contain the current scope — scopes only ever expand
    /// as errors travel upward.
    pub fn widen(mut self, to: Scope, layer: impl Into<Cow<'static, str>>) -> Self {
        debug_assert!(
            to.contains(self.scope),
            "widen must not shrink scope: {} -> {}",
            self.scope,
            to
        );
        let from = self.scope;
        self.scope = to;
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Widened { from, to },
        });
        self
    }

    /// Convert to an escaping error at `layer` (Principle 2, first half).
    pub fn escape(mut self, layer: impl Into<Cow<'static, str>>) -> Self {
        self.comm = Comm::Escaping;
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Escaped,
        });
        self
    }

    /// Convert an escaping error back to an explicit error at a higher
    /// level of abstraction (Principle 2, second half).
    pub fn reexpress(mut self, layer: impl Into<Cow<'static, str>>) -> Self {
        self.comm = Comm::Explicit;
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Reexpressed,
        });
        self
    }

    /// Record that the error reached its scope manager and was consumed.
    pub fn handle(mut self, layer: impl Into<Cow<'static, str>>) -> Self {
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Handled,
        });
        self
    }

    /// Record that a fault-tolerance technique masked the error.
    pub fn mask(
        mut self,
        technique: impl Into<Cow<'static, str>>,
        layer: impl Into<Cow<'static, str>>,
    ) -> Self {
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::Masked {
                technique: technique.into(),
            },
        });
        self
    }

    /// Record the Principle-1 violation: the layer swallowed the error and
    /// presented a fabricated value as valid. The error object survives only
    /// for auditing; the caller of the offending layer never sees it.
    pub fn swallow(mut self, layer: impl Into<Cow<'static, str>>) -> Self {
        self.comm = Comm::Implicit;
        self.trail.push(Hop {
            layer: layer.into(),
            action: HopAction::SwallowedIntoImplicit,
        });
        self
    }

    /// The layer where the error was born, if the trail is intact.
    pub fn origin(&self) -> Option<&str> {
        self.trail.first().map(|h| h.layer.as_ref())
    }

    /// The layer that most recently touched the error.
    pub fn last_layer(&self) -> Option<&str> {
        self.trail.last().map(|h| h.layer.as_ref())
    }

    /// True once a `Handled` hop has been recorded.
    pub fn is_handled(&self) -> bool {
        self.trail
            .iter()
            .any(|h| matches!(h.action, HopAction::Handled))
    }

    /// Number of layers crossed (hops beyond the raising layer).
    pub fn hops(&self) -> usize {
        self.trail.len().saturating_sub(1)
    }

    /// Project the whole provenance trail onto telemetry span events.
    pub fn trail_events(&self) -> Vec<obs::Event> {
        self.trail_events_from(0)
    }

    /// Project `trail[start..]` onto telemetry span events — used by an
    /// actor that received the error with `start` hops already recorded and
    /// must emit only the hops it added itself.
    ///
    /// The scope recorded with each hop is the error's scope *after* that
    /// hop, reconstructed from the `Widened` transitions in the trail.
    pub fn trail_events_from(&self, start: usize) -> Vec<obs::Event> {
        // Scope after hop i: start from the scope before the first widening
        // (or the final scope if none) and replay transitions forward.
        let mut scope = self
            .trail
            .iter()
            .find_map(|h| match h.action {
                HopAction::Widened { from, .. } => Some(from),
                _ => None,
            })
            .unwrap_or(self.scope);
        let mut events = Vec::new();
        for (i, hop) in self.trail.iter().enumerate() {
            if let HopAction::Widened { to, .. } = hop.action {
                scope = to;
            }
            if i < start {
                continue;
            }
            events.push(obs::Event::SpanHop {
                span: self.span,
                layer: hop.layer.to_string(),
                action: span_action(&hop.action),
                scope: scope.name().to_string(),
            });
        }
        events
    }
}

/// The telemetry rendering of a provenance-trail action.
pub fn span_action(action: &HopAction) -> obs::SpanAction {
    match action {
        HopAction::Raised => obs::SpanAction::Raised,
        HopAction::Forwarded => obs::SpanAction::Forwarded,
        HopAction::Widened { from, .. } => obs::SpanAction::Widened {
            from: from.name().to_string(),
        },
        HopAction::Escaped => obs::SpanAction::Escaped,
        HopAction::Reexpressed => obs::SpanAction::Reexpressed,
        HopAction::Masked { technique } => obs::SpanAction::Masked {
            technique: technique.to_string(),
        },
        HopAction::Handled => obs::SpanAction::Handled,
        HopAction::SwallowedIntoImplicit => obs::SpanAction::Swallowed,
    }
}

impl fmt::Display for ScopedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} scope, {}]: {}",
            self.code, self.scope, self.comm, self.message
        )
    }
}

impl std::error::Error for ScopedError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScopedError {
        ScopedError::explicit(
            codes::FILE_NOT_FOUND,
            Scope::File,
            "io-library",
            "no such file: data.in",
        )
    }

    #[test]
    fn raise_records_origin() {
        let e = sample();
        assert_eq!(e.origin(), Some("io-library"));
        assert_eq!(e.comm, Comm::Explicit);
        assert_eq!(e.hops(), 0);
    }

    #[test]
    fn widen_expands_scope_and_logs() {
        let e = sample().widen(Scope::Function, "caller");
        assert_eq!(e.scope, Scope::Function);
        assert!(matches!(
            e.trail.last().unwrap().action,
            HopAction::Widened {
                from: Scope::File,
                to: Scope::Function
            }
        ));
    }

    #[test]
    #[should_panic]
    fn widen_refuses_to_shrink() {
        // Process -> File would shrink; forbidden.
        let e = ScopedError::explicit("RpcFailure", Scope::Process, "rpc", "lost");
        let _ = e.widen(Scope::File, "caller");
    }

    #[test]
    fn escape_then_reexpress_round_trip() {
        let e = sample().escape("io-library").reexpress("wrapper");
        assert_eq!(e.comm, Comm::Explicit);
        let kinds: Vec<_> = e.trail.iter().map(|h| &h.action).collect();
        assert!(matches!(kinds[1], HopAction::Escaped));
        assert!(matches!(kinds[2], HopAction::Reexpressed));
    }

    #[test]
    fn swallow_marks_implicit() {
        let e = sample().swallow("lazy-layer");
        assert_eq!(e.comm, Comm::Implicit);
        assert!(!e.comm.is_detectable());
    }

    #[test]
    fn handled_flag() {
        let e = sample();
        assert!(!e.is_handled());
        let e = e.forwarded("starter").handle("shadow");
        assert!(e.is_handled());
        assert_eq!(e.hops(), 2);
        assert_eq!(e.last_layer(), Some("shadow"));
    }

    #[test]
    fn display_mentions_scope_and_comm() {
        let s = sample().to_string();
        assert!(s.contains("FileNotFound"));
        assert!(s.contains("file scope"));
        assert!(s.contains("explicit"));
    }

    #[test]
    fn error_code_from_string_and_static() {
        let a: ErrorCode = "DiskFull".into();
        let b: ErrorCode = String::from("DiskFull").into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "DiskFull");
    }

    #[test]
    fn spans_are_assigned_at_birth_and_ignored_by_eq() {
        let a = sample();
        let b = sample();
        assert_ne!(a.span, obs::NO_SPAN);
        assert_ne!(a.span, b.span, "each instance gets its own span");
        assert_eq!(a, b, "equality ignores the span id");
    }

    #[test]
    fn trail_events_cover_every_hop_with_running_scope() {
        let e = sample()
            .widen(Scope::Function, "caller")
            .escape("caller")
            .reexpress("wrapper");
        let events = e.trail_events();
        assert_eq!(events.len(), e.trail.len());
        let scopes: Vec<&str> = events
            .iter()
            .map(|ev| match ev {
                obs::Event::SpanHop { scope, .. } => scope.as_str(),
                _ => panic!("trail events are span hops"),
            })
            .collect();
        // Raised at file scope, widened to function, then unchanged.
        assert_eq!(scopes, vec!["file", "function", "function", "function"]);
        assert!(events.iter().all(|ev| ev.span() == Some(e.span)));
        let actions: Vec<&obs::SpanAction> = events
            .iter()
            .map(|ev| match ev {
                obs::Event::SpanHop { action, .. } => action,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(actions[0], &obs::SpanAction::Raised);
        assert_eq!(
            actions[1],
            &obs::SpanAction::Widened {
                from: "file".into()
            }
        );
        assert_eq!(actions[3], &obs::SpanAction::Reexpressed);
    }

    #[test]
    fn trail_events_from_skips_already_emitted_hops() {
        let e = sample().forwarded("starter");
        let baseline = e.trail.len();
        let e = e.forwarded("shadow").handle("schedd");
        let new = e.trail_events_from(baseline);
        assert_eq!(new.len(), 2);
        assert!(matches!(
            &new[1],
            obs::Event::SpanHop {
                action: obs::SpanAction::Handled,
                ..
            }
        ));
    }

    #[test]
    fn legacy_json_without_span_still_parses() {
        let mut j = serde_json::to_value(sample()).unwrap();
        j.as_object_mut().unwrap().remove("span");
        let back: ScopedError = serde_json::from_value(j).unwrap();
        assert_eq!(back.span, obs::NO_SPAN);
        assert_eq!(back, sample());
    }

    #[test]
    fn serde_round_trip() {
        let e = sample()
            .widen(Scope::Function, "caller")
            .escape("caller")
            .reexpress("wrapper")
            .handle("schedd");
        let j = serde_json::to_string(&e).unwrap();
        let back: ScopedError = serde_json::from_str(&j).unwrap();
        assert_eq!(back, e);
    }
}
