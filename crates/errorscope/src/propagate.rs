//! Propagation of errors to the manager of their scope — Principle 3.
//!
//! "An error must be propagated to the program that manages its scope."
//! A [`LayerStack`] models the chain of programs an error climbs through
//! (Figure 3: program wrapper → JVM → starter → shadow → schedd → user);
//! each [`Layer`] declares which scopes it manages and the error contract of
//! its upward interface. [`LayerStack::propagate`] walks an error up the
//! stack applying the paper's rules at every layer:
//!
//! 1. if the layer manages the error's scope, the error is **handled** here;
//! 2. otherwise, if the error conforms to the layer's upward interface
//!    contract, it passes up as an **explicit** error;
//! 3. otherwise it is converted to an **escaping** error (Principle 2) and
//!    carried upward until some layer manages a containing scope.
//!
//! The schedd's "last line of defense" behaviour (§4) is captured by
//! [`Disposition`]: program scope ⇒ the job completed; job scope ⇒ the job
//! is unexecutable; anything in between ⇒ log the error and try another
//! site.

use crate::comm::Comm;
use crate::error::ScopedError;
use crate::interface::{Conformance, InterfaceDecl};
use crate::scope::Scope;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One program in the propagation chain.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Program name, e.g. `"starter"`.
    pub name: &'static str,
    /// The scopes whose errors this program is responsible for consuming.
    pub manages: Vec<Scope>,
    /// The contract of the interface this layer presents to the layer
    /// above. `None` means the layer forwards anything (a pure conduit).
    pub upward_interface: Option<InterfaceDecl>,
    /// Scope reinterpretations this layer performs: when an error with
    /// scope `.0` crosses this layer, it is widened to `.1` (§3.3 — a lost
    /// connection becomes process scope in the context of RPC).
    pub widens: Vec<(Scope, Scope)>,
}

impl Layer {
    /// A layer that manages the given scopes and forwards everything else.
    pub fn new(name: &'static str, manages: impl IntoIterator<Item = Scope>) -> Self {
        Layer {
            name,
            manages: manages.into_iter().collect(),
            upward_interface: None,
            widens: Vec::new(),
        }
    }

    /// Attach an upward interface contract.
    pub fn with_interface(mut self, decl: InterfaceDecl) -> Self {
        self.upward_interface = Some(decl);
        self
    }

    /// Add a scope reinterpretation rule.
    pub fn widening(mut self, from: Scope, to: Scope) -> Self {
        assert!(
            to.contains(from),
            "widening rule must expand scope: {from} -> {to}"
        );
        self.widens.push((from, to));
        self
    }

    /// Does this layer manage `scope` (exactly)?
    pub fn manages(&self, scope: Scope) -> bool {
        self.manages.contains(&scope)
    }

    /// Does this layer manage `scope` or any scope containing it? A manager
    /// of process scope is "capable of handling" an error of any scope it
    /// contains, per §3.3 — but routing prefers the *tightest* manager, so
    /// this is used only as a fallback test.
    pub fn can_absorb(&self, scope: Scope) -> bool {
        self.manages.iter().any(|m| m.contains(scope))
    }
}

/// The outcome of propagating one error up a stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The final state of the error, trail included.
    pub error: ScopedError,
    /// The layer that consumed the error, or `None` if it fell off the top
    /// of the stack unmanaged (a system-scope failure needing a human).
    pub handled_by: Option<&'static str>,
    /// What the top-level manager should do with the job, if the stack
    /// models a grid scheduling chain.
    pub disposition: Disposition,
}

/// The schedd's last-line-of-defense decision (§4): "If it detects an error
/// of program scope, it identifies the job as complete and returns it to the
/// user. If it detects an error of job scope, it identifies the job as
/// unexecutable and also returns it to the user. Anything in between causes
/// it to log the error and then attempt to execute the program at a new
/// site."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Disposition {
    /// Program scope: the result — even an error — belongs to the user.
    ReturnCompleted,
    /// Job scope: the job can never run as submitted; return it to the user
    /// marked unexecutable.
    ReturnUnexecutable,
    /// An environmental error between program and job scope: log it and try
    /// another execution site.
    LogAndReschedule,
    /// The error exceeded every scope the scheduling chain manages; only an
    /// administrator can act.
    EscalateToHuman,
}

impl Disposition {
    /// The disposition the schedd applies to an error of the given scope.
    pub fn for_scope(scope: Scope) -> Disposition {
        match scope {
            Scope::Program => Disposition::ReturnCompleted,
            Scope::Job => Disposition::ReturnUnexecutable,
            Scope::Pool | Scope::System => Disposition::EscalateToHuman,
            _ => Disposition::LogAndReschedule,
        }
    }

    /// Does the job leave the queue as a result?
    pub fn returns_to_user(self) -> bool {
        matches!(
            self,
            Disposition::ReturnCompleted | Disposition::ReturnUnexecutable
        )
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Disposition::ReturnCompleted => "return-completed",
            Disposition::ReturnUnexecutable => "return-unexecutable",
            Disposition::LogAndReschedule => "log-and-reschedule",
            Disposition::EscalateToHuman => "escalate-to-human",
        };
        f.write_str(s)
    }
}

/// A stack of layers, bottom (closest to the fault) first.
#[derive(Debug, Clone, Default)]
pub struct LayerStack {
    layers: Vec<Layer>,
}

impl LayerStack {
    /// An empty stack.
    pub fn new() -> Self {
        LayerStack { layers: Vec::new() }
    }

    /// Push the next layer up.
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// The layers, bottom first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Find the name of the layer that manages `scope`, if any — the
    /// *tightest* manager wins when several could absorb it.
    pub fn manager_of(&self, scope: Scope) -> Option<&'static str> {
        // Exact managers first…
        if let Some(l) = self.layers.iter().find(|l| l.manages(scope)) {
            return Some(l.name);
        }
        // …then the layer managing the smallest containing scope.
        self.layers
            .iter()
            .flat_map(|l| {
                l.manages
                    .iter()
                    .filter(|m| m.contains(scope))
                    .map(move |m| (m.depth(), l.name))
            })
            .max_by_key(|(depth, _)| *depth)
            .map(|(_, name)| name)
    }

    /// Propagate `err` from the bottom of the stack upward, applying the
    /// three rules described in the module documentation. The error's trail
    /// records every decision for later auditing.
    ///
    /// `from` names the layer that raised or received the error; the walk
    /// starts at the first layer **above** `from` (or at the bottom if
    /// `from` is unknown).
    pub fn propagate(&self, mut err: ScopedError, from: &str) -> Delivery {
        let start = self
            .layers
            .iter()
            .position(|l| l.name == from)
            .map(|i| i + 1)
            .unwrap_or(0);

        for layer in &self.layers[start..] {
            // Reinterpretation: this layer may widen the scope (§3.3).
            if let Some(&(_, to_s)) = layer.widens.iter().find(|(f, _)| *f == err.scope) {
                err = err.widen(to_s, layer.name);
            }

            // Rule 1: manager of this scope consumes the error.
            if layer.manages(err.scope) {
                let disposition = Disposition::for_scope(err.scope);
                let error = err.handle(layer.name);
                return Delivery {
                    error,
                    handled_by: Some(layer.name),
                    disposition,
                };
            }

            // Rules 2 & 3: cross this layer's upward interface.
            match &layer.upward_interface {
                None => {
                    err = err.forwarded(layer.name);
                }
                Some(decl) => {
                    if err.comm == Comm::Escaping {
                        err = err.forwarded(layer.name);
                    } else {
                        match decl.conformance("result", &err.code) {
                            Conformance::DeliverExplicit => err = err.forwarded(layer.name),
                            Conformance::MustEscape => err = err.escape(layer.name),
                        }
                    }
                }
            }
        }

        // No layer manages this scope exactly. The error is absorbed by
        // the manager of the tightest *containing* scope, if any — the
        // paper's "last line of defense" behaviour (a manager of process
        // scope is capable of handling any error its scope contains).
        if let Some(name) = self.manager_of(err.scope) {
            let disposition = Disposition::for_scope(err.scope);
            let error = err.handle(name);
            return Delivery {
                error,
                handled_by: Some(name),
                disposition,
            };
        }
        // Truly unmanaged: only a human can act.
        Delivery {
            disposition: Disposition::EscalateToHuman,
            handled_by: None,
            error: err,
        }
    }
}

/// The Java Universe propagation chain of Figure 3, with each program
/// managing the scopes the paper assigns to it. The `"user"` layer at the
/// top manages program scope: a program result, error or otherwise, belongs
/// to the user.
pub fn java_universe_stack() -> LayerStack {
    LayerStack::new()
        .layer(Layer::new("wrapper", []))
        .layer(Layer::new("jvm", [Scope::VirtualMachine]))
        .layer(Layer::new("starter", [Scope::RemoteResource]))
        .layer(Layer::new("shadow", [Scope::LocalResource]))
        .layer(Layer::new("schedd", [Scope::Job, Scope::Pool]))
        .layer(Layer::new("user", [Scope::Program]))
}

/// The paper's §3.3 RPC example: "a failure in remote procedure call has
/// process scope. It indicates that the mechanism of function call is no
/// longer valid within the process… The creator of a process is capable of
/// handling an RPC error of process scope." A lost connection is widened
/// to process scope as it crosses the RPC layer.
pub fn rpc_stack() -> LayerStack {
    LayerStack::new()
        .layer(Layer::new("socket", []))
        .layer(Layer::new("rpc", []).widening(Scope::Network, Scope::Process))
        .layer(Layer::new(
            "callee-function",
            [Scope::File, Scope::Function],
        ))
        .layer(Layer::new("process-creator", [Scope::Process]))
}

/// The paper's §3.3 PVM example: "a node failure in PVM has cluster scope.
/// If one node crashes, then the whole cluster of nodes is obliged to
/// fail… The creator of a PVM cluster is capable of handling an error of
/// cluster scope." The PVM layer widens both network- and process-scope
/// errors to cluster scope.
pub fn pvm_stack() -> LayerStack {
    LayerStack::new()
        .layer(Layer::new("node", []))
        .layer(
            Layer::new("pvm", [])
                .widening(Scope::Network, Scope::Cluster)
                .widening(Scope::Process, Scope::Cluster),
        )
        .layer(Layer::new("cluster-creator", [Scope::Cluster, Scope::Pool]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::codes::*;

    #[test]
    fn dispositions_match_section_4() {
        assert_eq!(
            Disposition::for_scope(Scope::Program),
            Disposition::ReturnCompleted
        );
        assert_eq!(
            Disposition::for_scope(Scope::Job),
            Disposition::ReturnUnexecutable
        );
        for s in [
            Scope::VirtualMachine,
            Scope::RemoteResource,
            Scope::LocalResource,
            Scope::Network,
        ] {
            assert_eq!(Disposition::for_scope(s), Disposition::LogAndReschedule);
        }
        assert!(Disposition::ReturnCompleted.returns_to_user());
        assert!(!Disposition::LogAndReschedule.returns_to_user());
    }

    #[test]
    fn figure3_routing_table() {
        let stack = java_universe_stack();
        assert_eq!(stack.manager_of(Scope::Program), Some("user"));
        assert_eq!(stack.manager_of(Scope::VirtualMachine), Some("jvm"));
        assert_eq!(stack.manager_of(Scope::RemoteResource), Some("starter"));
        assert_eq!(stack.manager_of(Scope::LocalResource), Some("shadow"));
        assert_eq!(stack.manager_of(Scope::Job), Some("schedd"));
    }

    #[test]
    fn oom_is_consumed_by_jvm_manager() {
        let stack = java_universe_stack();
        let e = ScopedError::explicit(
            OUT_OF_MEMORY,
            Scope::VirtualMachine,
            "wrapper",
            "heap exhausted",
        );
        let d = stack.propagate(e, "wrapper");
        assert_eq!(d.handled_by, Some("jvm"));
        assert_eq!(d.disposition, Disposition::LogAndReschedule);
        assert!(d.error.is_handled());
    }

    #[test]
    fn misconfigured_jvm_reaches_starter() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(
            MISCONFIGURED_INSTALLATION,
            Scope::RemoteResource,
            "jvm",
            "bad library path",
        );
        let d = stack.propagate(e, "jvm");
        assert_eq!(d.handled_by, Some("starter"));
        assert_eq!(d.disposition, Disposition::LogAndReschedule);
    }

    #[test]
    fn offline_filesystem_reaches_shadow() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(
            FILESYSTEM_OFFLINE,
            Scope::LocalResource,
            "wrapper",
            "home fs offline",
        );
        let d = stack.propagate(e, "wrapper");
        assert_eq!(d.handled_by, Some("shadow"));
    }

    #[test]
    fn corrupt_image_reaches_schedd_as_unexecutable() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(CORRUPT_IMAGE, Scope::Job, "wrapper", "bad checksum");
        let d = stack.propagate(e, "wrapper");
        assert_eq!(d.handled_by, Some("schedd"));
        assert_eq!(d.disposition, Disposition::ReturnUnexecutable);
    }

    #[test]
    fn program_exception_travels_to_user_untouched() {
        let stack = java_universe_stack();
        let e = ScopedError::explicit(
            INDEX_OUT_OF_BOUNDS,
            Scope::Program,
            "wrapper",
            "index 7 out of bounds for length 3",
        );
        let d = stack.propagate(e, "wrapper");
        assert_eq!(d.handled_by, Some("user"));
        assert_eq!(d.disposition, Disposition::ReturnCompleted);
        // No layer converted or widened it along the way.
        assert!(d.error.trail.iter().all(|h| !matches!(
            h.action,
            crate::error::HopAction::Escaped | crate::error::HopAction::Widened { .. }
        )));
    }

    #[test]
    fn widening_rule_applies_in_transit() {
        // A network error crossing an RPC layer becomes process scope.
        let stack = LayerStack::new()
            .layer(Layer::new("socket", []))
            .layer(Layer::new("rpc", []).widening(Scope::Network, Scope::Process))
            .layer(Layer::new("supervisor", [Scope::Process]));
        let e = ScopedError::explicit(
            CONNECTION_TIMED_OUT,
            Scope::Network,
            "socket",
            "no reply in 30s",
        );
        let d = stack.propagate(e, "socket");
        assert_eq!(d.error.scope, Scope::Process);
        assert_eq!(d.handled_by, Some("supervisor"));
    }

    #[test]
    fn interface_contract_escapes_in_transit() {
        use crate::interface::{ErrorVocabulary, InterfaceDecl};
        let stack = LayerStack::new()
            .layer(Layer::new("proxy", []))
            .layer(Layer::new("io-library", []).with_interface(
                InterfaceDecl::new("io").op("result", ErrorVocabulary::finite([DISK_FULL])),
            ))
            .layer(Layer::new("starter", [Scope::RemoteResource]))
            .layer(Layer::new(
                "schedd",
                [Scope::Job, Scope::Pool, Scope::Network],
            ));
        // CredentialsExpired is outside the io vocabulary: it must escape at
        // the io-library, then travel escaping until a manager absorbs it.
        let e = ScopedError::explicit(
            CREDENTIALS_EXPIRED,
            Scope::Network,
            "proxy",
            "GSI proxy expired",
        );
        let d = stack.propagate(e, "proxy");
        assert_eq!(d.handled_by, Some("schedd"));
        assert!(d
            .error
            .trail
            .iter()
            .any(|h| matches!(h.action, crate::error::HopAction::Escaped)));
    }

    #[test]
    fn unmanaged_scope_falls_to_human() {
        let stack = LayerStack::new().layer(Layer::new("only", [Scope::File]));
        let e = ScopedError::explicit("Meltdown", Scope::Pool, "only", "pool-wide outage");
        let d = stack.propagate(e, "only");
        assert_eq!(d.handled_by, None);
        assert_eq!(d.disposition, Disposition::EscalateToHuman);
    }

    #[test]
    fn manager_of_prefers_tightest_containing_scope() {
        let stack = LayerStack::new()
            .layer(Layer::new("narrow", [Scope::VirtualMachine]))
            .layer(Layer::new("broad", [Scope::Pool]));
        // Program scope has no exact manager; VirtualMachine is the
        // tightest containing managed scope.
        assert_eq!(stack.manager_of(Scope::Program), Some("narrow"));
        assert_eq!(stack.manager_of(Scope::Job), Some("broad"));
    }

    #[test]
    fn rpc_stack_matches_section_3_3() {
        let stack = rpc_stack();
        // A file error is handled by the calling function.
        let e = ScopedError::explicit(FILE_NOT_FOUND, Scope::File, "socket", "");
        let d = stack.propagate(e, "socket");
        assert_eq!(d.handled_by, Some("callee-function"));
        // A lost connection becomes process scope at the RPC layer and is
        // consumed by the process creator.
        let e = ScopedError::escaping(CONNECTION_TIMED_OUT, Scope::Network, "socket", "");
        let d = stack.propagate(e, "socket");
        assert_eq!(d.error.scope, Scope::Process);
        assert_eq!(d.handled_by, Some("process-creator"));
    }

    #[test]
    fn pvm_stack_matches_section_3_3() {
        let stack = pvm_stack();
        // "If one node crashes, then the whole cluster of nodes is obliged
        // to fail": a process-scope node death becomes cluster scope.
        let e = ScopedError::escaping("NodeDied", Scope::Process, "node", "SIGKILL");
        let d = stack.propagate(e, "node");
        assert_eq!(d.error.scope, Scope::Cluster);
        assert_eq!(d.handled_by, Some("cluster-creator"));
        // Network loss likewise dooms the cluster.
        let e = ScopedError::explicit(CONNECTION_TIMED_OUT, Scope::Network, "node", "");
        let d = stack.propagate(e, "node");
        assert_eq!(d.error.scope, Scope::Cluster);
        assert_eq!(d.handled_by, Some("cluster-creator"));
    }

    #[test]
    fn propagate_from_unknown_layer_starts_at_bottom() {
        let stack = java_universe_stack();
        let e = ScopedError::explicit(OUT_OF_MEMORY, Scope::VirtualMachine, "???", "");
        let d = stack.propagate(e, "not-a-layer");
        assert_eq!(d.handled_by, Some("jvm"));
    }
}
