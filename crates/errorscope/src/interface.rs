//! Finite error vocabularies — Principle 4.
//!
//! "Error interfaces must be concise and finite." An [`ErrorVocabulary`]
//! declares exactly which explicit error codes one operation may return; an
//! [`InterfaceDecl`] groups the vocabularies of all operations of one
//! interface (the paper's revised `FileWriter`: the constructor may raise
//! `FileNotFound` or `AccessDenied`, `write` may raise only `DiskFull`).
//!
//! The anti-pattern the paper criticises — Java's generic `IOException`,
//! "an indication that a routine may return any member of an expandable set
//! of related errors" — is modelled too, as [`ErrorVocabulary::generic`],
//! because the naive baseline system needs it and the auditor flags it.

use crate::comm::Comm;
use crate::error::{ErrorCode, ScopedError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The set of explicit error codes one operation is contractually allowed
/// to return.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorVocabulary {
    /// A concise, finite list (Principle 4). An error outside the list is
    /// not an ordinary result of the operation and must escape.
    Finite(BTreeSet<ErrorCode>),
    /// "Any member of an expandable set of related errors" — the
    /// `IOException` pattern. Every code is accepted as explicit. This makes
    /// a very weak statement and is flagged by the auditor as a Principle 4
    /// violation.
    Generic,
}

impl ErrorVocabulary {
    /// An empty finite vocabulary: the operation declares no explicit
    /// errors at all, so *every* failure escapes.
    pub fn none() -> Self {
        ErrorVocabulary::Finite(BTreeSet::new())
    }

    /// A finite vocabulary from a list of codes.
    pub fn finite<I, C>(codes: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: Into<ErrorCode>,
    {
        ErrorVocabulary::Finite(codes.into_iter().map(Into::into).collect())
    }

    /// The generic (unbounded) vocabulary.
    pub fn generic() -> Self {
        ErrorVocabulary::Generic
    }

    /// Does the contract admit `code` as an ordinary explicit result?
    pub fn admits(&self, code: &ErrorCode) -> bool {
        match self {
            ErrorVocabulary::Finite(set) => set.contains(code),
            ErrorVocabulary::Generic => true,
        }
    }

    /// Is this a concise, finite statement (Principle 4 satisfied)?
    pub fn is_finite(&self) -> bool {
        matches!(self, ErrorVocabulary::Finite(_))
    }

    /// Number of declared codes; `None` for the generic vocabulary.
    pub fn len(&self) -> Option<usize> {
        match self {
            ErrorVocabulary::Finite(set) => Some(set.len()),
            ErrorVocabulary::Generic => None,
        }
    }

    /// True if finite and empty.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// What the conversion layer should do with a failure, given the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conformance {
    /// The code is in the vocabulary: deliver it as an ordinary explicit
    /// result.
    DeliverExplicit,
    /// The code is outside the vocabulary: it "violates the reasonable
    /// expectations" of the interface and must be converted to an escaping
    /// error (Principles 2 and 4 together).
    MustEscape,
}

/// The declared error contract of a whole interface: one vocabulary per
/// operation name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceDecl {
    /// Interface name, e.g. `"FileWriter"` or `"chirp"`.
    pub name: String,
    ops: BTreeMap<String, ErrorVocabulary>,
}

impl InterfaceDecl {
    /// A new, empty interface declaration.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceDecl {
            name: name.into(),
            ops: BTreeMap::new(),
        }
    }

    /// Declare (or replace) the vocabulary of one operation.
    pub fn op(mut self, op: impl Into<String>, vocab: ErrorVocabulary) -> Self {
        self.ops.insert(op.into(), vocab);
        self
    }

    /// The vocabulary of `op`. An undeclared operation has the empty
    /// vocabulary: everything escapes — the safest reading of a contract
    /// that says nothing.
    pub fn vocabulary(&self, op: &str) -> ErrorVocabulary {
        self.ops
            .get(op)
            .cloned()
            .unwrap_or_else(ErrorVocabulary::none)
    }

    /// All declared operations.
    pub fn operations(&self) -> impl Iterator<Item = (&str, &ErrorVocabulary)> {
        self.ops.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Decide whether an error code may cross this interface explicitly.
    pub fn conformance(&self, op: &str, code: &ErrorCode) -> Conformance {
        if self.vocabulary(op).admits(code) {
            Conformance::DeliverExplicit
        } else {
            Conformance::MustEscape
        }
    }

    /// Apply the contract to an error crossing the interface at `layer`:
    /// in-vocabulary errors stay explicit; out-of-vocabulary errors are
    /// converted to escaping errors (Principle 2). An error already
    /// escaping stays escaping — contracts only constrain explicit results.
    pub fn filter(&self, op: &str, err: ScopedError, layer: &'static str) -> ScopedError {
        if err.comm == Comm::Escaping {
            return err.forwarded(layer);
        }
        match self.conformance(op, &err.code) {
            Conformance::DeliverExplicit => err.forwarded(layer),
            Conformance::MustEscape => err.escape(layer),
        }
    }

    /// True when every operation declares a finite vocabulary — the
    /// interface as a whole satisfies Principle 4.
    pub fn is_concise_and_finite(&self) -> bool {
        self.ops.values().all(ErrorVocabulary::is_finite)
    }
}

impl fmt::Display for InterfaceDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "interface {} {{", self.name)?;
        for (op, vocab) in &self.ops {
            match vocab {
                ErrorVocabulary::Finite(set) => {
                    let list: Vec<&str> = set.iter().map(|c| c.as_str()).collect();
                    writeln!(f, "    {op} throws {};", list.join(", "))?;
                }
                ErrorVocabulary::Generic => writeln!(f, "    {op} throws <generic>;")?,
            }
        }
        write!(f, "}}")
    }
}

/// The paper's revised `FileWriter` interface (§3.4), used in tests and
/// examples: `open` throws `FileNotFound` or `AccessDenied`; `write` throws
/// only `DiskFull`.
pub fn file_writer_revised() -> InterfaceDecl {
    use crate::error::codes::*;
    InterfaceDecl::new("FileWriter")
        .op(
            "open",
            ErrorVocabulary::finite([FILE_NOT_FOUND, ACCESS_DENIED]),
        )
        .op("write", ErrorVocabulary::finite([DISK_FULL]))
}

/// The paper's criticised original `FileWriter`: both operations throw the
/// generic `IOException`.
pub fn file_writer_generic() -> InterfaceDecl {
    InterfaceDecl::new("FileWriter")
        .op("open", ErrorVocabulary::generic())
        .op("write", ErrorVocabulary::generic())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::codes::*;
    use crate::scope::Scope;

    #[test]
    fn finite_vocabulary_admits_only_listed() {
        let v = ErrorVocabulary::finite([DISK_FULL]);
        assert!(v.admits(&DISK_FULL));
        assert!(!v.admits(&FILE_NOT_FOUND));
        assert!(v.is_finite());
        assert_eq!(v.len(), Some(1));
    }

    #[test]
    fn generic_vocabulary_admits_everything() {
        let v = ErrorVocabulary::generic();
        assert!(v.admits(&DISK_FULL));
        assert!(v.admits(&PIGEON_LOST));
        assert!(!v.is_finite());
        assert_eq!(v.len(), None);
    }

    #[test]
    fn empty_vocabulary_escapes_all() {
        let v = ErrorVocabulary::none();
        assert!(v.is_empty());
        assert!(!v.admits(&DISK_FULL));
    }

    #[test]
    fn revised_file_writer_matches_paper() {
        let i = file_writer_revised();
        assert_eq!(
            i.conformance("open", &FILE_NOT_FOUND),
            Conformance::DeliverExplicit
        );
        assert_eq!(
            i.conformance("open", &ACCESS_DENIED),
            Conformance::DeliverExplicit
        );
        // "Would it be reasonable for write to throw FileNotFound? Of
        // course not!"
        assert_eq!(
            i.conformance("write", &FILE_NOT_FOUND),
            Conformance::MustEscape
        );
        assert_eq!(
            i.conformance("write", &DISK_FULL),
            Conformance::DeliverExplicit
        );
        // ConnectionLost was never declared: it must escape per the paper.
        assert_eq!(
            i.conformance("write", &ErrorCode::new("ConnectionLost")),
            Conformance::MustEscape
        );
        assert!(i.is_concise_and_finite());
    }

    #[test]
    fn generic_file_writer_fails_p4() {
        let i = file_writer_generic();
        assert!(!i.is_concise_and_finite());
        // The generic interface lets FileNotFound pass as an ordinary
        // result of write — precisely the confusion §3.4 describes.
        assert_eq!(
            i.conformance("write", &FILE_NOT_FOUND),
            Conformance::DeliverExplicit
        );
    }

    #[test]
    fn undeclared_operation_has_empty_vocabulary() {
        let i = file_writer_revised();
        assert_eq!(i.conformance("seek", &DISK_FULL), Conformance::MustEscape);
    }

    #[test]
    fn filter_escapes_out_of_vocabulary_errors() {
        let i = file_writer_revised();
        let e = ScopedError::explicit(
            CONNECTION_TIMED_OUT,
            Scope::Network,
            "proxy",
            "timed out after 30s",
        );
        let out = i.filter("write", e, "io-library");
        assert_eq!(out.comm, Comm::Escaping);
    }

    #[test]
    fn filter_passes_in_vocabulary_errors() {
        let i = file_writer_revised();
        let e = ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "0 bytes free");
        let out = i.filter("write", e, "io-library");
        assert_eq!(out.comm, Comm::Explicit);
    }

    #[test]
    fn filter_leaves_escaping_errors_escaping() {
        let i = file_writer_revised();
        let e = ScopedError::escaping(DISK_FULL, Scope::File, "proxy", "whatever");
        let out = i.filter("write", e, "io-library");
        assert_eq!(out.comm, Comm::Escaping);
    }

    #[test]
    fn display_renders_contract() {
        let s = file_writer_revised().to_string();
        assert!(s.contains("interface FileWriter"));
        assert!(s.contains("write throws DiskFull;"));
        let g = file_writer_generic().to_string();
        assert!(g.contains("<generic>"));
    }

    #[test]
    fn serde_round_trip() {
        let i = file_writer_revised();
        let j = serde_json::to_string(&i).unwrap();
        let back: InterfaceDecl = serde_json::from_str(&j).unwrap();
        assert_eq!(back, i);
    }
}
