//! Fault-tolerance masking: retry and replication, scope-aware.
//!
//! "Once an error is understood, then we may rewrite, retry, replicate,
//! reset, or reboot as the condition warrants" (§3). This module provides
//! the two workhorse techniques as combinators over operations that return
//! [`ScopedError`]s, with scope-awareness the paper's theory makes
//! possible:
//!
//! * **Retry is only sensible for transient scopes.** Retrying a job-scope
//!   error (corrupt image) is futile anywhere; retrying a program-scope
//!   result is dishonest (it second-guesses the user's program). The
//!   [`maskable`] predicate encodes which scopes a masking layer may
//!   legitimately absorb.
//! * **Replication joins scopes.** When every replica of an operation
//!   fails, the combined error invalidates the *union* of what the
//!   individual failures invalidated: its scope is the
//!   [`Scope::join`] of the replicas' scopes.
//!
//! Successful masking records a [`crate::error::HopAction::Masked`] hop on the error it
//! absorbed, so audits can still see that a fault occurred and was
//! handled — masking hides errors from callers, never from the record.

use crate::error::ScopedError;
use crate::scope::Scope;

/// May a masking layer (retry/replicate) legitimately absorb an error of
/// this scope?
///
/// Transient, environmental scopes — file, network, process, local
/// resource, the machine-local scopes — are fair game: trying again or
/// elsewhere can genuinely succeed. Program scope is the user's result and
/// must never be masked; job scope can never succeed anywhere; pool and
/// system scopes exceed any single masking layer's authority.
pub fn maskable(scope: Scope) -> bool {
    !matches!(
        scope,
        Scope::Program | Scope::Job | Scope::Pool | Scope::System
    )
}

/// A bounded retry policy (pure counting — time-based criteria live in
/// [`crate::escalate::RetryCriteria`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        assert!(max_attempts >= 1);
        RetryPolicy { max_attempts }
    }
}

/// The outcome of a masking combinator.
#[derive(Debug, Clone, PartialEq)]
pub enum MaskOutcome<T> {
    /// The operation eventually succeeded. Any errors absorbed along the
    /// way are returned with `Masked` hops recorded — hidden from the
    /// caller's result, visible to the audit.
    Recovered {
        /// The successful result.
        value: T,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
        /// The errors that were masked.
        masked: Vec<ScopedError>,
    },
    /// Masking failed (or was not legitimate); the error propagates.
    Propagate(ScopedError),
}

impl<T> MaskOutcome<T> {
    /// The value, if recovered.
    pub fn value(self) -> Option<T> {
        match self {
            MaskOutcome::Recovered { value, .. } => Some(value),
            MaskOutcome::Propagate(_) => None,
        }
    }

    /// Did masking succeed?
    pub fn is_recovered(&self) -> bool {
        matches!(self, MaskOutcome::Recovered { .. })
    }
}

/// Retry `op` up to the policy's budget at `layer`.
///
/// The attempt counter passed to `op` is 0-based. An error whose scope is
/// not [`maskable`] propagates immediately — a disciplined layer does not
/// burn retries on a corrupt image.
pub fn retry<T>(
    policy: RetryPolicy,
    layer: &'static str,
    mut op: impl FnMut(u32) -> Result<T, ScopedError>,
) -> MaskOutcome<T> {
    let mut masked = Vec::new();
    for attempt in 0..policy.max_attempts {
        match op(attempt) {
            Ok(value) => {
                return MaskOutcome::Recovered {
                    value,
                    attempts: attempt + 1,
                    masked,
                }
            }
            Err(e) => {
                if !maskable(e.scope) {
                    return MaskOutcome::Propagate(e.forwarded(layer));
                }
                if attempt + 1 == policy.max_attempts {
                    // Budget exhausted: the last error propagates, carrying
                    // the retry history in its trail.
                    return MaskOutcome::Propagate(
                        e.mask(format!("retry x{} (exhausted)", policy.max_attempts), layer)
                            .escape(layer),
                    );
                }
                masked.push(e.mask("retry", layer));
            }
        }
    }
    unreachable!("max_attempts >= 1")
}

/// Try each replica in turn ("consult mirrored copies"); the first success
/// wins. If all fail, the combined error's scope is the **join** of the
/// replicas' scopes — the whole replicated resource is invalidated.
pub fn replicate<T>(
    layer: &'static str,
    replicas: Vec<Box<dyn FnMut() -> Result<T, ScopedError> + '_>>,
) -> MaskOutcome<T> {
    let mut masked: Vec<ScopedError> = Vec::new();
    let total = replicas.len();
    for (i, mut replica) in replicas.into_iter().enumerate() {
        match replica() {
            Ok(value) => {
                return MaskOutcome::Recovered {
                    value,
                    attempts: i as u32 + 1,
                    masked,
                }
            }
            Err(e) => {
                if !maskable(e.scope) {
                    return MaskOutcome::Propagate(e.forwarded(layer));
                }
                masked.push(e.mask("mirror", layer));
            }
        }
    }
    // All replicas failed: join the scopes.
    let joined = masked
        .iter()
        .map(|e| e.scope)
        .fold(None::<Scope>, |acc, s| {
            Some(match acc {
                None => s,
                Some(a) => a.join(s),
            })
        })
        .unwrap_or(Scope::Process);
    let detail = masked
        .iter()
        .map(|e| format!("{}", e.code))
        .collect::<Vec<_>>()
        .join(", ");
    MaskOutcome::Propagate(ScopedError::escaping(
        "AllReplicasFailed",
        joined,
        layer,
        format!("{total} replicas failed: {detail}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::codes;
    use crate::error::HopAction;

    fn transient(code: &'static str, scope: Scope) -> ScopedError {
        ScopedError::explicit(code, scope, "backend", "boom")
    }

    #[test]
    fn maskable_scopes_match_theory() {
        assert!(maskable(Scope::Network));
        assert!(maskable(Scope::File));
        assert!(maskable(Scope::LocalResource));
        assert!(maskable(Scope::RemoteResource));
        assert!(maskable(Scope::VirtualMachine));
        assert!(!maskable(Scope::Program));
        assert!(!maskable(Scope::Job));
        assert!(!maskable(Scope::Pool));
        assert!(!maskable(Scope::System));
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let out = retry(RetryPolicy::attempts(5), "shadow", |attempt| {
            if attempt < 2 {
                Err(transient("ConnectionTimedOut", Scope::Network))
            } else {
                Ok(attempt)
            }
        });
        let MaskOutcome::Recovered {
            value,
            attempts,
            masked,
        } = out
        else {
            panic!("{out:?}")
        };
        assert_eq!(value, 2);
        assert_eq!(attempts, 3);
        assert_eq!(masked.len(), 2);
        // Each masked error carries the Masked hop for auditing.
        assert!(masked.iter().all(|e| e
            .trail
            .iter()
            .any(|h| matches!(h.action, HopAction::Masked { .. }))));
    }

    #[test]
    fn retry_exhaustion_escapes() {
        let out: MaskOutcome<()> = retry(RetryPolicy::attempts(3), "shadow", |_| {
            Err(transient("ConnectionTimedOut", Scope::Network))
        });
        let MaskOutcome::Propagate(e) = out else {
            panic!()
        };
        assert_eq!(e.comm, crate::comm::Comm::Escaping);
        assert!(e
            .trail
            .iter()
            .any(|h| matches!(&h.action, HopAction::Masked { technique } if technique.contains("exhausted"))));
    }

    #[test]
    fn retry_refuses_to_mask_job_scope() {
        let mut calls = 0;
        let out: MaskOutcome<()> = retry(RetryPolicy::attempts(10), "shadow", |_| {
            calls += 1;
            Err(ScopedError::escaping(
                codes::CORRUPT_IMAGE,
                Scope::Job,
                "starter",
                "bad image",
            ))
        });
        assert!(!out.is_recovered());
        assert_eq!(calls, 1, "no retry budget burned on job scope");
    }

    #[test]
    fn retry_refuses_to_mask_program_results() {
        let out: MaskOutcome<()> = retry(RetryPolicy::attempts(10), "shadow", |_| {
            Err(ScopedError::explicit(
                codes::INDEX_OUT_OF_BOUNDS,
                Scope::Program,
                "wrapper",
                "the user's own bug",
            ))
        });
        let MaskOutcome::Propagate(e) = out else {
            panic!()
        };
        assert_eq!(e.scope, Scope::Program);
    }

    #[test]
    fn first_try_success_masks_nothing() {
        let out = retry(RetryPolicy::attempts(3), "l", |_| Ok(7));
        let MaskOutcome::Recovered {
            value,
            attempts,
            masked,
        } = out
        else {
            panic!()
        };
        assert_eq!((value, attempts), (7, 1));
        assert!(masked.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        let _ = RetryPolicy::attempts(0);
    }

    #[test]
    fn replicate_first_success_wins() {
        let out = replicate(
            "replica-mgr",
            vec![
                Box::new(|| Err(transient("FileNotFound", Scope::File))),
                Box::new(|| Ok("replica-2")),
                Box::new(|| panic!("never consulted")),
            ],
        );
        let MaskOutcome::Recovered {
            value, attempts, ..
        } = out
        else {
            panic!()
        };
        assert_eq!(value, "replica-2");
        assert_eq!(attempts, 2);
    }

    #[test]
    fn replicate_total_failure_joins_scopes() {
        let out: MaskOutcome<()> = replicate(
            "replica-mgr",
            vec![
                Box::new(|| Err(transient("FileNotFound", Scope::File))),
                Box::new(|| Err(transient("ConnectionTimedOut", Scope::Network))),
            ],
        );
        let MaskOutcome::Propagate(e) = out else {
            panic!()
        };
        // join(File, Network) = Process: losing both the file and the
        // network invalidates the whole process's view.
        assert_eq!(e.scope, Scope::File.join(Scope::Network));
        assert_eq!(e.scope, Scope::Process);
        assert!(e.message.contains("2 replicas failed"));
        assert!(e.message.contains("FileNotFound"));
    }

    #[test]
    fn replicate_empty_replica_set_propagates() {
        let out: MaskOutcome<()> = replicate("m", vec![]);
        assert!(!out.is_recovered());
    }

    #[test]
    fn mask_outcome_accessors() {
        let r: MaskOutcome<i32> = MaskOutcome::Recovered {
            value: 1,
            attempts: 1,
            masked: vec![],
        };
        assert!(r.is_recovered());
        assert_eq!(r.value(), Some(1));
        let p: MaskOutcome<i32> = MaskOutcome::Propagate(transient("X", Scope::Network));
        assert_eq!(p.value(), None);
    }
}
