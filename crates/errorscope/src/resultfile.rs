//! The wrapper's result file — §4 of the paper.
//!
//! The JVM's exit code is not useful "because it does not distinguish error
//! scopes: a result of 1 could indicate a normal program exit, an exit with
//! an exception, or an error in the surrounding environment" (Figure 4).
//! The fix: the starter makes the JVM run a *wrapper* that executes the
//! actual program, catches any exception, examines its type, and "produces a
//! result file describing the program result and the scope of any errors
//! discovered. The starter examines this result file and ignores the JVM
//! result entirely."
//!
//! [`ResultFile`] is that file: a small serialisable record that is also the
//! paper's example of using "an indirect channel, such as a file, to carry
//! the necessary information to its destination" (§3.3).

use crate::error::ErrorCode;
use crate::scope::Scope;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The program's fate as observed by the wrapper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The program exited by completing `main` or by calling
    /// `System.exit(code)`. Program scope; the exit code is the user's.
    Completed {
        /// The exit code: 0 for falling off `main`, `x` for
        /// `System.exit(x)`.
        exit_code: i32,
    },
    /// The program terminated with a program-generated exception (null
    /// dereference, array bounds, arithmetic, or a user-thrown exception).
    /// Still program scope: "users wanted to see program generated errors".
    ProgramException {
        /// Exception type name, e.g. `"ArrayIndexOutOfBoundsException"`.
        exception: ErrorCode,
        /// Exception message.
        message: String,
    },
    /// The environment, not the program, failed. The scope tells the
    /// surrounding system which manager must act; the code and message are
    /// diagnostic detail.
    EnvironmentFailure {
        /// The portion of the system the failure invalidates.
        scope: Scope,
        /// Machine-readable condition.
        code: ErrorCode,
        /// Diagnostic detail.
        message: String,
    },
}

/// The result file the wrapper leaves for the starter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultFile {
    /// Format version, for forward compatibility of the indirect channel.
    pub version: u32,
    /// What happened.
    pub outcome: Outcome,
}

/// Current format version.
pub const RESULT_FILE_VERSION: u32 = 1;

impl ResultFile {
    /// A normal completion.
    pub fn completed(exit_code: i32) -> Self {
        ResultFile {
            version: RESULT_FILE_VERSION,
            outcome: Outcome::Completed { exit_code },
        }
    }

    /// A program-scope exception.
    pub fn program_exception(exception: impl Into<ErrorCode>, message: impl Into<String>) -> Self {
        ResultFile {
            version: RESULT_FILE_VERSION,
            outcome: Outcome::ProgramException {
                exception: exception.into(),
                message: message.into(),
            },
        }
    }

    /// An environmental failure of the given scope.
    pub fn environment_failure(
        scope: Scope,
        code: impl Into<ErrorCode>,
        message: impl Into<String>,
    ) -> Self {
        ResultFile {
            version: RESULT_FILE_VERSION,
            outcome: Outcome::EnvironmentFailure {
                scope,
                code: code.into(),
                message: message.into(),
            },
        }
    }

    /// The scope of the recorded outcome. Completions and program
    /// exceptions are program scope by definition.
    pub fn scope(&self) -> Scope {
        match &self.outcome {
            Outcome::Completed { .. } | Outcome::ProgramException { .. } => Scope::Program,
            Outcome::EnvironmentFailure { scope, .. } => *scope,
        }
    }

    /// True when this is a result the user should see (program scope).
    pub fn is_program_result(&self) -> bool {
        self.scope() == Scope::Program
    }

    /// Serialise to the on-disk representation (JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("result file is always serialisable")
    }

    /// Parse the on-disk representation. A corrupt or unparseable result
    /// file is itself an environmental problem and yields `Err` — the
    /// starter must then treat the execution attempt as failed with
    /// indeterminate (execution-site) scope rather than trust a partial
    /// record.
    pub fn from_json(s: &str) -> Result<Self, ResultFileError> {
        let rf: ResultFile =
            serde_json::from_str(s).map_err(|e| ResultFileError::Malformed(e.to_string()))?;
        if rf.version != RESULT_FILE_VERSION {
            return Err(ResultFileError::UnknownVersion(rf.version));
        }
        Ok(rf)
    }
}

impl fmt::Display for ResultFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Completed { exit_code } => write!(f, "completed(exit={exit_code})"),
            Outcome::ProgramException { exception, message } => {
                write!(f, "program-exception({exception}: {message})")
            }
            Outcome::EnvironmentFailure {
                scope,
                code,
                message,
            } => {
                write!(f, "environment-failure({scope} scope, {code}: {message})")
            }
        }
    }
}

/// Failure to read a result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultFileError {
    /// The bytes did not parse.
    Malformed(String),
    /// The format version is not one we understand.
    UnknownVersion(u32),
}

impl fmt::Display for ResultFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultFileError::Malformed(m) => write!(f, "malformed result file: {m}"),
            ResultFileError::UnknownVersion(v) => write!(f, "unknown result file version {v}"),
        }
    }
}

impl std::error::Error for ResultFileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::codes::*;

    #[test]
    fn completion_is_program_scope() {
        let rf = ResultFile::completed(0);
        assert_eq!(rf.scope(), Scope::Program);
        assert!(rf.is_program_result());
        let rf = ResultFile::completed(42);
        assert!(rf.is_program_result());
    }

    #[test]
    fn program_exception_is_program_scope() {
        let rf = ResultFile::program_exception(INDEX_OUT_OF_BOUNDS, "index 7, length 3");
        assert_eq!(rf.scope(), Scope::Program);
        assert!(rf.is_program_result());
    }

    #[test]
    fn environment_failures_carry_their_scope() {
        let cases = [
            (Scope::VirtualMachine, OUT_OF_MEMORY),
            (Scope::RemoteResource, MISCONFIGURED_INSTALLATION),
            (Scope::LocalResource, FILESYSTEM_OFFLINE),
            (Scope::Job, CORRUPT_IMAGE),
        ];
        for (scope, code) in cases {
            let rf = ResultFile::environment_failure(scope, code.clone(), "x");
            assert_eq!(rf.scope(), scope);
            assert!(!rf.is_program_result());
        }
    }

    #[test]
    fn json_round_trip() {
        let files = [
            ResultFile::completed(7),
            ResultFile::program_exception(NULL_POINTER, "at main"),
            ResultFile::environment_failure(Scope::LocalResource, FILESYSTEM_OFFLINE, "nfs down"),
        ];
        for rf in files {
            let j = rf.to_json();
            let back = ResultFile::from_json(&j).unwrap();
            assert_eq!(back, rf);
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            ResultFile::from_json("{ not json"),
            Err(ResultFileError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut rf = ResultFile::completed(0);
        rf.version = 99;
        let j = serde_json::to_string(&rf).unwrap();
        assert_eq!(
            ResultFile::from_json(&j),
            Err(ResultFileError::UnknownVersion(99))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(ResultFile::completed(0).to_string(), "completed(exit=0)");
        let s = ResultFile::environment_failure(Scope::Job, CORRUPT_IMAGE, "bad").to_string();
        assert!(s.contains("job scope"));
    }
}
