//! The scope lattice.
//!
//! The central abstraction of the paper (§3.3): *the scope of an error is the
//! portion of a system which it invalidates*. Scopes form a containment
//! hierarchy — an error "may gain significance, or expand its scope, as it
//! travels up through layers of software".
//!
//! Two families of scopes appear in the paper and both are modelled here:
//!
//! * **Generic scopes** used in the theory sections: a [`Scope::File`] error
//!   (`FileNotFound`) is handled by the calling function, an RPC failure has
//!   [`Scope::Process`] scope, a PVM node failure has [`Scope::Cluster`]
//!   scope.
//! * **Grid scopes** from Figure 3 of the paper: [`Scope::Program`],
//!   [`Scope::VirtualMachine`], [`Scope::RemoteResource`],
//!   [`Scope::LocalResource`], and [`Scope::Job`], all contained in
//!   [`Scope::Pool`].
//!
//! The containment order is a tree rooted at [`Scope::System`]; the partial
//! order [`Scope::contains`] is the ancestor relation, and
//! [`Scope::join`] is the least common ancestor. [`Scope::Network`] is the
//! paper's example of an *indeterminate* scope (§5): it sits under
//! [`Scope::Process`] by default but is expected to be widened over time by
//! an [`crate::escalate::EscalationPolicy`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A region of the system that an error can invalidate.
///
/// Ordered by containment: `Program ⊂ VirtualMachine ⊂ RemoteResource ⊂ Pool
/// ⊂ System`, and `File ⊂ Function ⊂ Process ⊂ Cluster ⊂ Pool`. `Job` and
/// `LocalResource` are siblings directly under `Pool`, exactly as drawn in
/// Figure 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// A single named file is invalid (e.g. `FileNotFound`). Handled by the
    /// calling function.
    File,
    /// The mechanism of function call within one routine is invalid.
    Function,
    /// Something network-level failed (lost connection, refused connection).
    /// Deliberately *indeterminate*: §5 of the paper observes that a failure
    /// to communicate for one second may be of network scope, but a failure
    /// for a year likely has larger scope. See [`crate::escalate`].
    Network,
    /// The whole process is invalid — e.g. a failure of remote procedure
    /// call means the mechanism of function call is no longer valid within
    /// the process. Handled by the creator of the process.
    Process,
    /// A whole cluster of cooperating processes is invalid — the paper's
    /// example is a node failure in PVM, which obliges the entire cluster of
    /// nodes to fail. Handled by the creator of the cluster.
    Cluster,
    /// The user's program itself produced this result: normal completion,
    /// `System.exit`, or a program-generated exception such as
    /// `ArrayIndexOutOfBoundsException`. Handled by the *user* — the grid
    /// must deliver it untouched.
    Program,
    /// The virtual machine cannot run the program under current conditions
    /// (e.g. not enough memory for the program). The JVM informs the starter.
    VirtualMachine,
    /// The execution site cannot run the program at all (e.g. the Java
    /// installation is misconfigured). The starter informs the shadow.
    RemoteResource,
    /// A resource at the submission site is unavailable right now (e.g. the
    /// home file system is offline). The shadow informs the schedd.
    LocalResource,
    /// The job itself can never run as submitted (e.g. the program image is
    /// corrupt, or an input file is missing). The schedd informs the user
    /// that the job is unexecutable.
    Job,
    /// The whole pool — the matchmaker's domain.
    Pool,
    /// Everything. The root of the lattice; errors of system scope can only
    /// be handled by a human.
    System,
}

impl Scope {
    /// All scopes, in an arbitrary but fixed order. Useful for exhaustive
    /// tests and for iterating registries.
    pub const ALL: [Scope; 12] = [
        Scope::File,
        Scope::Function,
        Scope::Network,
        Scope::Process,
        Scope::Cluster,
        Scope::Program,
        Scope::VirtualMachine,
        Scope::RemoteResource,
        Scope::LocalResource,
        Scope::Job,
        Scope::Pool,
        Scope::System,
    ];

    /// The immediate enclosing scope, or `None` for [`Scope::System`].
    ///
    /// This tree *is* the containment order: `a.contains(b)` iff `a` is an
    /// ancestor-or-self of `b`.
    pub fn parent(self) -> Option<Scope> {
        match self {
            Scope::File => Some(Scope::Function),
            Scope::Function => Some(Scope::Process),
            Scope::Network => Some(Scope::Process),
            Scope::Process => Some(Scope::Cluster),
            Scope::Cluster => Some(Scope::Pool),
            Scope::Program => Some(Scope::VirtualMachine),
            Scope::VirtualMachine => Some(Scope::RemoteResource),
            Scope::RemoteResource => Some(Scope::Pool),
            Scope::LocalResource => Some(Scope::Pool),
            Scope::Job => Some(Scope::Pool),
            Scope::Pool => Some(Scope::System),
            Scope::System => None,
        }
    }

    /// Distance from the root: `System` is 0, `Pool` is 1, and so on.
    pub fn depth(self) -> usize {
        let mut d = 0;
        let mut cur = self;
        while let Some(p) = cur.parent() {
            d += 1;
            cur = p;
        }
        d
    }

    /// Containment: does `self` invalidate at least everything `other`
    /// invalidates? Reflexive (`s.contains(s)` is true for every scope).
    pub fn contains(self, other: Scope) -> bool {
        let mut cur = Some(other);
        while let Some(s) = cur {
            if s == self {
                return true;
            }
            cur = s.parent();
        }
        false
    }

    /// Strict containment: `self.contains(other)` and `self != other`.
    pub fn strictly_contains(self, other: Scope) -> bool {
        self != other && self.contains(other)
    }

    /// The least scope containing both `self` and `other` (least common
    /// ancestor in the containment tree). Always defined because
    /// [`Scope::System`] contains everything.
    pub fn join(self, other: Scope) -> Scope {
        let mut cur = self;
        loop {
            if cur.contains(other) {
                return cur;
            }
            cur = cur.parent().expect("System contains every scope");
        }
    }

    /// Widening: the smallest strict superscope, if any. This is the step an
    /// error takes when a layer reinterprets it — "at the level of network
    /// communications, an error indicating a lost connection is simply that;
    /// interpreted in the context of RPC it becomes an error of process
    /// scope" (§3.3).
    pub fn widened(self) -> Option<Scope> {
        self.parent()
    }

    /// The chain of scopes from `self` up to and including
    /// [`Scope::System`].
    pub fn ancestry(self) -> Vec<Scope> {
        let mut v = vec![self];
        let mut cur = self;
        while let Some(p) = cur.parent() {
            v.push(p);
            cur = p;
        }
        v
    }

    /// True for the scopes drawn in Figure 3 of the paper (the Java Universe
    /// case study).
    pub fn is_grid_scope(self) -> bool {
        matches!(
            self,
            Scope::Program
                | Scope::VirtualMachine
                | Scope::RemoteResource
                | Scope::LocalResource
                | Scope::Job
                | Scope::Pool
        )
    }

    /// A short stable name, used in result files and printed tables.
    pub fn name(self) -> &'static str {
        match self {
            Scope::File => "file",
            Scope::Function => "function",
            Scope::Network => "network",
            Scope::Process => "process",
            Scope::Cluster => "cluster",
            Scope::Program => "program",
            Scope::VirtualMachine => "virtual-machine",
            Scope::RemoteResource => "remote-resource",
            Scope::LocalResource => "local-resource",
            Scope::Job => "job",
            Scope::Pool => "pool",
            Scope::System => "system",
        }
    }

    /// Parse the stable name produced by [`Scope::name`].
    pub fn from_name(name: &str) -> Option<Scope> {
        Scope::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl PartialOrd for Scope {
    /// `a < b` iff `b` strictly contains `a`. Scopes in different branches
    /// of the tree are incomparable and return `None`.
    fn partial_cmp(&self, other: &Scope) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        if self == other {
            Some(Ordering::Equal)
        } else if other.contains(*self) {
            Some(Ordering::Less)
        } else if self.contains(*other) {
            Some(Ordering::Greater)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_is_reflexive() {
        for s in Scope::ALL {
            assert!(s.contains(s), "{s} should contain itself");
        }
    }

    #[test]
    fn system_contains_everything() {
        for s in Scope::ALL {
            assert!(Scope::System.contains(s));
        }
    }

    #[test]
    fn figure3_grid_chain() {
        // Program ⊂ VirtualMachine ⊂ RemoteResource ⊂ Pool, as in Figure 3.
        assert!(Scope::VirtualMachine.strictly_contains(Scope::Program));
        assert!(Scope::RemoteResource.strictly_contains(Scope::VirtualMachine));
        assert!(Scope::RemoteResource.strictly_contains(Scope::Program));
        assert!(Scope::Pool.strictly_contains(Scope::RemoteResource));
        assert!(Scope::Pool.strictly_contains(Scope::LocalResource));
        assert!(Scope::Pool.strictly_contains(Scope::Job));
    }

    #[test]
    fn generic_chain() {
        assert!(Scope::Function.strictly_contains(Scope::File));
        assert!(Scope::Process.strictly_contains(Scope::Function));
        assert!(Scope::Cluster.strictly_contains(Scope::Process));
        assert!(Scope::Process.strictly_contains(Scope::Network));
    }

    #[test]
    fn siblings_are_incomparable() {
        assert!(!Scope::Job.contains(Scope::LocalResource));
        assert!(!Scope::LocalResource.contains(Scope::Job));
        assert_eq!(Scope::Job.partial_cmp(&Scope::LocalResource), None);
        // Grid family vs generic family.
        assert_eq!(Scope::Program.partial_cmp(&Scope::Process), None);
    }

    #[test]
    fn join_of_siblings_is_common_parent() {
        assert_eq!(Scope::Job.join(Scope::LocalResource), Scope::Pool);
        assert_eq!(Scope::Program.join(Scope::Program), Scope::Program);
        assert_eq!(
            Scope::Program.join(Scope::VirtualMachine),
            Scope::VirtualMachine
        );
        assert_eq!(Scope::File.join(Scope::Network), Scope::Process);
        assert_eq!(Scope::Program.join(Scope::File), Scope::Pool);
    }

    #[test]
    fn widened_climbs_one_step() {
        assert_eq!(Scope::Program.widened(), Some(Scope::VirtualMachine));
        assert_eq!(Scope::System.widened(), None);
        // Widening never shrinks.
        for s in Scope::ALL {
            if let Some(w) = s.widened() {
                assert!(w.strictly_contains(s));
            }
        }
    }

    #[test]
    fn depth_is_consistent_with_parent() {
        assert_eq!(Scope::System.depth(), 0);
        assert_eq!(Scope::Pool.depth(), 1);
        for s in Scope::ALL {
            if let Some(p) = s.parent() {
                assert_eq!(s.depth(), p.depth() + 1);
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for s in Scope::ALL {
            assert_eq!(Scope::from_name(s.name()), Some(s));
        }
        assert_eq!(Scope::from_name("bogus"), None);
    }

    #[test]
    fn ancestry_ends_at_system() {
        for s in Scope::ALL {
            let a = s.ancestry();
            assert_eq!(*a.first().unwrap(), s);
            assert_eq!(*a.last().unwrap(), Scope::System);
            assert_eq!(a.len(), s.depth() + 1);
        }
    }

    #[test]
    fn partial_order_is_antisymmetric() {
        for a in Scope::ALL {
            for b in Scope::ALL {
                if a.contains(b) && b.contains(a) {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn partial_order_is_transitive() {
        for a in Scope::ALL {
            for b in Scope::ALL {
                for c in Scope::ALL {
                    if a.contains(b) && b.contains(c) {
                        assert!(a.contains(c));
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_commutative_and_an_upper_bound() {
        for a in Scope::ALL {
            for b in Scope::ALL {
                let j = a.join(b);
                assert_eq!(j, b.join(a));
                assert!(j.contains(a));
                assert!(j.contains(b));
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        for s in Scope::ALL {
            let j = serde_json::to_string(&s).unwrap();
            let back: Scope = serde_json::from_str(&j).unwrap();
            assert_eq!(back, s);
        }
    }
}
