//! Auditing error journeys against the paper's four principles.
//!
//! An error's [`trail`](crate::error::ScopedError::trail) records every
//! layer it crossed and what each did. [`audit_error`] replays the trail and
//! reports [`Violation`]s:
//!
//! * **P1** — "A program must not generate an implicit error as a result of
//!   receiving an explicit error": any `SwallowedIntoImplicit` hop.
//! * **P2** — "An escaping error must be used to convert a potential
//!   implicit error into an explicit error at a higher level": an error that
//!   was out-of-vocabulary for an interface it crossed yet was delivered
//!   explicitly (checked by [`audit_crossing`]).
//! * **P3** — "An error must be propagated to the program that manages its
//!   scope": a delivery whose final handler is not the manager of the
//!   error's scope (checked by [`audit_delivery`] against a
//!   [`LayerStack`]).
//! * **P4** — "Error interfaces must be concise and finite": a declared
//!   interface with a generic vocabulary (checked by [`audit_interface`]).
//!
//! The auditor is used by the tests, the figure harnesses, and the naive-vs-
//! scoped experiment (E1) to *count* principle violations in the baseline
//! system.

use crate::comm::Comm;
use crate::error::{HopAction, ScopedError};
use crate::interface::{Conformance, InterfaceDecl};
use crate::propagate::{Delivery, LayerStack};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which principle was violated, with diagnostic detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// P1: a layer swallowed a detectable error and fabricated a value.
    P1ImplicitFromExplicit {
        /// The offending layer.
        layer: String,
    },
    /// P2: an error that the interface cannot express was delivered as an
    /// explicit result instead of escaping.
    P2MissingEscape {
        /// The interface crossed.
        interface: String,
        /// The operation whose vocabulary was violated.
        op: String,
        /// The error code that should have escaped.
        code: String,
    },
    /// P3: the error was consumed by a program that does not manage its
    /// scope (or was never consumed at all).
    P3WrongManager {
        /// Scope of the error at delivery.
        scope: String,
        /// Who consumed it (`None`: fell off the top).
        handled_by: Option<String>,
        /// Who should have.
        expected: Option<String>,
    },
    /// P4: an interface declares a generic (unbounded) error vocabulary.
    P4GenericInterface {
        /// The interface name.
        interface: String,
        /// The offending operation.
        op: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::P1ImplicitFromExplicit { layer } => {
                write!(f, "P1: layer '{layer}' converted an explicit error into an implicit one")
            }
            Violation::P2MissingEscape { interface, op, code } => write!(
                f,
                "P2: '{code}' crossed {interface}::{op} explicitly but is outside its vocabulary and should have escaped"
            ),
            Violation::P3WrongManager { scope, handled_by, expected } => write!(
                f,
                "P3: error of {scope} scope handled by {:?}, expected {:?}",
                handled_by, expected
            ),
            Violation::P4GenericInterface { interface, op } => {
                write!(f, "P4: {interface}::{op} declares a generic error vocabulary")
            }
        }
    }
}

impl Violation {
    /// The principle number (1-4).
    pub fn principle(&self) -> u8 {
        match self {
            Violation::P1ImplicitFromExplicit { .. } => 1,
            Violation::P2MissingEscape { .. } => 2,
            Violation::P3WrongManager { .. } => 3,
            Violation::P4GenericInterface { .. } => 4,
        }
    }
}

/// Audit a single error's trail for P1 violations (the only principle
/// checkable from the trail alone).
pub fn audit_error(err: &ScopedError) -> Vec<Violation> {
    let mut v = Vec::new();
    for hop in &err.trail {
        if matches!(hop.action, HopAction::SwallowedIntoImplicit) {
            v.push(Violation::P1ImplicitFromExplicit {
                layer: hop.layer.to_string(),
            });
        }
    }
    v
}

/// Audit one interface crossing: `err` was delivered across
/// `interface`::`op` with its current [`Comm`]. Reports a P2 violation when
/// an out-of-vocabulary error crossed explicitly.
pub fn audit_crossing(interface: &InterfaceDecl, op: &str, err: &ScopedError) -> Vec<Violation> {
    let mut v = Vec::new();
    if err.comm == Comm::Explicit && interface.conformance(op, &err.code) == Conformance::MustEscape
    {
        v.push(Violation::P2MissingEscape {
            interface: interface.name.clone(),
            op: op.to_string(),
            code: err.code.as_str().to_string(),
        });
    }
    v
}

/// Audit a completed delivery against the stack that produced it (P3).
pub fn audit_delivery(stack: &LayerStack, delivery: &Delivery) -> Vec<Violation> {
    let mut v = Vec::new();
    let expected = stack.manager_of(delivery.error.scope);
    if delivery.handled_by != expected {
        v.push(Violation::P3WrongManager {
            scope: delivery.error.scope.name().to_string(),
            handled_by: delivery.handled_by.map(str::to_string),
            expected: expected.map(str::to_string),
        });
    }
    v.extend(audit_error(&delivery.error));
    v
}

/// Audit one error journey recorded as telemetry span hops (P1 and P3).
///
/// `hops` is the ordered sequence of [`obs::Event::SpanHop`]s for a single
/// span, as emitted by the actors the error crossed (non-hop events are
/// ignored). P1 is reported for every `Swallowed` hop; P3 is checked when
/// the journey terminates in a `Handled` hop, by comparing the handling
/// layer against `stack.manager_of` for the scope recorded on that hop.
/// Journeys still in flight (no terminal hop) yield no P3 verdict.
pub fn audit_span_hops<'a, S: 'a, I>(stack: &LayerStack, hops: I) -> Vec<Violation>
where
    I: IntoIterator<Item = &'a obs::Event<S>>,
{
    use crate::scope::Scope;
    use obs::SpanAction;

    let mut v = Vec::new();
    let mut terminal: Option<(&str, &str)> = None; // (layer, scope) of last Handled
    for ev in hops {
        let obs::Event::SpanHop {
            layer,
            action,
            scope,
            ..
        } = ev
        else {
            continue;
        };
        match action {
            SpanAction::Swallowed => {
                v.push(Violation::P1ImplicitFromExplicit {
                    layer: layer.clone(),
                });
                terminal = None;
            }
            SpanAction::Handled => terminal = Some((layer.as_str(), scope.as_str())),
            _ => terminal = None,
        }
    }
    if let Some((layer, scope_name)) = terminal {
        let expected = Scope::from_name(scope_name).and_then(|s| stack.manager_of(s));
        if expected != Some(layer) {
            v.push(Violation::P3WrongManager {
                scope: scope_name.to_string(),
                handled_by: Some(layer.to_string()),
                expected: expected.map(str::to_string),
            });
        }
    }
    v
}

/// Audit every completed journey in a recorded telemetry stream.
///
/// Groups the collector's span-hop events by span id and applies
/// [`audit_span_hops`] to each journey, tallying the result. This is the
/// span-native counterpart of auditing [`Delivery`] trails: in a correctly
/// instrumented system the two agree on P1 and P3 counts.
pub fn audit_recorded_spans(stack: &LayerStack, collector: &obs::Collector) -> ViolationCounts {
    let mut counts = ViolationCounts::default();
    for (_, records) in collector.spans() {
        let events: Vec<&obs::Event<obs::Sym>> = records.iter().map(|r| r.event).collect();
        counts.add_all(&audit_span_hops(stack, events));
    }
    counts
}

/// Audit an interface declaration for P4 (generic vocabularies).
pub fn audit_interface(interface: &InterfaceDecl) -> Vec<Violation> {
    interface
        .operations()
        .filter(|(_, vocab)| !vocab.is_finite())
        .map(|(op, _)| Violation::P4GenericInterface {
            interface: interface.name.clone(),
            op: op.to_string(),
        })
        .collect()
}

/// A running tally of violations, used by the experiments to compare the
/// naive and scope-aware systems.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCounts {
    /// P1 count.
    pub p1: usize,
    /// P2 count.
    pub p2: usize,
    /// P3 count.
    pub p3: usize,
    /// P4 count.
    pub p4: usize,
}

impl ViolationCounts {
    /// Tally a batch of violations.
    pub fn add_all(&mut self, violations: &[Violation]) {
        for v in violations {
            match v.principle() {
                1 => self.p1 += 1,
                2 => self.p2 += 1,
                3 => self.p3 += 1,
                _ => self.p4 += 1,
            }
        }
    }

    /// Total across all principles.
    pub fn total(&self) -> usize {
        self.p1 + self.p2 + self.p3 + self.p4
    }

    /// True when no violations were recorded.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for ViolationCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P1={} P2={} P3={} P4={} (total {})",
            self.p1,
            self.p2,
            self.p3,
            self.p4,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::codes::*;
    use crate::interface::{file_writer_generic, file_writer_revised};
    use crate::propagate::java_universe_stack;
    use crate::scope::Scope;

    #[test]
    fn clean_trail_has_no_p1() {
        let e = ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "full")
            .forwarded("io-library")
            .handle("program");
        assert!(audit_error(&e).is_empty());
    }

    #[test]
    fn swallow_is_a_p1_violation() {
        let e =
            ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "full").swallow("io-library");
        let v = audit_error(&e);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle(), 1);
        assert!(v[0].to_string().contains("io-library"));
    }

    #[test]
    fn out_of_vocabulary_explicit_crossing_is_p2() {
        let i = file_writer_revised();
        let e = ScopedError::explicit(CONNECTION_TIMED_OUT, Scope::Network, "proxy", "t/o");
        let v = audit_crossing(&i, "write", &e);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle(), 2);
    }

    #[test]
    fn escaping_crossing_is_not_p2() {
        let i = file_writer_revised();
        let e = ScopedError::escaping(CONNECTION_TIMED_OUT, Scope::Network, "proxy", "t/o");
        assert!(audit_crossing(&i, "write", &e).is_empty());
    }

    #[test]
    fn in_vocabulary_explicit_crossing_is_clean() {
        let i = file_writer_revised();
        let e = ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "full");
        assert!(audit_crossing(&i, "write", &e).is_empty());
    }

    #[test]
    fn correct_delivery_passes_p3() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs");
        let d = stack.propagate(e, "wrapper");
        assert!(audit_delivery(&stack, &d).is_empty());
    }

    #[test]
    fn delivery_to_wrong_manager_is_p3() {
        use crate::propagate::{Delivery, Disposition};
        let stack = java_universe_stack();
        // Fabricate a delivery in which the starter consumed a local-
        // resource error (the shadow's responsibility).
        let e = ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs");
        let d = Delivery {
            error: e,
            handled_by: Some("starter"),
            disposition: Disposition::LogAndReschedule,
        };
        let v = audit_delivery(&stack, &d);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle(), 3);
    }

    #[test]
    fn generic_interface_is_p4() {
        let v = audit_interface(&file_writer_generic());
        assert_eq!(v.len(), 2); // open and write both generic
        assert!(v.iter().all(|x| x.principle() == 4));
        assert!(audit_interface(&file_writer_revised()).is_empty());
    }

    #[test]
    fn span_audit_agrees_with_trail_audit() {
        let stack = java_universe_stack();
        // A correct journey: local-resource error handled by the shadow.
        let e = ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs");
        let d = stack.propagate(e, "wrapper");
        let trail_verdict = audit_delivery(&stack, &d);
        let events = d.error.trail_events();
        let span_verdict = audit_span_hops(&stack, events.iter());
        assert!(trail_verdict.is_empty());
        assert_eq!(span_verdict, trail_verdict);

        // A swallowed journey: both audits report the same P1.
        let e =
            ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "full").swallow("io-library");
        let events = e.trail_events();
        let span_verdict = audit_span_hops(&stack, events.iter());
        assert_eq!(span_verdict, audit_error(&e));
    }

    #[test]
    fn span_audit_flags_wrong_manager() {
        let stack = java_universe_stack();
        // Fabricated journey: a local-resource error handled by the starter.
        let e = ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs")
            .forwarded("starter")
            .handle("starter");
        let events = e.trail_events();
        let v = audit_span_hops(&stack, events.iter());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle(), 3);
        assert!(v[0].to_string().contains("starter"));
    }

    #[test]
    fn span_audit_skips_journeys_still_in_flight() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs")
            .forwarded("starter");
        let events = e.trail_events();
        assert!(audit_span_hops(&stack, events.iter()).is_empty());
    }

    #[test]
    fn recorded_spans_tally_across_collector() {
        let stack = java_universe_stack();
        let mut col = obs::Collector::new();
        // Journey 1: clean (shadow handles local-resource).
        let d = stack.propagate(
            ScopedError::escaping(FILESYSTEM_OFFLINE, Scope::LocalResource, "wrapper", "nfs"),
            "wrapper",
        );
        for ev in d.error.trail_events() {
            col.record(0, "shadow", ev);
        }
        // Journey 2: a swallow (P1).
        let e =
            ScopedError::explicit(DISK_FULL, Scope::File, "proxy", "full").swallow("io-library");
        for ev in e.trail_events() {
            col.record(1, "io-library", ev);
        }
        let counts = audit_recorded_spans(&stack, &col);
        assert_eq!(counts.p1, 1);
        assert_eq!(counts.p3, 0);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn counts_tally_and_display() {
        let mut c = ViolationCounts::default();
        assert!(c.is_clean());
        c.add_all(&audit_interface(&file_writer_generic()));
        let e = ScopedError::explicit(DISK_FULL, Scope::File, "p", "").swallow("l");
        c.add_all(&audit_error(&e));
        assert_eq!(c.p4, 2);
        assert_eq!(c.p1, 1);
        assert_eq!(c.total(), 3);
        assert!(!c.is_clean());
        assert!(c.to_string().contains("total 3"));
    }
}
