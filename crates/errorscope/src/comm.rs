//! The three ways an error may be communicated (§3.1 of the paper).
//!
//! * An **implicit** error is a result presented as valid but otherwise
//!   determined to be false (√3 evaluating to 2).
//! * An **explicit** error is a result that describes an inability to carry
//!   out the requested action (`malloc` returning null).
//! * An **escaping** error is a result accompanied by a change in control
//!   flow, delivered not to the immediate caller but to a higher level of
//!   software. It is necessary when a routine can neither perform its action
//!   nor represent the failure in the range of its results.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How an error is communicated across an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Comm {
    /// A result presented as valid that is in fact false. Implicit errors
    /// are expensive to detect — typically requiring duplication of all or
    /// part of a computation — and the paper's Principle 1 forbids ever
    /// *creating* one deliberately.
    Implicit,
    /// A result that declares an inability to carry out the requested
    /// action, within the contract of the interface ("these explicit errors
    /// are ordinary results in the sense that they conform to the function's
    /// interface").
    Explicit,
    /// A result accompanied by a change in control flow, bypassing the
    /// immediate caller. On a network connection an escaping error is
    /// communicated by breaking the connection; within a running program, by
    /// stopping the program with a unique exit code. It is "a disciplined
    /// exit resulting in an explicit error at a higher level of abstraction"
    /// (Principle 2).
    Escaping,
}

impl Comm {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Comm::Implicit => "implicit",
            Comm::Explicit => "explicit",
            Comm::Escaping => "escaping",
        }
    }

    /// Whether a receiver can recognise this communication as an error
    /// without extra work. Implicit errors are, by definition, not
    /// detectable from the result alone.
    pub fn is_detectable(self) -> bool {
        !matches!(self, Comm::Implicit)
    }
}

impl fmt::Display for Comm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The Avizienis/Laprie chain the paper paraphrases in §3.1: a *fault* is a
/// violation of underlying assumptions, an *error* is an internal data state
/// reflecting a fault, and a *failure* is an externally visible deviation
/// from specification. The voting-machine example: the cosmic ray is the
/// fault, corrupted in-use data is the error, an altered victor is the
/// failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependabilityStage {
    /// A violation of a system's underlying assumptions.
    Fault,
    /// An internal data state that reflects a fault.
    Error,
    /// An externally-visible deviation from specifications.
    Failure,
}

impl DependabilityStage {
    /// The next stage a problem may (but need not) progress to: a fault need
    /// not result in an error, nor an error in a failure.
    pub fn next(self) -> Option<DependabilityStage> {
        match self {
            DependabilityStage::Fault => Some(DependabilityStage::Error),
            DependabilityStage::Error => Some(DependabilityStage::Failure),
            DependabilityStage::Failure => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_is_undetectable() {
        assert!(!Comm::Implicit.is_detectable());
        assert!(Comm::Explicit.is_detectable());
        assert!(Comm::Escaping.is_detectable());
    }

    #[test]
    fn names() {
        assert_eq!(Comm::Implicit.name(), "implicit");
        assert_eq!(Comm::Explicit.name(), "explicit");
        assert_eq!(Comm::Escaping.name(), "escaping");
    }

    #[test]
    fn dependability_chain() {
        assert_eq!(
            DependabilityStage::Fault.next(),
            Some(DependabilityStage::Error)
        );
        assert_eq!(
            DependabilityStage::Error.next(),
            Some(DependabilityStage::Failure)
        );
        assert_eq!(DependabilityStage::Failure.next(), None);
    }

    #[test]
    fn serde_round_trip() {
        for c in [Comm::Implicit, Comm::Explicit, Comm::Escaping] {
            let j = serde_json::to_string(&c).unwrap();
            assert_eq!(serde_json::from_str::<Comm>(&j).unwrap(), c);
        }
    }
}
