//! Time-based scope escalation for indeterminate errors — §5 of the paper.
//!
//! "The appropriate response to an error may be unclear if its scope is
//! indeterminate. … A failure to communicate for one second may be of
//! network scope, but a failure to communicate for a year likely has larger
//! scope. To distinguish between the two, a system must be given some
//! guidance in the form of timeouts or other resource constraints."
//!
//! [`EscalationPolicy`] maps elapsed failure duration to scope.
//! [`RetryCriteria`] models the NFS hard/soft-mount dilemma the paper cites:
//! a *hard* mount hides all network errors forever; a *soft* mount exposes
//! them after a fixed administrator-chosen retry period; neither lets "a
//! single program choose its own failure criteria" — which
//! [`RetryCriteria::PerJob`] provides.

use crate::scope::Scope;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A schedule of scope widenings keyed by how long the failure has
/// persisted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationPolicy {
    /// Scope assumed the instant the failure is observed.
    pub initial: Scope,
    /// `(after, scope)` pairs, sorted by `after` ascending: once the
    /// failure has persisted for at least `after`, its scope is at least
    /// `scope`. Every step must widen.
    steps: Vec<(Duration, Scope)>,
}

impl EscalationPolicy {
    /// A policy that never escalates.
    pub fn fixed(scope: Scope) -> Self {
        EscalationPolicy {
            initial: scope,
            steps: Vec::new(),
        }
    }

    /// Start from `initial` scope.
    pub fn new(initial: Scope) -> Self {
        EscalationPolicy {
            initial,
            steps: Vec::new(),
        }
    }

    /// After `after` of persistent failure, widen to `scope`.
    ///
    /// # Panics
    /// If `scope` does not contain the previous step's scope, or `after` is
    /// not strictly increasing — escalation must be monotonic in both time
    /// and scope.
    pub fn after(mut self, after: Duration, scope: Scope) -> Self {
        let prev_scope = self.steps.last().map(|s| s.1).unwrap_or(self.initial);
        assert!(
            scope.contains(prev_scope),
            "escalation must widen: {prev_scope} -> {scope}"
        );
        if let Some(&(prev_after, _)) = self.steps.last() {
            assert!(
                after > prev_after,
                "escalation steps must be increasing in time"
            );
        }
        self.steps.push((after, scope));
        self
    }

    /// The scope of a failure that has persisted for `elapsed`.
    pub fn scope_at(&self, elapsed: Duration) -> Scope {
        self.steps
            .iter()
            .rev()
            .find(|(after, _)| elapsed >= *after)
            .map(|&(_, s)| s)
            .unwrap_or(self.initial)
    }

    /// The instant of the next widening after `elapsed`, if any.
    pub fn next_step_after(&self, elapsed: Duration) -> Option<Duration> {
        self.steps
            .iter()
            .map(|&(after, _)| after)
            .find(|after| *after > elapsed)
    }

    /// The paper's canonical example for a refused connection: network
    /// scope for the first minute, process scope up to an hour, then
    /// remote-resource scope — "a failure to communicate for a year likely
    /// has larger scope".
    pub fn network_default() -> Self {
        EscalationPolicy::new(Scope::Network)
            .after(Duration::from_secs(60), Scope::Process)
            .after(Duration::from_secs(3600), Scope::Cluster)
    }
}

/// Failure criteria for an operation that may be retried — the NFS mount
/// analogy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetryCriteria {
    /// "Hard mounted": hide all network errors; retry forever. The caller
    /// never sees a failure — but may hang indefinitely.
    Hard,
    /// "Soft mounted": expose the error to callers after a fixed,
    /// administrator-chosen retry period. Every program on the machine gets
    /// the same deadline whether it wants it or not.
    Soft {
        /// The administrator-chosen retry period.
        timeout: Duration,
    },
    /// The mechanism the paper says both users and administrators want: a
    /// single program chooses its own failure criteria.
    PerJob {
        /// This job's own failure deadline.
        deadline: Duration,
    },
}

/// What the retry loop should do after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Try again (optionally after a pause chosen by the caller).
    Retry,
    /// Stop retrying and surface the error.
    GiveUp,
}

impl RetryCriteria {
    /// Decide whether to keep retrying after the failure has persisted for
    /// `elapsed`.
    pub fn decide(&self, elapsed: Duration) -> RetryDecision {
        match self {
            RetryCriteria::Hard => RetryDecision::Retry,
            RetryCriteria::Soft { timeout } => {
                if elapsed >= *timeout {
                    RetryDecision::GiveUp
                } else {
                    RetryDecision::Retry
                }
            }
            RetryCriteria::PerJob { deadline } => {
                if elapsed >= *deadline {
                    RetryDecision::GiveUp
                } else {
                    RetryDecision::Retry
                }
            }
        }
    }

    /// The instant (relative to failure onset) at which this criteria gives
    /// up, or `None` for [`RetryCriteria::Hard`].
    pub fn gives_up_at(&self) -> Option<Duration> {
        match self {
            RetryCriteria::Hard => None,
            RetryCriteria::Soft { timeout } => Some(*timeout),
            RetryCriteria::PerJob { deadline } => Some(*deadline),
        }
    }
}

/// A tracker for one indeterminate failure: pairs an [`EscalationPolicy`]
/// with a failure onset time (in any monotonic time base, e.g. simulation
/// ticks converted to `Duration`).
#[derive(Debug, Clone)]
pub struct IndeterminateFailure {
    policy: EscalationPolicy,
    onset: Duration,
}

impl IndeterminateFailure {
    /// Record a failure first observed at absolute time `onset`.
    pub fn observed_at(policy: EscalationPolicy, onset: Duration) -> Self {
        IndeterminateFailure { policy, onset }
    }

    /// Current scope given the absolute time `now`. Times before onset are
    /// clamped to the initial scope.
    pub fn scope_at(&self, now: Duration) -> Scope {
        let elapsed = now.saturating_sub(self.onset);
        self.policy.scope_at(elapsed)
    }

    /// The onset time.
    pub fn onset(&self) -> Duration {
        self.onset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn fixed_policy_never_escalates() {
        let p = EscalationPolicy::fixed(Scope::Network);
        assert_eq!(p.scope_at(secs(0)), Scope::Network);
        assert_eq!(p.scope_at(secs(1_000_000)), Scope::Network);
    }

    #[test]
    fn network_default_escalates_monotonically() {
        let p = EscalationPolicy::network_default();
        assert_eq!(p.scope_at(secs(1)), Scope::Network);
        assert_eq!(p.scope_at(secs(59)), Scope::Network);
        assert_eq!(p.scope_at(secs(60)), Scope::Process);
        assert_eq!(p.scope_at(secs(3599)), Scope::Process);
        assert_eq!(p.scope_at(secs(3600)), Scope::Cluster);
        assert_eq!(p.scope_at(secs(86_400 * 365)), Scope::Cluster);
    }

    #[test]
    fn scope_never_shrinks_with_time() {
        let p = EscalationPolicy::network_default();
        let mut prev = p.scope_at(secs(0));
        for t in 0..5000 {
            let s = p.scope_at(secs(t));
            assert!(s.contains(prev), "scope shrank at t={t}");
            prev = s;
        }
    }

    #[test]
    #[should_panic]
    fn narrowing_step_is_rejected() {
        // Cluster -> Network would shrink.
        let _ = EscalationPolicy::new(Scope::Cluster).after(secs(10), Scope::Network);
    }

    #[test]
    #[should_panic]
    fn non_increasing_times_are_rejected() {
        let _ = EscalationPolicy::new(Scope::Network)
            .after(secs(10), Scope::Process)
            .after(secs(10), Scope::Cluster);
    }

    #[test]
    fn next_step_lookup() {
        let p = EscalationPolicy::network_default();
        assert_eq!(p.next_step_after(secs(0)), Some(secs(60)));
        assert_eq!(p.next_step_after(secs(60)), Some(secs(3600)));
        assert_eq!(p.next_step_after(secs(3600)), None);
    }

    #[test]
    fn hard_mount_retries_forever() {
        let c = RetryCriteria::Hard;
        assert_eq!(c.decide(secs(86_400 * 365)), RetryDecision::Retry);
        assert_eq!(c.gives_up_at(), None);
    }

    #[test]
    fn soft_mount_gives_up_at_admin_timeout() {
        let c = RetryCriteria::Soft { timeout: secs(30) };
        assert_eq!(c.decide(secs(29)), RetryDecision::Retry);
        assert_eq!(c.decide(secs(30)), RetryDecision::GiveUp);
        assert_eq!(c.gives_up_at(), Some(secs(30)));
    }

    #[test]
    fn per_job_deadline_is_independent_of_admin() {
        let patient = RetryCriteria::PerJob {
            deadline: secs(600),
        };
        let hasty = RetryCriteria::PerJob { deadline: secs(5) };
        assert_eq!(patient.decide(secs(100)), RetryDecision::Retry);
        assert_eq!(hasty.decide(secs(100)), RetryDecision::GiveUp);
    }

    #[test]
    fn indeterminate_failure_tracks_onset() {
        let f = IndeterminateFailure::observed_at(EscalationPolicy::network_default(), secs(1000));
        assert_eq!(f.onset(), secs(1000));
        assert_eq!(f.scope_at(secs(500)), Scope::Network); // before onset: clamp
        assert_eq!(f.scope_at(secs(1030)), Scope::Network);
        assert_eq!(f.scope_at(secs(1060)), Scope::Process);
        assert_eq!(f.scope_at(secs(1000 + 3600)), Scope::Cluster);
    }
}
