//! Property-based tests for the error-scope theory.

use errorscope::escalate::EscalationPolicy;
use errorscope::prelude::*;
use errorscope::resultfile::ResultFile;
use proptest::prelude::*;
use std::time::Duration;

fn any_scope() -> impl Strategy<Value = Scope> {
    prop::sample::select(Scope::ALL.to_vec())
}

fn any_comm_ctor() -> impl Strategy<Value = bool> {
    any::<bool>()
}

proptest! {
    /// Containment is a partial order: reflexive, antisymmetric,
    /// transitive — over random triples.
    #[test]
    fn scope_partial_order_laws(a in any_scope(), b in any_scope(), c in any_scope()) {
        prop_assert!(a.contains(a));
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
        if a.contains(b) && b.contains(c) {
            prop_assert!(a.contains(c));
        }
    }

    /// join is the least upper bound: an upper bound, commutative,
    /// idempotent, associative.
    #[test]
    fn scope_join_is_lub(a in any_scope(), b in any_scope(), c in any_scope()) {
        let j = a.join(b);
        prop_assert!(j.contains(a) && j.contains(b));
        prop_assert_eq!(j, b.join(a));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        // Minimality: no strict descendant of j on j's path to a or b also
        // contains both (checked via every scope).
        for s in Scope::ALL {
            if s.contains(a) && s.contains(b) {
                prop_assert!(s.contains(j), "{} contains both but not join {}", s, j);
            }
        }
    }

    /// Widening never shrinks and eventually reaches System.
    #[test]
    fn widening_terminates_at_system(s in any_scope()) {
        let mut cur = s;
        let mut steps = 0;
        while let Some(w) = cur.widened() {
            prop_assert!(w.strictly_contains(cur));
            cur = w;
            steps += 1;
            prop_assert!(steps <= Scope::ALL.len());
        }
        prop_assert_eq!(cur, Scope::System);
    }

    /// ScopedError trails only ever grow; widening in transit never
    /// shrinks scope; the comm mode is whatever the last conversion set.
    #[test]
    fn error_trail_monotone(
        scope in any_scope(),
        escape_first in any_comm_ctor(),
        hops in prop::collection::vec(0u8..4, 0..8),
    ) {
        let mut e = if escape_first {
            ScopedError::escaping("X", scope, "origin", "m")
        } else {
            ScopedError::explicit("X", scope, "origin", "m")
        };
        let mut len = e.trail.len();
        let mut prev_scope = e.scope;
        for h in hops {
            e = match h {
                0 => e.forwarded("layer"),
                1 => {
                    let wider = e.scope.widened().unwrap_or(Scope::System);
                    e.widen(wider, "layer")
                }
                2 => e.escape("layer"),
                _ => e.reexpress("layer"),
            };
            prop_assert_eq!(e.trail.len(), len + 1);
            len = e.trail.len();
            prop_assert!(e.scope.contains(prev_scope));
            prev_scope = e.scope;
        }
    }

    /// Escalation policies are monotone in time regardless of step layout.
    #[test]
    fn escalation_is_monotone(
        step1 in 1u64..1000,
        gap in 1u64..1000,
        probe in prop::collection::vec(0u64..5000, 1..20),
    ) {
        let p = EscalationPolicy::new(Scope::Network)
            .after(Duration::from_secs(step1), Scope::Process)
            .after(Duration::from_secs(step1 + gap), Scope::Cluster);
        let mut probes = probe;
        probes.sort_unstable();
        let mut prev = p.scope_at(Duration::ZERO);
        for t in probes {
            let s = p.scope_at(Duration::from_secs(t));
            prop_assert!(s.contains(prev));
            prev = s;
        }
    }

    /// Result files survive serialisation for arbitrary content.
    #[test]
    fn resultfile_roundtrip(
        kind in 0u8..3,
        code in -1000i32..1000,
        name in "[A-Za-z][A-Za-z0-9]{0,30}",
        msg in ".{0,80}",
        scope in any_scope(),
    ) {
        let rf = match kind {
            0 => ResultFile::completed(code),
            1 => ResultFile::program_exception(ErrorCode::owned(name), msg),
            _ => ResultFile::environment_failure(scope, ErrorCode::owned(name), msg),
        };
        let back = ResultFile::from_json(&rf.to_json()).unwrap();
        prop_assert_eq!(back, rf);
    }

    /// Propagation through the Java Universe stack always terminates with
    /// a handler whose managed scope contains the error's final scope — or
    /// no handler, only when nothing in the stack manages a containing
    /// scope (P3 as an invariant).
    #[test]
    fn propagation_satisfies_p3(
        scope in any_scope(),
        escape in any_comm_ctor(),
    ) {
        let stack = java_universe_stack();
        let e = if escape {
            ScopedError::escaping("Y", scope, "wrapper", "m")
        } else {
            ScopedError::explicit("Y", scope, "wrapper", "m")
        };
        let d = stack.propagate(e, "wrapper");
        match d.handled_by {
            Some(h) => {
                let layer = stack
                    .layers()
                    .iter()
                    .find(|l| l.name == h)
                    .expect("handler is a layer");
                prop_assert!(layer.can_absorb(d.error.scope));
                prop_assert!(errorscope::audit::audit_delivery(&stack, &d).is_empty());
            }
            None => {
                prop_assert!(stack.manager_of(d.error.scope).is_none());
            }
        }
    }

    /// A finite vocabulary admits exactly its members; the generic one
    /// admits everything (P4 duality).
    #[test]
    fn vocabulary_membership(
        declared in prop::collection::btree_set("[A-Z][a-z]{1,8}", 0..6),
        probe in "[A-Z][a-z]{1,8}",
    ) {
        let v = ErrorVocabulary::finite(declared.iter().cloned().map(ErrorCode::owned));
        let code = ErrorCode::owned(probe.clone());
        prop_assert_eq!(v.admits(&code), declared.contains(&probe));
        prop_assert!(ErrorVocabulary::generic().admits(&code));
    }
}
