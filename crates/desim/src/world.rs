//! The simulation world: actors, clock, event loop.

use crate::actor::{Actor, ActorId, Context, Envelope};
use crate::net::Network;
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use obs::Collector;

/// A complete simulated system: a set of actors, a pending-event queue, a
/// virtual clock, a network fabric, a random stream, a trace log, and a
/// typed event collector.
pub struct World<M> {
    // Actors are stored `+ Send` so a built world can be converted into a
    // sharded parallel run ([`crate::par::ParWorld`]); the classic
    // single-threaded loop below is unchanged by the bound.
    pub(crate) actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    pub(crate) names: Vec<String>,
    pub(crate) queue: EventQueue<Envelope<M>>,
    pub(crate) now: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) net: Network,
    pub(crate) trace: TraceLog,
    pub(crate) collector: Collector,
    // Reused across dispatches: drained into the queue after each handler,
    // keeping its capacity so steady-state dispatch allocates nothing.
    pub(crate) outbox: Vec<(SimTime, Envelope<M>)>,
    pub(crate) started: bool,
    pub(crate) stop_requested: bool,
    pub(crate) events_processed: u64,
}

impl<M: 'static> World<M> {
    /// A new world with the given random seed, a default 1 ms network, and
    /// tracing enabled.
    pub fn new(seed: u64) -> Self {
        World {
            actors: Vec::new(),
            names: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed),
            net: Network::default(),
            trace: TraceLog::new(),
            collector: Collector::new(),
            outbox: Vec::new(),
            started: false,
            stop_requested: false,
            events_processed: 0,
        }
    }

    /// Replace the network model (builder style).
    pub fn with_network(mut self, net: Network) -> Self {
        self.net = net;
        self
    }

    /// Disable tracing (for benchmarks). The typed event collector stays
    /// on — it is bounded and is the primary record; use
    /// [`World::with_collector`] to disable or resize it.
    pub fn without_trace(mut self) -> Self {
        self.trace = TraceLog::disabled();
        self
    }

    /// Replace the event collector (builder style) — e.g.
    /// `Collector::with_capacity(n)` or `Collector::disabled()`.
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Register an actor; returns its id (also its [`crate::net::HostId`]).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        assert!(
            !self.started,
            "actors must be added before the world starts"
        );
        let id = self.actors.len();
        self.names.push(actor.name());
        self.actors.push(Some(actor));
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The typed event collector.
    pub fn telemetry(&self) -> &Collector {
        &self.collector
    }

    /// Mutable access to the collector (e.g. to record events from outside
    /// any actor, or to drain it between phases).
    pub fn telemetry_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// The network fabric (e.g. for inspecting delivery statistics).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The network fabric (e.g. for injecting partitions between steps).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The world's random stream (e.g. for building randomized workloads
    /// from the same seed).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Inspect a concrete actor by id.
    pub fn get<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id)?.as_deref()?.downcast_ref::<T>()
    }

    /// Mutably inspect a concrete actor by id.
    pub fn get_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors.get_mut(id)?.as_deref_mut()?.downcast_mut::<T>()
    }

    /// The registered display name of an actor.
    pub fn name_of(&self, id: ActorId) -> &str {
        &self.names[id]
    }

    /// Inject a message from "outside" (e.g. a user submitting a job),
    /// arriving after `delay`.
    pub fn inject_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        let at = self.now + SimDuration::from_micros(delay.as_micros().max(1));
        self.queue.push(at, Envelope { from: to, to, msg });
    }

    /// Inject a message arriving as soon as possible.
    pub fn inject(&mut self, to: ActorId, msg: M) {
        self.inject_after(SimDuration::ZERO, to, msg);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.actors.len() {
            let mut actor = self.actors[id].take().expect("actor present at start");
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                outbox: &mut self.outbox,
                rng: &mut self.rng,
                net: &mut self.net,
                tracelog: &mut self.trace,
                collector: &mut self.collector,
                actor_name: &self.names[id],
                stop_requested: &mut self.stop_requested,
            };
            actor.on_start(&mut ctx);
            self.actors[id] = Some(actor);
        }
        // drain(..) keeps send order (the queue's FIFO tie-break depends on
        // it) while leaving the buffer's capacity for reuse.
        for (at, env) in self.outbox.drain(..) {
            self.queue.push(at, env);
        }
    }

    /// Process the single earliest event. Returns `false` when the queue is
    /// empty or a stop was requested.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        if self.stop_requested {
            return false;
        }
        let Some((at, env)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must not run backwards");
        self.now = at;
        self.events_processed += 1;

        let Some(slot) = self.actors.get_mut(env.to) else {
            return true; // message to a never-registered actor: dropped
        };
        let Some(mut actor) = slot.take() else {
            return true; // actor is mid-dispatch (impossible single-threaded) or removed
        };
        {
            let mut ctx = Context {
                now: self.now,
                self_id: env.to,
                outbox: &mut self.outbox,
                rng: &mut self.rng,
                net: &mut self.net,
                tracelog: &mut self.trace,
                collector: &mut self.collector,
                actor_name: &self.names[env.to],
                stop_requested: &mut self.stop_requested,
            };
            actor.on_message(env.from, env.msg, &mut ctx);
        }
        self.actors[env.to] = Some(actor);
        for (when, e) in self.outbox.drain(..) {
            self.queue.push(when, e);
        }
        true
    }

    /// Run until the queue drains, a stop is requested, or `max_events`
    /// have been processed (a runaway guard). Returns the number of events
    /// processed by this call.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let before = self.events_processed;
        let mut budget = max_events;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        self.events_processed - before
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed), the queue drains, or stop is requested.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let before = self.events_processed;
        while !self.stop_requested {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, ActorId, Context};

    #[derive(Debug, Clone)]
    enum Msg {
        Tick,
        Net(#[allow(dead_code)] u32),
    }

    struct Counter {
        ticks: u32,
        period: SimDuration,
    }
    impl Actor<Msg> for Counter {
        fn name(&self) -> String {
            "counter".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send_self_after(self.period, Msg::Tick);
        }
        fn on_message(&mut self, _f: ActorId, m: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Tick = m {
                self.ticks += 1;
                ctx.send_self_after(self.period, Msg::Tick);
            }
        }
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w: World<Msg> = World::new(1);
        let c = w.add_actor(Box::new(Counter {
            ticks: 0,
            period: SimDuration::from_secs(10),
        }));
        w.run_until(SimTime::from_secs(60));
        assert_eq!(w.get::<Counter>(c).unwrap().ticks, 6);
        assert_eq!(w.now(), SimTime::from_secs(60));
    }

    #[test]
    fn run_with_budget_stops() {
        let mut w: World<Msg> = World::new(1);
        w.add_actor(Box::new(Counter {
            ticks: 0,
            period: SimDuration::from_micros(1),
        }));
        let n = w.run(1000);
        assert_eq!(n, 1000);
        assert_eq!(w.events_processed(), 1000);
        assert!(w.pending() > 0);
    }

    struct NetSender {
        peer: ActorId,
        attempts: u32,
        delivered: u32,
    }
    impl Actor<Msg> for NetSender {
        fn name(&self) -> String {
            "sender".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for i in 0..self.attempts {
                if ctx.send_net(self.peer, Msg::Net(i)) {
                    self.delivered += 1;
                }
            }
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, _c: &mut Context<'_, Msg>) {}
    }

    struct NetReceiver {
        got: u32,
    }
    impl Actor<Msg> for NetReceiver {
        fn name(&self) -> String {
            "receiver".into()
        }
        fn on_message(&mut self, _f: ActorId, m: Msg, _c: &mut Context<'_, Msg>) {
            if let Msg::Net(_) = m {
                self.got += 1;
            }
        }
    }

    #[test]
    fn partitioned_network_drops_messages() {
        let mut w: World<Msg> = World::new(7);
        let r = w.add_actor(Box::new(NetReceiver { got: 0 }));
        let s = w.add_actor(Box::new(NetSender {
            peer: r,
            attempts: 5,
            delivered: 0,
        }));
        w.net_mut().partition(r, s);
        w.run(1000);
        assert_eq!(w.get::<NetReceiver>(r).unwrap().got, 0);
        assert_eq!(w.get::<NetSender>(s).unwrap().delivered, 0);
    }

    #[test]
    fn healthy_network_delivers_all() {
        let mut w: World<Msg> = World::new(7);
        let r = w.add_actor(Box::new(NetReceiver { got: 0 }));
        let s = w.add_actor(Box::new(NetSender {
            peer: r,
            attempts: 5,
            delivered: 0,
        }));
        w.run(1000);
        assert_eq!(w.get::<NetReceiver>(r).unwrap().got, 5);
        assert_eq!(w.get::<NetSender>(s).unwrap().delivered, 5);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed: u64| -> (u64, SimTime) {
            let mut w: World<Msg> = World::new(seed);
            w.add_actor(Box::new(Counter {
                ticks: 0,
                period: SimDuration::from_millis(3),
            }));
            w.run(500);
            (w.events_processed(), w.now())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn lossy_jittery_network_is_deterministic_across_runs() {
        // Satellite of the partition-tolerance work: identical seeds and
        // identical drop/jitter/duplication settings must yield identical
        // delivery traces (arrival times included) across two runs.
        struct Recorder {
            arrivals: Vec<SimTime>,
        }
        impl Actor<Msg> for Recorder {
            fn name(&self) -> String {
                "recorder".into()
            }
            fn on_message(&mut self, _f: ActorId, m: Msg, ctx: &mut Context<'_, Msg>) {
                if let Msg::Net(_) = m {
                    self.arrivals.push(ctx.now);
                }
            }
        }
        let run = |seed: u64| {
            let net = Network::new(SimDuration::from_millis(2))
                .with_jitter(0.4)
                .with_drop_probability(0.3)
                .with_duplication_probability(0.2);
            let mut w: World<Msg> = World::new(seed).with_network(net);
            let r = w.add_actor(Box::new(Recorder { arrivals: vec![] }));
            let s = w.add_actor(Box::new(NetSender {
                peer: r,
                attempts: 200,
                delivered: 0,
            }));
            w.run(10_000);
            (
                w.get::<Recorder>(r).unwrap().arrivals.clone(),
                w.get::<NetSender>(s).unwrap().delivered,
                w.net().stats().clone(),
            )
        };
        let (a1, d1, s1) = run(5);
        let (a2, d2, s2) = run(5);
        assert_eq!(a1, a2, "arrival traces must be bit-identical");
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert!(s1.dropped_total() > 0, "the lossy net should eat something");
        assert!(s1.duplicated_total() > 0, "and duplicate something");
        assert_eq!(
            a1.len() as u64,
            u64::from(d1) - s1.duplicated_total() + 2 * s1.duplicated_total(),
            "every duplicate adds exactly one extra arrival"
        );
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut w: World<Msg> = World::new(0);
        let r = w.add_actor(Box::new(NetReceiver { got: 0 }));
        w.inject(r, Msg::Net(1));
        w.inject_after(SimDuration::from_secs(1), r, Msg::Net(2));
        w.run(100);
        assert_eq!(w.get::<NetReceiver>(r).unwrap().got, 2);
    }

    #[test]
    fn name_of_reports_registration_name() {
        let mut w: World<Msg> = World::new(0);
        let r = w.add_actor(Box::new(NetReceiver { got: 0 }));
        assert_eq!(w.name_of(r), "receiver");
    }
}
