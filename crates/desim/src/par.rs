//! Deterministic intra-world parallelism: sharded actors, conservative
//! time windows, bit-identical output at any thread count.
//!
//! A single [`World`] dispatches on one core. [`ParWorld`] converts a
//! *built* (not yet started) world into a sharded run: actors are
//! assigned round-robin to `shards` shards, each shard owning its own
//! event queue, RNG stream, network replica, telemetry staging, and span
//! range. Simulated time advances in **conservative windows** no wider
//! than the network's minimum latency (the lookahead): inside a window,
//! every shard drains only its own events, so shards never contend; any
//! message to another shard is buffered and routed at the **window
//! barrier**. Because every cross-shard message is a network send with
//! latency ≥ the lookahead, it always lands in a *later* window — no
//! shard can ever receive an event "from the past".
//!
//! ## Why the output is bit-identical at any thread count
//!
//! Thread count decides only *who* drains a shard, never *what* the
//! shard drains:
//!
//! * Events are ordered by a canonical key `(time, source, per-source
//!   seq)` ([`crate::queue::EventKey`]) that is a pure function of the
//!   sending actor's execution — not of push order, not of which worker
//!   delivered it to the queue. Same-time deliveries drain in source-id
//!   order, FIFO per source.
//! * Each shard's RNG is forked from the world seed by shard index;
//!   each shard's span ids come from a private range re-pinned around
//!   every drain; each shard's telemetry is staged locally and merged at
//!   the end in `(time, shard, record)` order.
//! * Network topology mutations made by actors (fault drivers) are
//!   *deferred*: recorded as [`crate::net::NetOp`]s and applied to every
//!   shard's replica — including the originator's — at the window
//!   barrier, in shard order. All replicas are therefore identical
//!   within any window, which keeps the window width a sound lookahead
//!   bound even when a mutation lowers a link's latency.
//! * A `stop_world()` takes effect at the window barrier: every shard
//!   finishes the window, then the run stops.
//!
//! The output is therefore a pure function of `(world, shards, window)`.
//! "Sequential" is simply `threads = 1` of the same configuration —
//! which is what the determinism gates compare against. (The classic
//! [`World::run`] loop keeps its own global-FIFO tie-break and its
//! single RNG stream, so its histories are *not* comparable to a sharded
//! run; all its pinned artifacts are untouched by this module.)
//!
//! Worker scheduling rides the process-wide [`crate::pool`]: each window
//! fans shard-drain claims out to the pool, and the driving thread
//! claims work inline, so a saturated pool degrades to sequential
//! draining instead of deadlocking — even when whole parallel worlds run
//! inside a parallel sweep.

use crate::actor::{Actor, ActorId, Context, Envelope};
use crate::net::{NetOp, NetStats, Network};
use crate::queue::{EventKey, KeyedEventQueue};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use crate::world::World;
use obs::Collector;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Span-id stride between shards of one parallel run: shard `s` allocates
/// span ids in `[base + s * SHARD_SPAN_STRIDE, …)` where `base` is the
/// thread-local counter at conversion time. 2^32 ids per shard keeps every
/// shard inside the per-seed range [`crate::sweep::SPAN_STRIDE`] (2^40)
/// for up to 256 shards.
pub const SHARD_SPAN_STRIDE: u64 = 1 << 32;

/// How a world is sharded and driven.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Number of shards actors are split across. **Part of the output**:
    /// two runs compare bit-identically only at equal shard counts.
    /// Thread count, by contrast, never affects output.
    pub shards: usize,
    /// Worker threads draining shards (including the driving thread).
    pub threads: usize,
    /// Conservative window width. `None` (the default) recomputes the
    /// network's minimum latency at every barrier — always safe. An
    /// override must not exceed the minimum cross-shard latency; the
    /// barrier asserts the lookahead invariant either way.
    pub window: Option<SimDuration>,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            shards: 8,
            threads: crate::sweep::default_width(),
            window: None,
        }
    }
}

impl ParConfig {
    /// A config with `shards` shards and `threads` threads.
    pub fn new(shards: usize, threads: usize) -> Self {
        ParConfig {
            shards: shards.max(1),
            threads: threads.max(1),
            window: None,
        }
    }
}

/// One shard: a disjoint slice of the world with everything it needs to
/// drain a window without touching any other shard.
struct Shard<M> {
    /// This shard's index (fixed at conversion).
    index: usize,
    /// Full-length slot table; only this shard's actors are `Some`.
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    queue: KeyedEventQueue<Envelope<M>>,
    rng: SimRng,
    net: Network,
    trace: TraceLog,
    collector: Collector,
    /// Reused handler outbox (same discipline as [`World`]).
    outbox: Vec<(SimTime, Envelope<M>)>,
    /// Cross-shard sends buffered for the window barrier. Reused: drained
    /// by the barrier, capacity kept.
    crossbox: Vec<(EventKey, Envelope<M>)>,
    /// Per-sender send counters (indexed by global actor id; only this
    /// shard's actors advance theirs).
    send_seq: Vec<u64>,
    /// Next span id this shard allocates; bracketed around every drain.
    span_next: u64,
    stop: bool,
    events: u64,
}

impl<M: 'static> Shard<M> {
    /// Route one outgoing envelope: same shard → own queue, other shard →
    /// crossbox (merged at the barrier). The canonical key is assigned
    /// here, from the *sender's* counter, so it is identical no matter
    /// which thread runs this shard.
    #[inline]
    fn route(&mut self, at: SimTime, env: Envelope<M>, assignment: &[usize]) {
        let src = env.from;
        let seq = self.send_seq[src];
        self.send_seq[src] = seq + 1;
        let key = EventKey {
            at,
            src: src as u64,
            seq,
        };
        if assignment[env.to] == self.index {
            self.queue.push(key, env);
        } else {
            self.crossbox.push((key, env));
        }
    }

    /// Drain every event strictly before `end` (and not after `limit`).
    fn drain_window(
        &mut self,
        end: SimTime,
        limit: SimTime,
        assignment: &[usize],
        names: &[String],
    ) {
        let saved = obs::peek_span_id();
        obs::reset_span_ids(self.span_next);
        while !self.stop {
            let Some(t) = self.queue.peek_time() else {
                break;
            };
            if t >= end || t > limit {
                break;
            }
            let (key, env) = self.queue.pop().expect("peeked");
            self.events += 1;
            let Some(slot) = self.actors.get_mut(env.to) else {
                continue; // message to a never-registered actor: dropped
            };
            let Some(mut actor) = slot.take() else {
                continue;
            };
            {
                let mut ctx = Context {
                    now: key.at,
                    self_id: env.to,
                    outbox: &mut self.outbox,
                    rng: &mut self.rng,
                    net: &mut self.net,
                    tracelog: &mut self.trace,
                    collector: &mut self.collector,
                    actor_name: &names[env.to],
                    stop_requested: &mut self.stop,
                };
                actor.on_message(env.from, env.msg, &mut ctx);
            }
            self.actors[env.to] = Some(actor);
            // drain(..) preserves send order (per-sender seq depends on
            // it) and keeps the buffer's capacity, same as `World::step`.
            let mut outbox = std::mem::take(&mut self.outbox);
            for (at, env) in outbox.drain(..) {
                self.route(at, env, assignment);
            }
            self.outbox = outbox;
        }
        self.span_next = obs::peek_span_id();
        obs::reset_span_ids(saved);
    }
}

/// State shared between the driver and the pool helpers of one window.
struct WindowJob<M> {
    shards: Arc<Vec<Mutex<Shard<M>>>>,
    assignment: Arc<Vec<usize>>,
    names: Arc<Vec<String>>,
    next: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    end: SimTime,
    limit: SimTime,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<M: 'static> WindowJob<M> {
    /// The claim loop: grab unclaimed shards and drain them. Run by the
    /// driver inline and by any pool helpers that arrive in time; every
    /// shard is drained exactly once regardless of who shows up.
    fn drain_claims(&self) {
        loop {
            let s = self.next.fetch_add(1, Ordering::SeqCst);
            if s >= self.shards.len() {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut shard = self.shards[s].lock().expect("shard mutex");
                shard.drain_window(self.end, self.limit, &self.assignment, &self.names);
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            let mut d = self.done.lock().expect("done counter");
            *d += 1;
            self.done_cv.notify_all();
        }
    }

    /// Block until every shard of this window is drained, then surface
    /// any panic from a drain on the caller.
    fn wait_all_done(&self) {
        let mut d = self.done.lock().expect("done counter");
        while *d < self.shards.len() {
            d = self.done_cv.wait(d).expect("done counter");
        }
        drop(d);
        if let Some(payload) = self.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
    }
}

/// A sharded, window-synchronized run of one world. Built with
/// [`World::into_parallel`]; driven with [`ParWorld::run_until`];
/// dismantled with [`ParWorld::finish`].
pub struct ParWorld<M> {
    shards: Arc<Vec<Mutex<Shard<M>>>>,
    assignment: Arc<Vec<usize>>,
    names: Arc<Vec<String>>,
    threads: usize,
    window: Option<SimDuration>,
    now: SimTime,
    started: bool,
    stopped: bool,
    /// The world's original collector/trace: pre-run records stay, shard
    /// staging is merged in behind them by [`ParWorld::finish`].
    master_collector: Collector,
    master_trace: TraceLog,
}

impl<M: Send + 'static> World<M> {
    /// Convert a built world into a sharded parallel run. Must be called
    /// before the world starts (no events dispatched yet); injected
    /// messages carry over.
    pub fn into_parallel(self, cfg: ParConfig) -> ParWorld<M> {
        ParWorld::from_world(self, cfg)
    }
}

impl<M: Send + 'static> ParWorld<M> {
    fn from_world(mut world: World<M>, cfg: ParConfig) -> ParWorld<M> {
        assert!(
            !world.started,
            "a world must be converted to a ParWorld before it starts"
        );
        let n = world.actors.len();
        let shards_n = cfg.shards.max(1).min(n.max(1));
        let assignment: Vec<usize> = (0..n).map(|id| id % shards_n).collect();
        let span_base = obs::peek_span_id();

        let mut shards: Vec<Shard<M>> = (0..shards_n)
            .map(|s| Shard {
                index: s,
                actors: (0..n).map(|_| None).collect(),
                queue: KeyedEventQueue::new(),
                rng: world.rng.fork(&format!("par-shard-{s}")),
                net: {
                    let mut replica = world.net.clone();
                    replica.set_op_recording(true);
                    replica
                },
                trace: if world.trace.is_enabled() {
                    TraceLog::with_capacity(world.trace.capacity())
                } else {
                    TraceLog::disabled()
                },
                collector: if world.collector.is_enabled() {
                    Collector::with_capacity(world.collector.capacity())
                } else {
                    Collector::disabled()
                },
                outbox: Vec::new(),
                crossbox: Vec::new(),
                send_seq: vec![0; n],
                span_next: span_base + (s as u64) * SHARD_SPAN_STRIDE,
                stop: false,
                events: 0,
            })
            .collect();

        for (id, slot) in world.actors.iter_mut().enumerate() {
            let actor = slot.take().expect("actor present before start");
            shards[assignment[id]].actors[id] = Some(actor);
        }

        // Injections made before conversion: external sources order after
        // every actor at the same instant, in injection order.
        let mut inject_seq = 0u64;
        while let Some((at, env)) = world.queue.pop() {
            let key = EventKey {
                at,
                src: EventKey::EXTERNAL,
                seq: inject_seq,
            };
            inject_seq += 1;
            shards[assignment[env.to]].queue.push(key, env);
        }

        ParWorld {
            shards: Arc::new(shards.into_iter().map(Mutex::new).collect()),
            assignment: Arc::new(assignment),
            names: Arc::new(std::mem::take(&mut world.names)),
            threads: cfg.threads.max(1),
            window: cfg.window,
            now: world.now,
            started: false,
            stopped: false,
            master_collector: std::mem::replace(&mut world.collector, Collector::disabled()),
            master_trace: std::mem::replace(&mut world.trace, TraceLog::disabled()),
        }
    }

    /// Current virtual time (the window frontier).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total events processed so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex").events)
            .sum()
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex").queue.len())
            .sum()
    }

    /// Did some actor request a stop?
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Inspect a concrete actor between runs (e.g. "is the schedd done?"
    /// from a slice-driving harness).
    pub fn with_actor<T: Actor<M>, R>(&self, id: ActorId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let shard = self
            .shards
            .get(*self.assignment.get(id)?)?
            .lock()
            .expect("shard mutex");
        let actor = shard.actors.get(id)?.as_deref()?;
        actor.downcast_ref::<T>().map(f)
    }

    /// The registered display name of an actor.
    pub fn name_of(&self, id: ActorId) -> &str {
        &self.names[id]
    }

    /// Run every actor's `on_start`, sequentially in actor-id order, each
    /// against its own shard's context — so startup is a pure function of
    /// the world, independent of threads.
    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut routed: Vec<(usize, EventKey, Envelope<M>)> = Vec::new();
        for id in 0..self.assignment.len() {
            let s = self.assignment[id];
            let mut guard = self.shards[s].lock().expect("shard mutex");
            let shard = &mut *guard;
            let Some(mut actor) = shard.actors[id].take() else {
                continue;
            };
            let saved = obs::peek_span_id();
            obs::reset_span_ids(shard.span_next);
            {
                let mut ctx = Context {
                    now: self.now,
                    self_id: id,
                    outbox: &mut shard.outbox,
                    rng: &mut shard.rng,
                    net: &mut shard.net,
                    tracelog: &mut shard.trace,
                    collector: &mut shard.collector,
                    actor_name: &self.names[id],
                    stop_requested: &mut shard.stop,
                };
                actor.on_start(&mut ctx);
            }
            shard.span_next = obs::peek_span_id();
            obs::reset_span_ids(saved);
            shard.actors[id] = Some(actor);
            // Assign canonical keys now (sender's counters live here);
            // push after the lock drops — targets may be other shards.
            let mut outbox = std::mem::take(&mut shard.outbox);
            for (at, env) in outbox.drain(..) {
                let src = env.from;
                let seq = shard.send_seq[src];
                shard.send_seq[src] = seq + 1;
                let key = EventKey {
                    at,
                    src: src as u64,
                    seq,
                };
                routed.push((self.assignment[env.to], key, env));
            }
            shard.outbox = outbox;
            drop(guard);
            for (target, key, env) in routed.drain(..) {
                self.shards[target]
                    .lock()
                    .expect("shard mutex")
                    .queue
                    .push(key, env);
            }
        }
        // Startup topology mutations replicate before the first window.
        self.replicate_net_ops();
        self.collect_stop();
    }

    /// Gather deferred net ops from every shard (in shard order) and
    /// apply them to every replica — the single point where topology
    /// changes take effect.
    fn replicate_net_ops(&self) {
        let mut ops: Vec<NetOp> = Vec::new();
        for s in self.shards.iter() {
            ops.append(&mut s.lock().expect("shard mutex").net.take_pending_ops());
        }
        if ops.is_empty() {
            return;
        }
        for s in self.shards.iter() {
            let mut shard = s.lock().expect("shard mutex");
            for op in &ops {
                shard.net.apply_op(op);
            }
        }
    }

    fn collect_stop(&mut self) {
        for s in self.shards.iter() {
            if s.lock().expect("shard mutex").stop {
                self.stopped = true;
            }
        }
    }

    /// The earliest pending event time across all shards.
    fn next_event_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().expect("shard mutex").queue.peek_time())
            .min()
    }

    /// The current window width: the configured override, or the
    /// network's minimum latency (recomputed every barrier, so fault
    /// drivers lowering a link's latency shrink the lookahead with it).
    fn window_width(&self) -> SimDuration {
        match self.window {
            Some(w) => SimDuration::from_micros(w.as_micros().max(1)),
            None => self.shards[0]
                .lock()
                .expect("shard mutex")
                .net
                .min_latency(),
        }
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed), the queues drain, or an actor stops the
    /// world. Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let before: u64 = self.events_processed();
        while !self.stopped {
            // Jump the window to the global next event — quiet stretches
            // of simulated time cost nothing.
            let Some(t) = self.next_event_time() else {
                break;
            };
            if t > deadline {
                break;
            }
            let end = t + self.window_width();
            let job = Arc::new(WindowJob {
                shards: Arc::clone(&self.shards),
                assignment: Arc::clone(&self.assignment),
                names: Arc::clone(&self.names),
                next: AtomicUsize::new(0),
                done: Mutex::new(0),
                done_cv: Condvar::new(),
                end,
                limit: deadline,
                panic: Mutex::new(None),
            });
            // Helpers are *optional* claimers: if the pool is saturated,
            // the inline loop below drains everything by itself.
            let helpers = self
                .threads
                .saturating_sub(1)
                .min(self.shards.len().saturating_sub(1));
            for _ in 0..helpers {
                let job = Arc::clone(&job);
                crate::pool::spawn(move || job.drain_claims());
            }
            job.drain_claims();
            job.wait_all_done();
            self.barrier_merge(end);
            self.now = end;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed() - before
    }

    /// The window barrier: route buffered cross-shard deliveries into
    /// their target shards' queues (asserting the lookahead invariant)
    /// and replicate topology mutations. Runs on the driving thread only.
    fn barrier_merge(&mut self, window_end: SimTime) {
        let mut crossed: Vec<(EventKey, Envelope<M>)> = Vec::new();
        for s in self.shards.iter() {
            crossed.append(&mut s.lock().expect("shard mutex").crossbox);
        }
        for (key, env) in crossed {
            assert!(
                key.at >= window_end,
                "lookahead violation: a cross-shard delivery at {} lands inside the window \
                 ending at {} — some message bypassed the network's minimum latency \
                 (reliable send_after across shards?); widen the latency floor or run \
                 with one shard",
                key.at,
                window_end,
            );
            self.shards[self.assignment[env.to]]
                .lock()
                .expect("shard mutex")
                .queue
                .push(key, env);
        }
        self.replicate_net_ops();
        self.collect_stop();
    }

    /// Dismantle the run: merge every shard's telemetry, trace, and
    /// network statistics into single deterministic streams (ordered by
    /// `(time, shard, record)`) and hand back the actors for inspection.
    pub fn finish(self) -> ParFinished<M> {
        let mut actors: Vec<Option<Box<dyn Actor<M> + Send>>> =
            (0..self.assignment.len()).map(|_| None).collect();
        let mut collector = self.master_collector;
        let mut trace = self.master_trace;
        let mut net_stats = NetStats::default();
        let mut events_processed = 0;

        // (at, shard, in-shard order) — each shard's stream is already
        // time-sorted, so a stable sort on time alone yields exactly that
        // order. Records re-record through the master collector so
        // interning and ring eviction happen once, deterministically.
        let mut staged: Vec<(u64, obs::EventRecord)> = Vec::new();
        let mut traced: Vec<(SimTime, crate::trace::TraceEntry)> = Vec::new();
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("shard mutex");
            events_processed += shard.events;
            net_stats.merge(shard.net.stats());
            for r in shard.collector.iter() {
                let rec = r.to_record();
                staged.push((rec.at_us, rec));
            }
            for e in shard.trace.entries() {
                traced.push((e.at, e.clone()));
            }
            for (id, slot) in shard.actors.iter_mut().enumerate() {
                if let Some(actor) = slot.take() {
                    actors[id] = Some(actor);
                }
            }
        }
        staged.sort_by_key(|(at, _)| *at);
        for (_, rec) in staged {
            collector.record(rec.at_us, &rec.actor, rec.event);
        }
        traced.sort_by_key(|(at, _)| *at);
        for (_, e) in traced {
            trace.record(e.at, e.actor, e.text);
        }

        ParFinished {
            actors,
            names: Arc::try_unwrap(self.names).unwrap_or_else(|a| (*a).clone()),
            telemetry: collector,
            trace,
            net_stats,
            events_processed,
            now: self.now,
        }
    }
}

/// What a finished parallel run leaves behind: merged streams and the
/// actors, inspectable exactly like a classic [`World`].
pub struct ParFinished<M> {
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    names: Vec<String>,
    /// The merged typed event stream.
    pub telemetry: Collector,
    /// The merged trace log.
    pub trace: TraceLog,
    /// Per-link delivery statistics summed across shard replicas.
    pub net_stats: NetStats,
    /// Total events processed across all shards.
    pub events_processed: u64,
    /// Virtual time when the run ended.
    pub now: SimTime,
}

impl<M: 'static> ParFinished<M> {
    /// Inspect a concrete actor by id.
    pub fn get<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id)?.as_deref()?.downcast_ref::<T>()
    }

    /// The registered display name of an actor.
    pub fn name_of(&self, id: ActorId) -> &str {
        &self.names[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Event;

    #[derive(Debug, Clone)]
    enum Msg {
        Hop(u32),
        Probe,
        Kick,
    }

    /// Gossips over the network ring: every hop emits telemetry, traces,
    /// consumes randomness, and forwards — so cross-shard traffic, RNG
    /// streams, span ids, and both output streams are all exercised.
    struct Gossip {
        peers: usize,
        received: u32,
    }
    impl Actor<Msg> for Gossip {
        fn name(&self) -> String {
            "gossip".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let next = (ctx.self_id + 1) % self.peers;
            ctx.send_net(next, Msg::Hop(24));
        }
        fn on_message(&mut self, _f: ActorId, m: Msg, ctx: &mut Context<'_, Msg>) {
            let Msg::Hop(left) = m else { return };
            self.received += 1;
            let span = obs::next_span_id();
            ctx.emit(Event::SpanHop {
                span,
                layer: "gossip".into(),
                action: obs::SpanAction::Raised,
                scope: "hop".into(),
            });
            ctx.trace_with(|| format!("hop {left}"));
            let _ = ctx.rng.range_u64(1, 100);
            if left > 0 {
                let next = (ctx.self_id + 1) % self.peers;
                ctx.send_net(next, Msg::Hop(left - 1));
            }
        }
    }

    fn gossip_world(seed: u64, peers: usize) -> World<Msg> {
        let mut w: World<Msg> = World::new(seed);
        for _ in 0..peers {
            w.add_actor(Box::new(Gossip { peers, received: 0 }));
        }
        w
    }

    /// One full sharded run, reduced to its observable outputs.
    fn run_sharded(
        shards: usize,
        threads: usize,
        window: Option<SimDuration>,
    ) -> (String, String, u64, SimTime) {
        let mut cfg = ParConfig::new(shards, threads);
        cfg.window = window;
        let mut pw = gossip_world(7, 12).into_parallel(cfg);
        pw.run_until(SimTime::from_millis(500));
        let fin = pw.finish();
        (
            fin.telemetry.to_jsonl(),
            fin.trace.render(),
            fin.events_processed,
            fin.now,
        )
    }

    #[test]
    fn output_is_bit_identical_across_thread_counts() {
        let base = run_sharded(4, 1, None);
        for threads in [2, 3, 8] {
            let other = run_sharded(4, threads, None);
            assert_eq!(base.0, other.0, "telemetry must match at {threads} threads");
            assert_eq!(base.1, other.1, "trace must match at {threads} threads");
            assert_eq!(
                base.2, other.2,
                "event count must match at {threads} threads"
            );
            assert_eq!(
                base.3, other.3,
                "final time must match at {threads} threads"
            );
        }
    }

    #[test]
    fn output_is_independent_of_window_width() {
        // Any sound window width only re-batches the drain; it never
        // reorders keys. 200µs is well under the 1ms default latency.
        let auto = run_sharded(4, 8, None);
        let narrow = run_sharded(4, 8, Some(SimDuration::from_micros(200)));
        assert_eq!(auto.0, narrow.0);
        assert_eq!(auto.1, narrow.1);
        assert_eq!(auto.2, narrow.2);
    }

    #[test]
    fn cross_shard_rings_complete_and_actors_are_inspectable() {
        let peers = 12;
        let mut pw = gossip_world(7, peers).into_parallel(ParConfig::new(4, 2));
        // Drive in two slices; inspect between them like a harness would.
        pw.run_until(SimTime::from_millis(5));
        let early: u32 = (0..peers)
            .map(|id| pw.with_actor::<Gossip, _>(id, |g| g.received).unwrap())
            .sum();
        pw.run_until(SimTime::from_millis(500));
        let fin = pw.finish();
        let total: u32 = (0..peers)
            .map(|id| fin.get::<Gossip>(id).unwrap().received)
            .sum();
        // 12 rings of 25 hops each, default network never loses.
        assert_eq!(total, 12 * 25);
        assert!(early < total, "mid-run inspection saw a finished world");
        assert_eq!(fin.name_of(0), "gossip");
    }

    /// Stops the world after receiving a fixed number of probes.
    struct Stopper {
        seen: u32,
        cap: u32,
    }
    impl Actor<Msg> for Stopper {
        fn name(&self) -> String {
            "stopper".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send_self_after(SimDuration::from_millis(1), Msg::Probe);
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, ctx: &mut Context<'_, Msg>) {
            self.seen += 1;
            if self.seen >= self.cap {
                ctx.stop_world();
            } else {
                ctx.send_self_after(SimDuration::from_millis(1), Msg::Probe);
            }
        }
    }

    #[test]
    fn stop_world_takes_effect_at_the_barrier_deterministically() {
        let run = |threads: usize| {
            let mut w: World<Msg> = World::new(3);
            w.add_actor(Box::new(Stopper { seen: 0, cap: 5 }));
            for _ in 0..7 {
                w.add_actor(Box::new(Gossip {
                    peers: 8,
                    received: 0,
                }));
            }
            let mut pw = w.into_parallel(ParConfig::new(4, threads));
            pw.run_until(SimTime::from_secs(10));
            assert!(pw.stopped());
            let fin = pw.finish();
            (fin.telemetry.to_jsonl(), fin.events_processed, fin.now)
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(8));
    }

    /// Records payload order, to pin external-injection FIFO.
    struct Recorder {
        got: Vec<u32>,
    }
    impl Actor<Msg> for Recorder {
        fn name(&self) -> String {
            "recorder".into()
        }
        fn on_message(&mut self, _f: ActorId, m: Msg, _ctx: &mut Context<'_, Msg>) {
            if let Msg::Hop(v) = m {
                self.got.push(v);
            }
        }
    }

    #[test]
    fn same_time_injections_arrive_in_injection_order() {
        let mut w: World<Msg> = World::new(1);
        let target = w.add_actor(Box::new(Recorder { got: Vec::new() }));
        for _ in 0..5 {
            w.add_actor(Box::new(Recorder { got: Vec::new() }));
        }
        for v in 0..8 {
            w.inject(target, Msg::Hop(v));
        }
        let mut pw = w.into_parallel(ParConfig::new(3, 8));
        pw.run_until(SimTime::from_millis(1));
        let fin = pw.finish();
        assert_eq!(
            fin.get::<Recorder>(target).unwrap().got,
            (0..8).collect::<Vec<_>>()
        );
    }

    /// A fault driver: downs a host mid-run through the deferred-op path.
    struct Downer {
        victim: ActorId,
    }
    impl Actor<Msg> for Downer {
        fn name(&self) -> String {
            "downer".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send_self_after(SimDuration::from_millis(10), Msg::Kick);
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, ctx: &mut Context<'_, Msg>) {
            ctx.net.set_host_down(self.victim);
        }
    }

    /// Sends a probe to a fixed peer every 2ms, forever.
    struct Beacon {
        to: ActorId,
        sent: u32,
    }
    impl Actor<Msg> for Beacon {
        fn name(&self) -> String {
            "beacon".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send_self_after(SimDuration::from_millis(2), Msg::Kick);
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, ctx: &mut Context<'_, Msg>) {
            self.sent += 1;
            ctx.send_net(self.to, Msg::Probe);
            ctx.send_self_after(SimDuration::from_millis(2), Msg::Kick);
        }
    }

    /// Counts probes received (distinct type from Beacon so both can be
    /// downcast unambiguously).
    struct Sink {
        got: u32,
    }
    impl Actor<Msg> for Sink {
        fn name(&self) -> String {
            "sink".into()
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, _ctx: &mut Context<'_, Msg>) {
            self.got += 1;
        }
    }

    #[test]
    fn deferred_net_ops_hit_every_replica_and_stay_deterministic() {
        let run = |threads: usize| {
            let mut w: World<Msg> = World::new(5).without_trace();
            let driver = w.add_actor(Box::new(Downer { victim: 2 }));
            let beacon = w.add_actor(Box::new(Beacon { to: 2, sent: 0 }));
            let sink = w.add_actor(Box::new(Sink { got: 0 }));
            assert_eq!((driver, beacon, sink), (0, 1, 2));
            // Three actors, three shards: the driver's host_down must
            // cross two shard boundaries to stop the beacon's deliveries.
            let mut pw = w.into_parallel(ParConfig::new(3, threads));
            pw.run_until(SimTime::from_millis(40));
            let fin = pw.finish();
            let b = fin.get::<Beacon>(beacon).unwrap().sent;
            let s = fin.get::<Sink>(sink).unwrap().got;
            (b, s, fin.net_stats.dropped_total())
        };
        let (sent, got, dropped) = run(1);
        assert!(sent >= 15, "beacon kept ticking: {sent}");
        assert!(
            got < sent,
            "host_down never took effect ({got} of {sent} arrived)"
        );
        assert!(got >= 4, "probes before the fault must arrive: {got}");
        assert_eq!(dropped, u64::from(sent - got));
        assert_eq!((sent, got, dropped), run(2));
        assert_eq!((sent, got, dropped), run(8));
    }

    /// Reliable zero-latency sends must stay inside a shard; crossing a
    /// boundary with one is exactly the bug the barrier assertion exists
    /// to catch.
    struct IllegalSender;
    impl Actor<Msg> for IllegalSender {
        fn name(&self) -> String {
            "illegal".into()
        }
        fn on_message(&mut self, _f: ActorId, _m: Msg, ctx: &mut Context<'_, Msg>) {
            ctx.send(1, Msg::Probe);
        }
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn cross_shard_reliable_send_trips_the_lookahead_assertion() {
        let mut w: World<Msg> = World::new(9);
        let a = w.add_actor(Box::new(IllegalSender));
        w.add_actor(Box::new(Sink { got: 0 }));
        w.inject(a, Msg::Kick);
        let mut pw = w.into_parallel(ParConfig::new(2, 1));
        pw.run_until(SimTime::from_millis(5));
    }
}
