//! The pending-event set.
//!
//! A priority queue of `(SimTime, E)` ordered by time, with a strictly
//! increasing sequence number breaking ties so that events scheduled at the
//! same instant pop in FIFO order. Determinism of the whole simulator rests
//! on this tie-break.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-scheduled) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
