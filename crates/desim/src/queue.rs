//! The pending-event set.
//!
//! A priority queue of `(SimTime, E)` ordered by time, with a strictly
//! increasing sequence number breaking ties so that events scheduled at the
//! same instant pop in FIFO order. Determinism of the whole simulator rests
//! on this tie-break.
//!
//! The backing store is a hand-rolled **4-ary min-heap** rather than
//! `std::collections::BinaryHeap`. The simulator's pop-one/push-a-few
//! cadence spends most of its queue time sifting; a 4-ary layout halves
//! the tree depth (fewer key comparisons resolve to fewer cache lines
//! touched per sift) and keys compare directly as `(at, seq)` with no
//! `Ord`-inversion wrapper.

use crate::time::SimTime;

const ARITY: usize = 4;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((entry.at, entry.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[i].key() >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            // Smallest of up to ARITY children.
            let mut min = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in first_child + 1..last_child {
                if self.heap[c].key() < self.heap[min].key() {
                    min = c;
                }
            }
            if self.heap[min].key() >= self.heap[i].key() {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn matches_reference_model_under_random_interleaving() {
        // Differential test: a sorted-Vec model must agree with the heap
        // on every pop across a deterministic pseudo-random push/pop mix.
        let mut q = EventQueue::new();
        // (at, seq, payload); seq == payload == round, the insertion index.
        let mut model: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..2000u64 {
            let t = SimTime::from_micros(next() % 50);
            q.push(t, round);
            model.push((t, round, round));
            if next() % 3 == 0 {
                let got = q.pop();
                let want = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.0, e.1))
                    .map(|(i, _)| i);
                let want = want.map(|i| model.remove(i));
                assert_eq!(got, want.map(|(at, _, payload)| (at, payload)));
            }
        }
        model.sort_by_key(|e| (e.0, e.1));
        for (at, _, payload) in model {
            assert_eq!(q.pop(), Some((at, payload)));
        }
        assert_eq!(q.pop(), None);
    }
}
