//! The pending-event set.
//!
//! A priority queue of `(SimTime, E)` ordered by time, with a strictly
//! increasing sequence number breaking ties so that events scheduled at the
//! same instant pop in FIFO order. Determinism of the whole simulator rests
//! on this tie-break.
//!
//! The backing store is a hand-rolled **4-ary min-heap** rather than
//! `std::collections::BinaryHeap`. The simulator's pop-one/push-a-few
//! cadence spends most of its queue time sifting; a 4-ary layout halves
//! the tree depth (fewer key comparisons resolve to fewer cache lines
//! touched per sift) and keys compare directly with no `Ord`-inversion
//! wrapper.
//!
//! Two queue flavors share the heap core:
//!
//! * [`EventQueue`] — the classic single-threaded queue, keyed
//!   `(time, push-seq)`: ties pop in *push* order. Its tie-break depends
//!   on global push order, which only exists on one thread.
//! * [`KeyedEventQueue`] — the sharded engine's queue, keyed
//!   `(time, source, per-source seq)`: the caller supplies the key, so
//!   the pop order is a pure function of the key *set*, independent of
//!   the order events were pushed. That push-order independence is what
//!   lets cross-shard deliveries merge at a window barrier in any
//!   arrival order and still drain identically.

use crate::time::SimTime;

const ARITY: usize = 4;

/// The heap core: a 4-ary min-heap over `(K, E)` ordered by `K` alone.
/// Callers must guarantee key uniqueness if they need a total order.
struct Heap<K, E> {
    items: Vec<(K, E)>,
}

impl<K: Ord + Copy, E> Heap<K, E> {
    fn new() -> Self {
        Heap { items: Vec::new() }
    }

    fn push(&mut self, key: K, event: E) {
        self.items.push((key, event));
        self.sift_up(self.items.len() - 1);
    }

    fn pop(&mut self) -> Option<(K, E)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let entry = self.items.pop().expect("non-empty");
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        Some(entry)
    }

    fn peek_key(&self) -> Option<K> {
        self.items.first().map(|e| e.0)
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.items[i].0 >= self.items[parent].0 {
                break;
            }
            self.items.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.items.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            // Smallest of up to ARITY children.
            let mut min = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in first_child + 1..last_child {
                if self.items[c].0 < self.items[min].0 {
                    min = c;
                }
            }
            if self.items[min].0 >= self.items[i].0 {
                break;
            }
            self.items.swap(i, min);
            i = min;
        }
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: Heap<(SimTime, u64), E>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Heap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push((at, seq), event);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|((at, _), e)| (at, e))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek_key().map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The canonical ordering key of one event in the sharded engine:
/// `(time, source, per-source sequence)`.
///
/// `source` is the sender's global actor id (or [`EventKey::EXTERNAL`] for
/// injections from outside the world) and `seq` counts that sender's sends
/// from the start of the run — so the key is unique, per-sender FIFO is
/// preserved at equal times, and the total order does not depend on which
/// shard pushed the event first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Delivery time.
    pub at: SimTime,
    /// Sender's global actor id, or [`EventKey::EXTERNAL`].
    pub src: u64,
    /// The sender's send counter at the moment of sending.
    pub seq: u64,
}

impl EventKey {
    /// The `src` of events injected from outside any actor. Orders after
    /// every real sender at the same instant.
    pub const EXTERNAL: u64 = u64::MAX;
}

/// A deterministic event queue whose tie-break is the caller-supplied
/// [`EventKey`] rather than push order — see the module docs for why the
/// sharded engine needs this.
pub struct KeyedEventQueue<E> {
    heap: Heap<EventKey, E>,
}

impl<E> Default for KeyedEventQueue<E> {
    fn default() -> Self {
        KeyedEventQueue::new()
    }
}

impl<E> KeyedEventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        KeyedEventQueue { heap: Heap::new() }
    }

    /// Schedule `event` under `key`. Keys must be unique across the run
    /// (guaranteed when `seq` is a per-`src` counter).
    pub fn push(&mut self, key: EventKey, event: E) {
        self.heap.push(key, event);
    }

    /// Remove and return the earliest event with its key.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop()
    }

    /// The key of the earliest event without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek_key()
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek_key().map(|k| k.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn matches_reference_model_under_random_interleaving() {
        // Differential test: a sorted-Vec model must agree with the heap
        // on every pop across a deterministic pseudo-random push/pop mix.
        let mut q = EventQueue::new();
        // (at, seq, payload); seq == payload == round, the insertion index.
        let mut model: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..2000u64 {
            let t = SimTime::from_micros(next() % 50);
            q.push(t, round);
            model.push((t, round, round));
            if next() % 3 == 0 {
                let got = q.pop();
                let want = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.0, e.1))
                    .map(|(i, _)| i);
                let want = want.map(|i| model.remove(i));
                assert_eq!(got, want.map(|(at, _, payload)| (at, payload)));
            }
        }
        model.sort_by_key(|e| (e.0, e.1));
        for (at, _, payload) in model {
            assert_eq!(q.pop(), Some((at, payload)));
        }
        assert_eq!(q.pop(), None);
    }

    fn key(at_us: u64, src: u64, seq: u64) -> EventKey {
        EventKey {
            at: SimTime::from_micros(at_us),
            src,
            seq,
        }
    }

    #[test]
    fn keyed_queue_orders_by_time_then_source_then_seq() {
        let mut q = KeyedEventQueue::new();
        q.push(key(5, 1, 0), "t5-s1");
        q.push(key(3, 9, 2), "t3-s9");
        q.push(key(3, 2, 7), "t3-s2");
        q.push(key(3, 2, 4), "t3-s2-earlier");
        let popped: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, vec!["t3-s2-earlier", "t3-s2", "t3-s9", "t5-s1"]);
    }

    #[test]
    fn keyed_queue_order_is_push_order_independent() {
        // The defining property: any permutation of pushes drains the same.
        let keys: Vec<EventKey> = (0..24u64).map(|i| key(i % 4, (i * 7) % 5, i)).collect();
        let drain = |order: &[usize]| -> Vec<EventKey> {
            let mut q = KeyedEventQueue::new();
            for &i in order {
                q.push(keys[i], i);
            }
            std::iter::from_fn(|| q.pop()).map(|(k, _)| k).collect()
        };
        let forward: Vec<usize> = (0..keys.len()).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        // A deterministic shuffle.
        let mut shuffled = forward.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (i * 2_654_435_761) % (i + 1));
        }
        let want = drain(&forward);
        assert_eq!(drain(&reversed), want);
        assert_eq!(drain(&shuffled), want);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(want, sorted);
    }

    #[test]
    fn external_key_orders_after_every_sender() {
        let mut q = KeyedEventQueue::new();
        q.push(key(1, EventKey::EXTERNAL, 0), "injected");
        q.push(key(1, 3, 99), "sent");
        assert_eq!(q.pop().unwrap().1, "sent");
        assert_eq!(q.pop().unwrap().1, "injected");
    }
}
