//! # desim — a deterministic discrete-event simulation engine
//!
//! The substrate the simulated Condor pool runs on: virtual time, a
//! deterministic event queue, message-passing actors, a fault-injectable
//! network model, seeded randomness, a structured trace log, and a typed
//! telemetry collector (see the `obs` crate; actors record events with
//! [`Context::emit`]).
//!
//! Each world is reproducible: the same seed and the same actor set
//! always produce the same history, which is what lets the test suite
//! assert exact error-routing tables and lets every experiment in the
//! paper reproduction be replayed bit-for-bit. Parallelism never changes
//! output, only wall-clock, along two independent axes sharing one
//! process-wide worker pool ([`pool`]):
//!
//! * **Across seeds** — multi-seed studies fan independent worlds across
//!   threads with [`sweep`]; merged output is bit-identical regardless of
//!   thread count.
//! * **Within one world** — [`World::into_parallel`] shards a world's
//!   actors across workers that advance simulated time in conservative
//!   windows ([`par`]); event streams and telemetry are bit-identical to
//!   a single-threaded drain at any thread count.
//!
//! ```
//! use desim::prelude::*;
//!
//! struct Echo;
//! impl Actor<String> for Echo {
//!     fn name(&self) -> String { "echo".into() }
//!     fn on_message(&mut self, from: ActorId, msg: String, ctx: &mut Context<'_, String>) {
//!         ctx.trace(format!("got {msg}"));
//!         if from != ctx.self_id { ctx.send(from, msg); }
//!     }
//! }
//!
//! let mut world: World<String> = World::new(42);
//! let echo = world.add_actor(Box::new(Echo));
//! world.inject(echo, "hello".to_string());
//! world.run(100);
//! assert!(world.trace().has("got hello"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod net;
pub mod par;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod sweep;
pub mod time;
pub mod trace;
pub mod world;

pub use actor::{Actor, ActorId, Context, Envelope};
pub use net::{Fate, NetOp, NetStats, Network};
pub use par::{ParConfig, ParFinished, ParWorld};
pub use queue::{EventKey, EventQueue, KeyedEventQueue};
pub use rng::SimRng;
pub use sweep::{default_width, run_sweep, SeedRun, Sweep};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceLog};
pub use world::World;

/// Convenient glob import.
pub mod prelude {
    pub use crate::actor::{Actor, ActorId, Context, Envelope};
    pub use crate::net::Network;
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::TraceLog;
    pub use crate::world::World;
}
