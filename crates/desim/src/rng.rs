//! Seeded randomness for reproducible experiments.
//!
//! Every stochastic choice in an experiment draws from a [`SimRng`] seeded
//! from the experiment definition, so that runs are bit-for-bit
//! reproducible. Streams can be forked per component so adding a new
//! consumer does not perturb the draws seen by existing ones.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream.
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// A stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Fork an independent stream for a named component. The same
    /// `(parent seed, label)` pair always yields the same child stream.
    pub fn fork(&self, label: &str) -> SimRng {
        // Mix the label into a child seed with FNV-1a; the parent's own
        // stream is not advanced, so forking is order-independent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut seed = self.inner.get_seed();
        for (i, byte) in h.to_le_bytes().iter().enumerate() {
            seed[i] ^= byte;
        }
        SimRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform in `[0, n)`, as a usize index.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean — the classic
    /// inter-arrival model.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork("matchmaker");
        let mut c2 = parent.fork("matchmaker");
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut c3 = parent.fork("schedd");
        let mut c1b = parent.fork("matchmaker");
        c1b.next_u64();
        assert_ne!(c1b.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let _ = a.fork("x");
        let _ = a.fork("y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Rough frequency sanity for p=0.5.
        let hits = (0..10_000).filter(|_| r.chance(0.5)).count();
        assert!((4000..6000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = total / n as f64;
        assert!((9.0..11.0).contains(&mean), "mean={mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(5);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn index_in_range() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }
}
