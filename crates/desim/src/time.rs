//! Virtual simulation time.
//!
//! Time is a monotone counter of microseconds since simulation start.
//! Microsecond resolution is fine enough to order protocol messages and
//! coarse enough that a year of simulated time fits comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant — used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Convert to a [`Duration`] since the epoch (useful for feeding
    /// `errorscope`-style escalation policies that speak `Duration`).
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Convert to a wall-clock [`Duration`] of equal nominal length.
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// Scale by a float factor, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_secs(), 2);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs(5).as_duration(), Duration::from_secs(5));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        // Saturating underflow.
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(1500);
        assert_eq!(t, SimTime::from_micros(1_500_000));
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_secs(1);
        d += SimDuration::from_secs(2);
        assert_eq!(d, SimDuration::from_secs(3));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_micros(10).mul_f64(1.26),
            SimDuration::from_micros(13)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
    }
}
