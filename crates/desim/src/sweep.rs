//! Parallel multi-seed sweeps.
//!
//! Experiments answer statistical questions ("median goodput over 32
//! seeds"), which means running the *same* scenario under many seeds. Each
//! [`crate::World`] is single-threaded and self-contained, so seeds are
//! embarrassingly parallel — this module fans them out across the
//! process-wide [`crate::pool`] (shared with intra-world shard draining,
//! so nested parallelism never multiplies threads) and then merges the
//! results **in seed order**, so the merged registry snapshot and event
//! stream are bit-identical no matter how many worker threads ran the
//! sweep or which thread ran which seed.
//!
//! Three details make that guarantee hold:
//!
//! * Results are collected keyed by seed *index* and reassembled in index
//!   order; thread scheduling affects only wall-clock, never output order.
//! * Span ids are allocated from a thread-local counter
//!   ([`obs::next_span_id`]); before each seed's closure runs, the worker
//!   calls [`obs::reset_span_ids`] with a base derived from the seed's
//!   index ([`span_base`]). A seed's span ids are therefore a pure
//!   function of its own execution — and distinct across seeds in the
//!   merged stream.
//! * The submitting thread claims seeds inline alongside the pool
//!   helpers, so a sweep makes progress even when every pool worker is
//!   busy — it never blocks waiting for the pool.

use crate::world::World;
use obs::{Collector, Registry};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Span-id stride between adjacent seeds: each seed `i` allocates span ids
/// in `[span_base(i), span_base(i+1))`. 2^40 ids per seed is unreachable
/// by any simulated run, so ranges never collide.
pub const SPAN_STRIDE: u64 = 1 << 40;

/// The first span id seed index `i` allocates (never 0, which is
/// [`obs::NO_SPAN`]).
pub fn span_base(seed_index: usize) -> u64 {
    (seed_index as u64) * SPAN_STRIDE + 1
}

/// The default fan-out width: one lane per core the host exposes
/// (floor 1). This is both the width experiments pass to sweeps when the
/// caller does not override it and the basis for the shared pool's size
/// ([`crate::pool::worker_count`]).
pub fn default_width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Shared state for one in-flight sweep: the claim counter, the result
/// slots, and completion/panic plumbing. Lives in an `Arc` because pool
/// helpers are `'static` and may outlive a panicking driver's stack frame.
struct SweepJob<T, F> {
    seeds: Vec<u64>,
    run: F,
    next: AtomicUsize,
    slots: Mutex<Vec<Option<T>>>,
    done: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T, F> SweepJob<T, F>
where
    T: Send + 'static,
    F: Fn(usize, u64) -> T + Send + Sync + 'static,
{
    /// Claim-and-run loop shared by the driver thread and pool helpers.
    /// Each claimed seed runs under its own span base; a panic is captured
    /// into the job (first one wins) and the loop keeps claiming so the
    /// driver is always released.
    fn drain_claims(&self) {
        let n = self.seeds.len();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                obs::reset_span_ids(span_base(i));
                (self.run)(i, self.seeds[i])
            }));
            match result {
                Ok(t) => self.slots.lock().expect("sweep slots")[i] = Some(t),
                Err(p) => {
                    let mut slot = self.panic.lock().expect("sweep panic slot");
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            }
            let mut done = self.done.lock().expect("sweep done");
            *done += 1;
            if *done == n {
                self.all_done.notify_all();
            }
        }
    }

    fn wait_all_done(&self) {
        let n = self.seeds.len();
        let mut done = self.done.lock().expect("sweep done");
        while *done < n {
            done = self.all_done.wait(done).expect("sweep done");
        }
    }
}

/// Run `run(index, seed)` for every seed, fanning across at most
/// `threads` claim lanes (clamped to at least 1), and return the results
/// in seed order.
///
/// Lanes claim seeds from a shared counter, so a slow seed never stalls
/// the others. Before each claim the lane pins its thread-local span
/// counter to [`span_base`]`(index)`, making every result independent of
/// thread placement. The extra lanes run on the process-wide
/// [`crate::pool`]; the calling thread always claims inline, so the sweep
/// completes even if every pool worker is busy. Panics in `run`
/// propagate to the caller.
pub fn run_sweep<T, F>(seeds: &[u64], threads: usize, run: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize, u64) -> T + Send + Sync + 'static,
{
    let n = seeds.len();
    if n == 0 {
        return Vec::new();
    }
    let job = Arc::new(SweepJob {
        seeds: seeds.to_vec(),
        run,
        next: AtomicUsize::new(0),
        slots: Mutex::new((0..n).map(|_| None).collect()),
        done: Mutex::new(0),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let helpers = threads.max(1).min(n).saturating_sub(1);
    for _ in 0..helpers {
        let job = Arc::clone(&job);
        crate::pool::spawn(move || job.drain_claims());
    }
    // The driver claims inline with its own span bracket: a sweep must
    // not disturb the caller's span-id position.
    let saved = obs::peek_span_id();
    job.drain_claims();
    obs::reset_span_ids(saved);
    job.wait_all_done();
    if let Some(p) = job.panic.lock().expect("sweep panic slot").take() {
        resume_unwind(p);
    }
    let slots = std::mem::take(&mut *job.slots.lock().expect("sweep slots"));
    slots
        .into_iter()
        .map(|s| s.expect("every seed produces exactly one result"))
        .collect()
}

/// What one seed of a sweep produced: its registry of metrics and its
/// telemetry stream.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// The seed that was run.
    pub seed: u64,
    /// Metrics accumulated by this seed's run.
    pub registry: Registry,
    /// The seed's typed event stream (owned, detached from the world).
    pub telemetry: Collector,
}

impl SeedRun {
    /// Capture a finished world's outputs under `registry`.
    pub fn from_world<M: 'static>(seed: u64, world: &World<M>, registry: Registry) -> SeedRun {
        SeedRun {
            seed,
            registry,
            telemetry: world.telemetry().clone(),
        }
    }
}

/// A completed sweep: one [`SeedRun`] per seed, in seed order.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Per-seed results, ordered as the input seed list.
    pub runs: Vec<SeedRun>,
}

impl Sweep {
    /// Fan `run` over `seeds` on up to `threads` threads. `run` receives
    /// each seed and returns that seed's [`SeedRun`]; results come back in
    /// seed order regardless of scheduling.
    pub fn run<F>(seeds: &[u64], threads: usize, run: F) -> Sweep
    where
        F: Fn(u64) -> SeedRun + Send + Sync + 'static,
    {
        Sweep {
            runs: run_sweep(seeds, threads, move |_, seed| run(seed)),
        }
    }

    /// All per-seed registries merged in seed order. Deterministic: the
    /// merge folds left over the ordered runs.
    pub fn merged_registry(&self) -> Registry {
        let mut out = Registry::new();
        for r in &self.runs {
            out.merge(&r.registry);
        }
        out
    }

    /// Every seed's event stream as one JSONL document, seed order, each
    /// seed's events in record order.
    pub fn merged_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&r.telemetry.to_jsonl());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, ActorId, Context};
    use crate::time::SimDuration;
    use obs::Event;

    #[derive(Debug, Clone)]
    struct Work;

    struct Churner {
        remaining: u32,
    }
    impl Actor<Work> for Churner {
        fn name(&self) -> String {
            "churner".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Work>) {
            ctx.send_self_after(SimDuration::from_micros(1), Work);
        }
        fn on_message(&mut self, _f: ActorId, _m: Work, ctx: &mut Context<'_, Work>) {
            if self.remaining == 0 {
                ctx.stop_world();
                return;
            }
            self.remaining -= 1;
            let span = obs::next_span_id();
            ctx.emit(Event::SpanHop {
                span,
                layer: "churner".into(),
                action: obs::SpanAction::Raised,
                scope: "local-job".into(),
            });
            let jitter = ctx.rng.range_u64(1, 50);
            ctx.send_self_after(SimDuration::from_micros(jitter), Work);
        }
    }

    fn run_seed(seed: u64) -> SeedRun {
        let mut w: World<Work> = World::new(seed).without_trace();
        w.add_actor(Box::new(Churner { remaining: 40 }));
        w.run(10_000);
        let mut reg = Registry::new();
        reg.counter_add(
            "events",
            &[("seed", &seed.to_string())],
            w.events_processed(),
        );
        SeedRun::from_world(seed, &w, reg)
    }

    #[test]
    fn results_come_back_in_seed_order() {
        let seeds: Vec<u64> = (100..116).collect();
        let sweep = Sweep::run(&seeds, 4, run_seed);
        let got: Vec<u64> = sweep.runs.iter().map(|r| r.seed).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn merged_output_is_identical_across_thread_counts() {
        let seeds: Vec<u64> = (0..12).collect();
        let base = Sweep::run(&seeds, 1, run_seed);
        for threads in [2, 3, 8] {
            let other = Sweep::run(&seeds, threads, run_seed);
            assert_eq!(
                base.merged_jsonl(),
                other.merged_jsonl(),
                "event streams must be bit-identical at {threads} threads"
            );
            assert_eq!(
                base.merged_registry().snapshot_json(),
                other.merged_registry().snapshot_json(),
                "metric snapshots must be bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn span_ids_are_disjoint_across_seeds() {
        let seeds: Vec<u64> = (0..4).collect();
        let sweep = Sweep::run(&seeds, 2, run_seed);
        for (i, run) in sweep.runs.iter().enumerate() {
            for r in run.telemetry.iter() {
                if let Some(span) = r.event.span() {
                    let base = span_base(i);
                    assert!(
                        span >= base && span < base + SPAN_STRIDE,
                        "seed index {i} produced span {span} outside its range"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_oversubscribed_sweeps_work() {
        assert!(run_sweep::<u64, _>(&[], 8, |_, s| s).is_empty());
        // More threads than seeds: clamped, still correct.
        let out = run_sweep(&[7, 9], 64, |_, s| s * 2);
        assert_eq!(out, vec![14, 18]);
    }
}
