//! The persistent worker pool.
//!
//! One process-wide pool of worker threads serves *both* axes of
//! parallelism in the simulator: per-seed fan-out ([`crate::sweep`]) and
//! intra-world shard draining ([`crate::par`]). Sharing one pool means a
//! sweep of parallel worlds never multiplies thread counts — a seed task
//! running on a pool worker can itself submit shard-drain tasks right
//! back to the same pool.
//!
//! Two disciplines make that nesting safe and deterministic:
//!
//! * **Submitters never block on the pool.** Every parallel construct in
//!   this crate is a *claim loop*: work items are claimed from a shared
//!   counter, helpers are submitted as extra claimers, and the submitting
//!   thread runs the same loop inline. If the pool is saturated (or has a
//!   single worker), the submitter simply drains every item itself —
//!   slower, never stuck, bit-identical output.
//! * **Span-counter bracketing.** Span ids come from a thread-local
//!   counter ([`obs::next_span_id`]); tasks pin their own bases with
//!   [`obs::reset_span_ids`]. The worker loop saves the counter around
//!   every task, so one task's position never leaks into the next — a
//!   worker's history has no effect on any task's output.
//!
//! Tasks must be `'static`: the pool outlives every submitter, so shared
//! state travels in `Arc`s, never borrows.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

static POOL: OnceLock<&'static PoolState> = OnceLock::new();

fn pool() -> &'static PoolState {
    POOL.get_or_init(|| {
        let state: &'static PoolState = Box::leak(Box::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..worker_count() {
            std::thread::Builder::new()
                .name(format!("desim-pool-{i}"))
                .spawn(move || worker_loop(state))
                .expect("spawn pool worker");
        }
        state
    })
}

fn worker_loop(state: &'static PoolState) {
    loop {
        let task = {
            let mut q = state.queue.lock().expect("pool queue");
            loop {
                match q.pop_front() {
                    Some(t) => break t,
                    None => q = state.available.wait(q).expect("pool queue"),
                }
            }
        };
        let saved = obs::peek_span_id();
        // A panicking task must not kill the worker: claim-loop tasks
        // catch and report their own panics, and anything that still
        // escapes is the submitter's to surface, not the pool's.
        let _ = catch_unwind(AssertUnwindSafe(task));
        obs::reset_span_ids(saved);
    }
}

/// Number of worker threads the pool runs: one per available core, less
/// one for the submitting thread (which always works inline), floor 1.
pub fn worker_count() -> usize {
    crate::sweep::default_width().saturating_sub(1).max(1)
}

/// Submit a task. Returns immediately; the task runs on some pool worker
/// eventually. There is no completion handle — claim-loop callers track
/// completion through their own shared counters.
pub fn spawn(task: impl FnOnce() + Send + 'static) {
    let p = pool();
    p.queue
        .lock()
        .expect("pool queue")
        .push_back(Box::new(task));
    p.available.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_and_complete() {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = hits.clone();
            spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let start = std::time::Instant::now();
        while hits.load(Ordering::SeqCst) < 64 {
            assert!(start.elapsed().as_secs() < 30, "pool tasks never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        spawn(|| panic!("deliberate"));
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let hits = hits.clone();
            spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let start = std::time::Instant::now();
        while hits.load(Ordering::SeqCst) < 1 {
            assert!(start.elapsed().as_secs() < 30, "worker died after a panic");
            std::thread::yield_now();
        }
    }
}
