//! A structured trace of simulation activity.
//!
//! Components append timestamped entries; the figure harnesses replay them
//! to print the protocol sequences of Figures 1 and 2, and tests assert on
//! them.
//!
//! The log is backed by the same bounded [`obs::RingBuffer`] as the typed
//! event collector, so a long simulation holds the most recent
//! [`TraceLog::DEFAULT_CAPACITY`] entries rather than growing without
//! bound. [`TraceLog::evicted`] tells a consumer whether the window is
//! complete.

use crate::time::SimTime;
use obs::RingBuffer;
use std::fmt;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which component reported it.
    pub actor: String,
    /// Free-form description, conventionally `"verb detail"`.
    pub text: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12} {}",
            self.at.as_secs_f64(),
            self.actor,
            self.text
        )
    }
}

/// A bounded log of trace entries (oldest are evicted past capacity).
#[derive(Debug, Clone)]
pub struct TraceLog {
    entries: RingBuffer<TraceEntry>,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

impl TraceLog {
    /// Default capacity — far above what any current test or figure
    /// harness records, while bounding an unattended run's memory.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A new, enabled log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An enabled log retaining at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            entries: RingBuffer::new(capacity),
            enabled: true,
        }
    }

    /// A log that discards everything — for benchmarks where tracing would
    /// dominate.
    pub fn disabled() -> Self {
        TraceLog {
            entries: RingBuffer::new(1),
            enabled: false,
        }
    }

    /// Is the log recording? Callers on hot paths check this before
    /// formatting text that would only be discarded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an entry (no-op when disabled; evicts the oldest entry when
    /// at capacity).
    pub fn record(&mut self, at: SimTime, actor: impl Into<String>, text: impl Into<String>) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                actor: actor.into(),
                text: text.into(),
            });
        }
    }

    /// Retained entries, in order of recording.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// Entries whose actor matches `actor` exactly.
    pub fn by_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.actor == actor)
    }

    /// Entries whose text contains `needle`.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.text.contains(needle))
    }

    /// True if any entry's text contains `needle`.
    pub fn has(&self, needle: &str) -> bool {
        self.containing(needle).next().is_some()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.entries.evicted()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Render the whole retained log, one entry per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in self.entries.iter() {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceLog::new();
        t.record(SimTime::from_secs(1), "schedd", "submit job 1");
        t.record(
            SimTime::from_secs(2),
            "matchmaker",
            "match job 1 to machine 3",
        );
        assert_eq!(t.len(), 2);
        let entries: Vec<&TraceEntry> = t.entries().collect();
        assert_eq!(entries[0].actor, "schedd");
        assert_eq!(entries[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn disabled_log_discards() {
        let mut t = TraceLog::disabled();
        t.record(SimTime::ZERO, "x", "y");
        assert!(t.is_empty());
    }

    #[test]
    fn filters() {
        let mut t = TraceLog::new();
        t.record(SimTime::ZERO, "schedd", "claim machine 1");
        t.record(SimTime::ZERO, "startd", "accept claim");
        t.record(SimTime::ZERO, "schedd", "spawn shadow");
        assert_eq!(t.by_actor("schedd").count(), 2);
        assert_eq!(t.containing("claim").count(), 2);
        assert!(t.has("shadow"));
        assert!(!t.has("starter"));
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut t = TraceLog::new();
        t.record(SimTime::from_millis(1500), "a", "hello");
        let r = t.render();
        assert!(r.contains("1.500000s"));
        assert!(r.contains("hello"));
        assert_eq!(r.lines().count(), 1);
    }

    #[test]
    fn capacity_caps_growth_oldest_first() {
        let mut t = TraceLog::with_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), "a", format!("entry {i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 3);
        assert_eq!(t.capacity(), 2);
        let texts: Vec<&str> = t.entries().map(|e| e.text.as_str()).collect();
        assert_eq!(texts, vec!["entry 3", "entry 4"]);
        assert!(!t.has("entry 0"));
    }
}
