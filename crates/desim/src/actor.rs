//! The actor abstraction: simulated daemons exchanging timed messages.
//!
//! Each daemon in the simulated grid (schedd, startd, matchmaker, shadow,
//! starter…) is an [`Actor`]. Actors never call each other directly — all
//! interaction is messages scheduled through a [`Context`], which is how the
//! simulator guarantees deterministic, time-ordered execution.

use crate::net::Network;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use obs::Collector;
use std::any::Any;

/// Identifies an actor within a [`crate::world::World`].
pub type ActorId = usize;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: ActorId,
    /// Recipient.
    pub to: ActorId,
    /// Payload.
    pub msg: M,
}

/// A simulated process.
///
/// `M` is the message alphabet shared by all actors in one world.
pub trait Actor<M>: Any {
    /// Stable display name used in traces.
    fn name(&self) -> String;

    /// Called once when the world starts, before any messages flow.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Deliver one message.
    fn on_message(&mut self, from: ActorId, msg: M, ctx: &mut Context<'_, M>);
}

impl<M: 'static> dyn Actor<M> {
    /// Downcast to a concrete actor type (for post-run inspection).
    pub fn downcast_ref<T: Actor<M>>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn downcast_mut<T: Actor<M>>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}

impl<M: 'static> dyn Actor<M> + Send {
    /// Downcast to a concrete actor type (for post-run inspection).
    pub fn downcast_ref<T: Actor<M>>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn downcast_mut<T: Actor<M>>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}

/// The capabilities an actor has while handling a message: learn the time,
/// send messages (reliably or over the simulated network), draw randomness,
/// record trace entries, and stop the world.
///
/// A `Context` is assembled from disjoint borrows of the [`crate::World`]
/// for exactly one handler invocation: the actor's name is a borrowed
/// `&str` and the outbox is the world's reusable buffer, so building one
/// allocates nothing.
pub struct Context<'a, M> {
    /// Current virtual time.
    pub now: SimTime,
    /// The id of the actor being invoked.
    pub self_id: ActorId,
    pub(crate) outbox: &'a mut Vec<(SimTime, Envelope<M>)>,
    /// The world's random stream.
    pub rng: &'a mut SimRng,
    /// The simulated network fabric (mutable: actors may inject faults).
    pub net: &'a mut Network,
    pub(crate) tracelog: &'a mut TraceLog,
    pub(crate) collector: &'a mut Collector,
    pub(crate) actor_name: &'a str,
    pub(crate) stop_requested: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Send `msg` to `to` reliably, arriving after `delay`. Use for
    /// intra-host communication (fork/exec, pipes, local files) that the
    /// network cannot lose.
    pub fn send_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        let at = self.now + SimDuration::from_micros(delay.as_micros().max(1));
        self.outbox.push((
            at,
            Envelope {
                from: self.self_id,
                to,
                msg,
            },
        ));
    }

    /// Send reliably with minimal (1µs) delay.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Schedule a message to oneself — the standard way to implement
    /// timeouts and periodic work.
    pub fn send_self_after(&mut self, delay: SimDuration, msg: M) {
        let id = self.self_id;
        self.send_after(delay, id, msg);
    }

    /// Record a trace entry attributed to this actor.
    ///
    /// When the argument is built with `format!`, the formatting happens
    /// whether or not tracing is on; prefer [`Context::trace_with`] on hot
    /// paths so disabled-trace worlds skip it entirely.
    pub fn trace(&mut self, text: impl Into<String>) {
        if self.tracelog.is_enabled() {
            self.tracelog.record(self.now, self.actor_name, text);
        }
    }

    /// Record a trace entry whose text is produced lazily. When tracing is
    /// disabled the closure never runs, so a `trace_with(|| format!(…))`
    /// on a hot path costs one branch and nothing else.
    pub fn trace_with(&mut self, text: impl FnOnce() -> String) {
        if self.tracelog.is_enabled() {
            self.tracelog.record(self.now, self.actor_name, text());
        }
    }

    /// Is the trace log recording? Lets callers skip building expensive
    /// diagnostics that only exist to be traced.
    pub fn tracing_enabled(&self) -> bool {
        self.tracelog.is_enabled()
    }

    /// Record a typed telemetry event attributed to this actor, timestamped
    /// with the current virtual time. Unlike [`Context::trace`], emission
    /// survives `without_trace()` worlds — the typed stream is the primary
    /// record.
    pub fn emit(&mut self, event: obs::Event) {
        self.collector
            .record(self.now.as_micros(), self.actor_name, event);
    }

    /// Ask the world to stop after this handler returns.
    pub fn stop_world(&mut self) {
        *self.stop_requested = true;
    }
}

impl<'a, M: Clone> Context<'a, M> {
    /// Send over the simulated network. The message may be silently lost
    /// (partition, down host, random drop) or *duplicated* (delivered twice,
    /// each copy with its own latency); returns whether at least one copy was
    /// dispatched, but a *correct* distributed actor should rely on its own
    /// timeout rather than this return value — real senders don't get one.
    pub fn send_net(&mut self, to: ActorId, msg: M) -> bool {
        match self.net.fate(self.rng, self.self_id, to) {
            crate::net::Fate::Deliver(lat) => {
                self.send_after(lat, to, msg);
                true
            }
            crate::net::Fate::Duplicate(lat, lat2) => {
                // Clone only for the first copy; the final copy moves.
                self.send_after(lat, to, msg.clone());
                self.send_after(lat2, to, msg);
                true
            }
            crate::net::Fate::Lost => false,
        }
    }

    /// Broadcast `msg` over the simulated network to every recipient.
    /// Clones for all but the last recipient and moves the message into
    /// the last send, so an N-way broadcast costs N-1 clones instead of N.
    /// Returns how many recipients had at least one copy dispatched.
    pub fn send_net_all(&mut self, recipients: &[ActorId], msg: M) -> usize {
        let mut delivered = 0;
        if let Some((&last, rest)) = recipients.split_last() {
            for &to in rest {
                if self.send_net(to, msg.clone()) {
                    delivered += 1;
                }
            }
            if self.send_net(last, msg) {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: ActorId,
        got: Vec<u32>,
    }

    impl Actor<Msg> for Pinger {
        fn name(&self) -> String {
            "pinger".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping(1));
        }
        fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Pong(n) = msg {
                self.got.push(n);
                if n < 3 {
                    ctx.send(self.peer, Msg::Ping(n + 1));
                } else {
                    ctx.stop_world();
                }
            }
        }
    }

    struct Ponger;

    impl Actor<Msg> for Ponger {
        fn name(&self) -> String {
            "ponger".into()
        }
        fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(n) = msg {
                ctx.trace(format!("ping {n}"));
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w: World<Msg> = World::new(42);
        let ponger = w.add_actor(Box::new(Ponger));
        let pinger = w.add_actor(Box::new(Pinger {
            peer: ponger,
            got: vec![],
        }));
        w.run(10_000);
        let p: &Pinger = w.get(pinger).unwrap();
        assert_eq!(p.got, vec![1, 2, 3]);
        assert_eq!(w.trace().containing("ping").count(), 3);
    }

    #[test]
    fn self_message_implements_timeout() {
        struct Timer {
            fired_at: Option<SimTime>,
        }
        impl Actor<()> for Timer {
            fn name(&self) -> String {
                "timer".into()
            }
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send_self_after(SimDuration::from_secs(30), ());
            }
            fn on_message(&mut self, _f: ActorId, _m: (), ctx: &mut Context<'_, ()>) {
                self.fired_at = Some(ctx.now);
            }
        }
        let mut w: World<()> = World::new(0);
        let t = w.add_actor(Box::new(Timer { fired_at: None }));
        w.run(100);
        assert_eq!(
            w.get::<Timer>(t).unwrap().fired_at,
            Some(SimTime::from_secs(30))
        );
    }
}
