//! A simulated network.
//!
//! Models the connectivity between simulated processes: per-link latency,
//! message loss, partitions, and down hosts. Senders consult the network to
//! learn the delivery latency of a message — or that it will never arrive,
//! in which case the *sender's own timeout machinery* is what eventually
//! notices, exactly as in a real distributed system. The paper's escaping
//! error "communicated by breaking the connection" appears here as a link
//! that stops delivering.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::{HashMap, HashSet};

/// Identifies a simulated host (by the actor id of its daemon).
pub type HostId = usize;

fn link_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The simulated network fabric.
#[derive(Debug, Clone)]
pub struct Network {
    default_latency: SimDuration,
    latency_jitter: f64,
    link_latency: HashMap<(HostId, HostId), SimDuration>,
    partitioned: HashSet<(HostId, HostId)>,
    down: HashSet<HostId>,
    drop_prob: f64,
}

impl Default for Network {
    fn default() -> Self {
        Network::new(SimDuration::from_millis(1))
    }
}

impl Network {
    /// A fully connected network with the given base latency and no jitter.
    pub fn new(default_latency: SimDuration) -> Self {
        Network {
            default_latency,
            latency_jitter: 0.0,
            link_latency: HashMap::new(),
            partitioned: HashSet::new(),
            down: HashSet::new(),
            drop_prob: 0.0,
        }
    }

    /// Set a multiplicative jitter factor: each delivery's latency is
    /// scaled by a uniform draw in `[1, 1+jitter]`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(jitter >= 0.0);
        self.latency_jitter = jitter;
        self
    }

    /// Set an independent per-message drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// Override the latency of one (undirected) link.
    pub fn set_link_latency(&mut self, a: HostId, b: HostId, latency: SimDuration) {
        self.link_latency.insert(link_key(a, b), latency);
    }

    /// Sever one link in both directions.
    pub fn partition(&mut self, a: HostId, b: HostId) {
        self.partitioned.insert(link_key(a, b));
    }

    /// Restore a severed link.
    pub fn heal(&mut self, a: HostId, b: HostId) {
        self.partitioned.remove(&link_key(a, b));
    }

    /// Is the link between `a` and `b` currently severed?
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitioned.contains(&link_key(a, b))
    }

    /// Take a host offline: nothing is delivered to or from it.
    pub fn set_host_down(&mut self, h: HostId) {
        self.down.insert(h);
    }

    /// Bring a host back.
    pub fn set_host_up(&mut self, h: HostId) {
        self.down.remove(&h);
    }

    /// Is the host offline?
    pub fn is_down(&self, h: HostId) -> bool {
        self.down.contains(&h)
    }

    /// Decide the fate of one message from `from` to `to`: `Some(latency)`
    /// if it will be delivered that much later, `None` if it is lost
    /// (partition, down host, or random drop). Loss is *silent* — the
    /// sender learns only via its own timeout, as in life.
    pub fn transit(&self, rng: &mut SimRng, from: HostId, to: HostId) -> Option<SimDuration> {
        if from == to {
            // Loopback never fails and is effectively instant; one
            // microsecond preserves causal ordering.
            return Some(SimDuration::from_micros(1));
        }
        if self.is_down(from) || self.is_down(to) || self.is_partitioned(from, to) {
            return None;
        }
        if self.drop_prob > 0.0 && rng.chance(self.drop_prob) {
            return None;
        }
        let base = self
            .link_latency
            .get(&link_key(from, to))
            .copied()
            .unwrap_or(self.default_latency);
        let lat = if self.latency_jitter > 0.0 {
            base.mul_f64(1.0 + rng.f64() * self.latency_jitter)
        } else {
            base
        };
        // Clamp to at least 1µs so delivery is strictly after sending.
        Some(SimDuration::from_micros(lat.as_micros().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn default_latency_applies() {
        let net = Network::new(SimDuration::from_millis(5));
        let mut r = rng();
        assert_eq!(net.transit(&mut r, 1, 2), Some(SimDuration::from_millis(5)));
    }

    #[test]
    fn loopback_is_instant_and_reliable() {
        let mut net = Network::default().with_drop_probability(1.0);
        net.set_host_down(3);
        let mut r = rng();
        // Even a "down" host can talk to itself over loopback: the paper's
        // chirp connection is "from one process to another on the loopback
        // network interface" and is as reliable as the local machine.
        assert_eq!(net.transit(&mut r, 3, 3), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn link_override_beats_default() {
        let mut net = Network::new(SimDuration::from_millis(1));
        net.set_link_latency(1, 2, SimDuration::from_millis(50));
        let mut r = rng();
        assert_eq!(
            net.transit(&mut r, 2, 1),
            Some(SimDuration::from_millis(50)),
            "links are undirected"
        );
        assert_eq!(net.transit(&mut r, 1, 3), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = Network::default();
        net.partition(1, 2);
        let mut r = rng();
        assert!(net.is_partitioned(2, 1));
        assert_eq!(net.transit(&mut r, 1, 2), None);
        assert_eq!(net.transit(&mut r, 2, 1), None);
        net.heal(2, 1);
        assert!(net.transit(&mut r, 1, 2).is_some());
    }

    #[test]
    fn down_host_receives_and_sends_nothing() {
        let mut net = Network::default();
        net.set_host_down(7);
        let mut r = rng();
        assert!(net.is_down(7));
        assert_eq!(net.transit(&mut r, 7, 1), None);
        assert_eq!(net.transit(&mut r, 1, 7), None);
        net.set_host_up(7);
        assert!(net.transit(&mut r, 1, 7).is_some());
    }

    #[test]
    fn drop_probability_loses_messages() {
        let net = Network::default().with_drop_probability(0.5);
        let mut r = rng();
        let delivered = (0..10_000)
            .filter(|_| net.transit(&mut r, 1, 2).is_some())
            .count();
        assert!((4000..6000).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn jitter_scales_latency_within_bounds() {
        let net = Network::new(SimDuration::from_millis(10)).with_jitter(0.5);
        let mut r = rng();
        for _ in 0..1000 {
            let l = net.transit(&mut r, 1, 2).unwrap();
            assert!(l >= SimDuration::from_millis(10), "lat {l}");
            assert!(l <= SimDuration::from_millis(15), "lat {l}");
        }
    }

    #[test]
    fn latency_is_never_zero() {
        let net = Network::new(SimDuration::ZERO);
        let mut r = rng();
        assert_eq!(net.transit(&mut r, 1, 2), Some(SimDuration::from_micros(1)));
    }
}
