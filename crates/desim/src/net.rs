//! A simulated network.
//!
//! Models the connectivity between simulated processes: per-link latency,
//! message loss, duplication, partitions, and down hosts. Senders consult the
//! network to learn the delivery latency of a message — or that it will never
//! arrive, in which case the *sender's own timeout machinery* is what
//! eventually notices, exactly as in a real distributed system. The paper's
//! escaping error "communicated by breaking the connection" appears here as a
//! link that stops delivering.
//!
//! The network also keeps per-link delivery statistics (messages dropped and
//! duplicated), so silent loss is observable to the experimenter even though
//! it stays invisible to the simulated actors.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifies a simulated host (by the actor id of its daemon).
pub type HostId = usize;

fn link_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The fate of one message offered to the network: delivered after a
/// latency, delivered *twice* (original plus a duplicate with its own
/// latency), or silently lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Lost: partition, down host, or (per-link) random drop. The sender
    /// learns only via its own timeout.
    Lost,
    /// Delivered once, this much later.
    Deliver(SimDuration),
    /// Delivered twice: the original and a duplicate frame, each with its
    /// own latency. Duplication models retransmission at a lower layer —
    /// the receiver must be idempotent or fence the copy.
    Duplicate(SimDuration, SimDuration),
}

/// Per-link delivery statistics: what the network ate or multiplied.
/// Keys are undirected `(low, high)` host pairs; `BTreeMap` keeps the
/// projection order deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages silently lost, per link (partition, down host, or drop).
    pub dropped: BTreeMap<(HostId, HostId), u64>,
    /// Messages delivered twice, per link.
    pub duplicated: BTreeMap<(HostId, HostId), u64>,
}

impl NetStats {
    /// Total messages lost across all links.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Total messages duplicated across all links.
    pub fn duplicated_total(&self) -> u64 {
        self.duplicated.values().sum()
    }

    /// Fold another stats table into this one, link by link. The sharded
    /// engine gives each shard its own network replica and sums the
    /// replicas' tables at the end of a run; `BTreeMap` keys keep the
    /// result independent of merge order.
    pub fn merge(&mut self, other: &NetStats) {
        for (k, v) in &other.dropped {
            *self.dropped.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.duplicated {
            *self.duplicated.entry(*k).or_insert(0) += v;
        }
    }
}

/// One topology/configuration mutation, reified so the sharded engine can
/// defer it: with op recording on (the sharded engine's mode), an actor's
/// `ctx.net` mutation is *recorded instead of applied*, then applied to
/// every shard's replica — including the originator's — at the next
/// window barrier. Deferring keeps all replicas identical within a
/// window, which is what makes the window width a sound lookahead bound:
/// a latency *decrease* can only take effect at a barrier, where the next
/// window's width is recomputed from the new minimum.
#[derive(Debug, Clone, PartialEq)]
pub enum NetOp {
    /// [`Network::set_link_latency`].
    SetLinkLatency(HostId, HostId, SimDuration),
    /// [`Network::clear_link_latency`].
    ClearLinkLatency(HostId, HostId),
    /// [`Network::set_link_loss`].
    SetLinkLoss(HostId, HostId, f64),
    /// [`Network::clear_link_loss`].
    ClearLinkLoss(HostId, HostId),
    /// [`Network::set_link_duplication`].
    SetLinkDuplication(HostId, HostId, f64),
    /// [`Network::clear_link_duplication`].
    ClearLinkDuplication(HostId, HostId),
    /// [`Network::partition`].
    Partition(HostId, HostId),
    /// [`Network::heal`].
    Heal(HostId, HostId),
    /// [`Network::set_host_down`].
    HostDown(HostId),
    /// [`Network::set_host_up`].
    HostUp(HostId),
}

/// The simulated network fabric.
#[derive(Debug, Clone)]
pub struct Network {
    default_latency: SimDuration,
    latency_jitter: f64,
    link_latency: HashMap<(HostId, HostId), SimDuration>,
    partitioned: HashSet<(HostId, HostId)>,
    down: HashSet<HostId>,
    drop_prob: f64,
    link_loss: HashMap<(HostId, HostId), f64>,
    dup_prob: f64,
    link_dup: HashMap<(HostId, HostId), f64>,
    stats: NetStats,
    /// When true, every mutation is also recorded in `pending` for
    /// replication to sibling replicas (the sharded engine's mode).
    record_ops: bool,
    pending: Vec<NetOp>,
}

impl Default for Network {
    fn default() -> Self {
        Network::new(SimDuration::from_millis(1))
    }
}

impl Network {
    /// A fully connected network with the given base latency and no jitter.
    pub fn new(default_latency: SimDuration) -> Self {
        Network {
            default_latency,
            latency_jitter: 0.0,
            link_latency: HashMap::new(),
            partitioned: HashSet::new(),
            down: HashSet::new(),
            drop_prob: 0.0,
            link_loss: HashMap::new(),
            dup_prob: 0.0,
            link_dup: HashMap::new(),
            stats: NetStats::default(),
            record_ops: false,
            pending: Vec::new(),
        }
    }

    /// Set a multiplicative jitter factor: each delivery's latency is
    /// scaled by a uniform draw in `[1, 1+jitter]`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(jitter >= 0.0);
        self.latency_jitter = jitter;
        self
    }

    /// Set an independent per-message drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// Set an independent per-message duplication probability.
    pub fn with_duplication_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.dup_prob = p;
        self
    }

    /// Change the default (no-override) link latency. A *build-time*
    /// knob — raise it before converting a world with
    /// [`crate::World::into_parallel`] to widen the conservative window;
    /// it is deliberately not a [`NetOp`], so actors cannot change it
    /// mid-run.
    pub fn set_default_latency(&mut self, latency: SimDuration) {
        self.default_latency = latency;
    }

    /// True when the mutation was recorded for barrier application
    /// instead of applied (deferred mode).
    #[inline]
    fn deferred(&mut self, op: NetOp) -> bool {
        if self.record_ops {
            self.pending.push(op);
        }
        self.record_ops
    }

    /// Override the latency of one (undirected) link.
    pub fn set_link_latency(&mut self, a: HostId, b: HostId, latency: SimDuration) {
        if self.deferred(NetOp::SetLinkLatency(a, b, latency)) {
            return;
        }
        self.link_latency.insert(link_key(a, b), latency);
    }

    /// Remove a per-link latency override, reverting to the default.
    pub fn clear_link_latency(&mut self, a: HostId, b: HostId) {
        if self.deferred(NetOp::ClearLinkLatency(a, b)) {
            return;
        }
        self.link_latency.remove(&link_key(a, b));
    }

    /// Set a loss probability for one (undirected) link, overriding the
    /// network-wide drop probability on that link.
    pub fn set_link_loss(&mut self, a: HostId, b: HostId, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if self.deferred(NetOp::SetLinkLoss(a, b, p)) {
            return;
        }
        self.link_loss.insert(link_key(a, b), p);
    }

    /// Remove a per-link loss override.
    pub fn clear_link_loss(&mut self, a: HostId, b: HostId) {
        if self.deferred(NetOp::ClearLinkLoss(a, b)) {
            return;
        }
        self.link_loss.remove(&link_key(a, b));
    }

    /// Set a duplication probability for one (undirected) link, overriding
    /// the network-wide duplication probability on that link.
    pub fn set_link_duplication(&mut self, a: HostId, b: HostId, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if self.deferred(NetOp::SetLinkDuplication(a, b, p)) {
            return;
        }
        self.link_dup.insert(link_key(a, b), p);
    }

    /// Remove a per-link duplication override.
    pub fn clear_link_duplication(&mut self, a: HostId, b: HostId) {
        if self.deferred(NetOp::ClearLinkDuplication(a, b)) {
            return;
        }
        self.link_dup.remove(&link_key(a, b));
    }

    /// Sever one link in both directions.
    pub fn partition(&mut self, a: HostId, b: HostId) {
        if self.deferred(NetOp::Partition(a, b)) {
            return;
        }
        self.partitioned.insert(link_key(a, b));
    }

    /// Restore a severed link.
    pub fn heal(&mut self, a: HostId, b: HostId) {
        if self.deferred(NetOp::Heal(a, b)) {
            return;
        }
        self.partitioned.remove(&link_key(a, b));
    }

    /// Is the link between `a` and `b` currently severed?
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitioned.contains(&link_key(a, b))
    }

    /// Take a host offline: nothing is delivered to or from it.
    pub fn set_host_down(&mut self, h: HostId) {
        if self.deferred(NetOp::HostDown(h)) {
            return;
        }
        self.down.insert(h);
    }

    /// Bring a host back.
    pub fn set_host_up(&mut self, h: HostId) {
        if self.deferred(NetOp::HostUp(h)) {
            return;
        }
        self.down.remove(&h);
    }

    /// Turn deferred-op recording on or off (see [`NetOp`]). While on,
    /// mutators record instead of applying. Recording starts empty;
    /// turning it off discards anything pending.
    pub fn set_op_recording(&mut self, on: bool) {
        self.record_ops = on;
        if !on {
            self.pending.clear();
        }
    }

    /// Drain the mutations recorded since the last take.
    pub fn take_pending_ops(&mut self) -> Vec<NetOp> {
        std::mem::take(&mut self.pending)
    }

    /// Apply one recorded mutation to this replica *without* re-recording
    /// it (replication path; ops are idempotent).
    pub fn apply_op(&mut self, op: &NetOp) {
        match *op {
            NetOp::SetLinkLatency(a, b, lat) => {
                self.link_latency.insert(link_key(a, b), lat);
            }
            NetOp::ClearLinkLatency(a, b) => {
                self.link_latency.remove(&link_key(a, b));
            }
            NetOp::SetLinkLoss(a, b, p) => {
                self.link_loss.insert(link_key(a, b), p);
            }
            NetOp::ClearLinkLoss(a, b) => {
                self.link_loss.remove(&link_key(a, b));
            }
            NetOp::SetLinkDuplication(a, b, p) => {
                self.link_dup.insert(link_key(a, b), p);
            }
            NetOp::ClearLinkDuplication(a, b) => {
                self.link_dup.remove(&link_key(a, b));
            }
            NetOp::Partition(a, b) => {
                self.partitioned.insert(link_key(a, b));
            }
            NetOp::Heal(a, b) => {
                self.partitioned.remove(&link_key(a, b));
            }
            NetOp::HostDown(h) => {
                self.down.insert(h);
            }
            NetOp::HostUp(h) => {
                self.down.remove(&h);
            }
        }
    }

    /// The smallest latency any non-loopback message can currently have:
    /// the minimum of the default and every per-link override, clamped to
    /// the 1µs floor. Jitter only scales latency *up*, so this is a safe
    /// lookahead bound — a conservative window no wider than this value
    /// guarantees every cross-shard delivery lands in a later window.
    pub fn min_latency(&self) -> SimDuration {
        let mut min = self.default_latency;
        for lat in self.link_latency.values() {
            if *lat < min {
                min = *lat;
            }
        }
        SimDuration::from_micros(min.as_micros().max(1))
    }

    /// Fold another replica's delivery statistics into this one.
    pub fn merge_stats(&mut self, other: &NetStats) {
        self.stats.merge(other);
    }

    /// Is the host offline?
    pub fn is_down(&self, h: HostId) -> bool {
        self.down.contains(&h)
    }

    /// Per-link delivery statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn latency(&self, rng: &mut SimRng, from: HostId, to: HostId) -> SimDuration {
        let base = self
            .link_latency
            .get(&link_key(from, to))
            .copied()
            .unwrap_or(self.default_latency);
        let lat = if self.latency_jitter > 0.0 {
            base.mul_f64(1.0 + rng.f64() * self.latency_jitter)
        } else {
            base
        };
        // Clamp to at least 1µs so delivery is strictly after sending.
        SimDuration::from_micros(lat.as_micros().max(1))
    }

    /// Decide the full fate of one message from `from` to `to`: lost,
    /// delivered once, or delivered twice. Loss is *silent* to the sending
    /// actor, but the network records it in [`Network::stats`]. This is the
    /// primitive [`crate::actor::Context::send_net`] consults.
    pub fn fate(&mut self, rng: &mut SimRng, from: HostId, to: HostId) -> Fate {
        if from == to {
            // Loopback never fails and is effectively instant; one
            // microsecond preserves causal ordering.
            return Fate::Deliver(SimDuration::from_micros(1));
        }
        let key = link_key(from, to);
        if self.is_down(from) || self.is_down(to) || self.is_partitioned(from, to) {
            *self.stats.dropped.entry(key).or_insert(0) += 1;
            return Fate::Lost;
        }
        let loss = self.link_loss.get(&key).copied().unwrap_or(self.drop_prob);
        if loss > 0.0 && rng.chance(loss) {
            *self.stats.dropped.entry(key).or_insert(0) += 1;
            return Fate::Lost;
        }
        let lat = self.latency(rng, from, to);
        let dup = self.link_dup.get(&key).copied().unwrap_or(self.dup_prob);
        if dup > 0.0 && rng.chance(dup) {
            *self.stats.duplicated.entry(key).or_insert(0) += 1;
            // The duplicate takes its own (independent) latency draw, so the
            // copy may arrive before *or* after the original.
            let lat2 = self.latency(rng, from, to);
            return Fate::Duplicate(lat, lat2);
        }
        Fate::Deliver(lat)
    }

    /// Decide the fate of one message from `from` to `to`: `Some(latency)`
    /// if it will be delivered that much later, `None` if it is lost
    /// (partition, down host, or random drop). Duplication collapses to a
    /// single delivery here; use [`Network::fate`] to observe the copy.
    pub fn transit(&mut self, rng: &mut SimRng, from: HostId, to: HostId) -> Option<SimDuration> {
        match self.fate(rng, from, to) {
            Fate::Lost => None,
            Fate::Deliver(lat) | Fate::Duplicate(lat, _) => Some(lat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn default_latency_applies() {
        let mut net = Network::new(SimDuration::from_millis(5));
        let mut r = rng();
        assert_eq!(net.transit(&mut r, 1, 2), Some(SimDuration::from_millis(5)));
    }

    #[test]
    fn loopback_is_instant_and_reliable() {
        let mut net = Network::default().with_drop_probability(1.0);
        net.set_host_down(3);
        let mut r = rng();
        // Even a "down" host can talk to itself over loopback: the paper's
        // chirp connection is "from one process to another on the loopback
        // network interface" and is as reliable as the local machine.
        assert_eq!(net.transit(&mut r, 3, 3), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn link_override_beats_default() {
        let mut net = Network::new(SimDuration::from_millis(1));
        net.set_link_latency(1, 2, SimDuration::from_millis(50));
        let mut r = rng();
        assert_eq!(
            net.transit(&mut r, 2, 1),
            Some(SimDuration::from_millis(50)),
            "links are undirected"
        );
        assert_eq!(net.transit(&mut r, 1, 3), Some(SimDuration::from_millis(1)));
        net.clear_link_latency(2, 1);
        assert_eq!(net.transit(&mut r, 1, 2), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = Network::default();
        net.partition(1, 2);
        let mut r = rng();
        assert!(net.is_partitioned(2, 1));
        assert_eq!(net.transit(&mut r, 1, 2), None);
        assert_eq!(net.transit(&mut r, 2, 1), None);
        net.heal(2, 1);
        assert!(net.transit(&mut r, 1, 2).is_some());
        assert_eq!(net.stats().dropped_total(), 2);
        assert_eq!(net.stats().dropped.get(&(1, 2)), Some(&2));
    }

    #[test]
    fn down_host_receives_and_sends_nothing() {
        let mut net = Network::default();
        net.set_host_down(7);
        let mut r = rng();
        assert!(net.is_down(7));
        assert_eq!(net.transit(&mut r, 7, 1), None);
        assert_eq!(net.transit(&mut r, 1, 7), None);
        net.set_host_up(7);
        assert!(net.transit(&mut r, 1, 7).is_some());
    }

    #[test]
    fn drop_probability_loses_messages() {
        let mut net = Network::default().with_drop_probability(0.5);
        let mut r = rng();
        let delivered = (0..10_000)
            .filter(|_| net.transit(&mut r, 1, 2).is_some())
            .count();
        assert!((4000..6000).contains(&delivered), "delivered={delivered}");
        assert_eq!(net.stats().dropped_total() as usize, 10_000 - delivered);
    }

    #[test]
    fn link_loss_overrides_global_drop_probability() {
        let mut net = Network::default().with_drop_probability(0.0);
        net.set_link_loss(1, 2, 1.0);
        let mut r = rng();
        assert_eq!(net.transit(&mut r, 2, 1), None, "lossy link is undirected");
        assert!(
            net.transit(&mut r, 1, 3).is_some(),
            "other links unaffected"
        );
        net.clear_link_loss(1, 2);
        assert!(net.transit(&mut r, 1, 2).is_some());
        assert_eq!(net.stats().dropped.get(&(1, 2)), Some(&1));
    }

    #[test]
    fn duplication_delivers_twice_and_is_counted() {
        let mut net = Network::default().with_duplication_probability(1.0);
        let mut r = rng();
        match net.fate(&mut r, 1, 2) {
            Fate::Duplicate(a, b) => {
                assert!(a >= SimDuration::from_micros(1));
                assert!(b >= SimDuration::from_micros(1));
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
        assert_eq!(net.stats().duplicated_total(), 1);
        // transit() collapses the duplicate to one delivery.
        assert!(net.transit(&mut r, 1, 2).is_some());
        assert_eq!(net.stats().duplicated_total(), 2);
    }

    #[test]
    fn link_duplication_overrides_global() {
        let mut net = Network::default();
        net.set_link_duplication(4, 5, 1.0);
        let mut r = rng();
        assert!(matches!(net.fate(&mut r, 5, 4), Fate::Duplicate(_, _)));
        assert!(matches!(net.fate(&mut r, 1, 2), Fate::Deliver(_)));
        net.clear_link_duplication(4, 5);
        assert!(matches!(net.fate(&mut r, 4, 5), Fate::Deliver(_)));
    }

    #[test]
    fn loopback_never_duplicates() {
        let mut net = Network::default().with_duplication_probability(1.0);
        let mut r = rng();
        assert_eq!(
            net.fate(&mut r, 6, 6),
            Fate::Deliver(SimDuration::from_micros(1))
        );
    }

    #[test]
    fn jitter_scales_latency_within_bounds() {
        let mut net = Network::new(SimDuration::from_millis(10)).with_jitter(0.5);
        let mut r = rng();
        for _ in 0..1000 {
            let l = net.transit(&mut r, 1, 2).unwrap();
            assert!(l >= SimDuration::from_millis(10), "lat {l}");
            assert!(l <= SimDuration::from_millis(15), "lat {l}");
        }
    }

    #[test]
    fn latency_is_never_zero() {
        let mut net = Network::new(SimDuration::ZERO);
        let mut r = rng();
        assert_eq!(net.transit(&mut r, 1, 2), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn identical_seeds_yield_identical_fates() {
        // Determinism: two networks with the same configuration, driven by
        // identically seeded RNGs, decide the same fate for every message.
        let mk = || {
            Network::new(SimDuration::from_millis(2))
                .with_jitter(0.3)
                .with_drop_probability(0.2)
                .with_duplication_probability(0.1)
        };
        let (mut a, mut b) = (mk(), mk());
        let mut ra = SimRng::seed_from_u64(99);
        let mut rb = SimRng::seed_from_u64(99);
        let fa: Vec<Fate> = (0..5000).map(|i| a.fate(&mut ra, 1, 2 + i % 3)).collect();
        let fb: Vec<Fate> = (0..5000).map(|i| b.fate(&mut rb, 1, 2 + i % 3)).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().dropped_total() > 0);
        assert!(a.stats().duplicated_total() > 0);
    }
}
