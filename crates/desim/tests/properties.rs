//! Property-based tests for the simulation engine.

use desim::prelude::*;
use desim::{EventKey, KeyedEventQueue};
// Only referenced inside `proptest!` blocks, which the offline stub erases.
#[allow(unused_imports)]
use desim::EventQueue;
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops are sorted by
    /// time, and equal-time events keep insertion order.
    #[test]
    fn queue_pops_stable_sorted(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), i);
        }
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        prop_assert_eq!(out.len(), times.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    /// Network transit: latency is always >= 1µs when delivered; loopback
    /// always delivers; partitions always block.
    #[test]
    fn network_invariants(
        base_ms in 0u64..50,
        jitter in 0.0f64..1.0,
        a in 0usize..8,
        b in 0usize..8,
        partitioned in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(SimDuration::from_millis(base_ms)).with_jitter(jitter);
        if partitioned {
            net.partition(a, b);
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let r = net.transit(&mut rng, a, b);
        if a == b {
            prop_assert_eq!(r, Some(SimDuration::from_micros(1)));
        } else if partitioned {
            prop_assert_eq!(r, None);
        } else {
            let lat = r.expect("healthy link delivers");
            prop_assert!(lat.as_micros() >= 1);
            let upper = SimDuration::from_millis(base_ms).mul_f64(1.0 + jitter)
                + SimDuration::from_micros(2);
            prop_assert!(lat <= upper, "latency {lat} above bound {upper}");
        }
    }

    /// Seeded RNG streams are reproducible and forks are independent of
    /// consumption order.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        // Fork before consuming on one, after consuming on the other: the
        // child streams must match because forking is order-independent.
        let mut child_a = a.fork(&label);
        let _ = a.f64();
        let _ = b.f64();
        let mut child_b = b.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(child_a.range_u64(0, 1000), child_b.range_u64(0, 1000));
        }
    }

    /// Virtual-time arithmetic: addition is monotone and saturating
    /// subtraction never underflows.
    #[test]
    fn time_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert!(t + d >= t);
        let diff = t.since(SimTime::from_micros(b));
        prop_assert_eq!(diff.as_micros(), a.saturating_sub(b));
    }

    /// Window-barrier merge discipline: when several sources deliver at
    /// the *same* timestamp into one shard queue — in any arrival order,
    /// as happens when barriers from different shards interleave — the
    /// pops come back in `(src, seq)` order: source-id major, FIFO per
    /// source. This is what makes a barrier's merge independent of the
    /// order the crossboxes were collected in.
    #[test]
    fn same_time_cross_shard_deliveries_pop_in_canonical_order(
        counts in prop::collection::vec(1usize..6, 1..6),
        order in prop::collection::vec(any::<u64>(), 30),
    ) {
        // counts[s] events from source s, all at t=500µs.
        let at = SimTime::from_micros(500);
        let mut events: Vec<EventKey> = Vec::new();
        for (src, n) in counts.iter().enumerate() {
            for seq in 0..*n as u64 {
                events.push(EventKey { at, src: src as u64, seq });
            }
        }
        // Shuffle the arrival order with the random ranks.
        let mut arrival: Vec<EventKey> = events.clone();
        arrival.sort_by_key(|k| order[(k.src as usize * 7 + k.seq as usize) % order.len()]);

        let mut q: KeyedEventQueue<EventKey> = KeyedEventQueue::new();
        for k in &arrival {
            q.push(*k, *k);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(k);
        }
        let mut expect = events;
        expect.sort();
        prop_assert_eq!(popped, expect);
    }

    /// Sharding differential: route a random event workload through 1
    /// shard and through N shards with conservative-window barrier
    /// delivery — every *target's* received stream must be identical.
    /// (This is the queue-level core of the ParWorld determinism gate:
    /// windows and barriers batch delivery, they never reorder a
    /// receiver's history.)
    #[test]
    fn window_barrier_drain_matches_single_queue_per_target(
        raw in prop::collection::vec((0u64..2000, 0usize..6, 0usize..6), 1..120),
        window in 1u64..400,
    ) {
        let events = keyed_events(&raw);
        let single = window_drain(&events, 1, window);
        for (target, stream) in single.iter().enumerate() {
            prop_assert_eq!(stream, &canonical_target_stream(&events, target));
        }
        for shards_n in [2, 3, 5] {
            prop_assert_eq!(&single, &window_drain(&events, shards_n, window),
                "diverged at {} shards", shards_n);
        }
    }
}

/// Canonical keys for a raw `(time_µs, src, target)` workload: per-source
/// seq counters advance in generation (send) order.
fn keyed_events(raw: &[(u64, usize, usize)]) -> Vec<(EventKey, usize)> {
    let mut seqs = [0u64; 6];
    raw.iter()
        .map(|&(t, src, target)| {
            let seq = seqs[src];
            seqs[src] += 1;
            (
                EventKey {
                    at: SimTime::from_micros(t),
                    src: src as u64,
                    seq,
                },
                target,
            )
        })
        .collect()
}

/// A target's reference history: its events in canonical key order.
fn canonical_target_stream(events: &[(EventKey, usize)], target: usize) -> Vec<EventKey> {
    let mut expect: Vec<EventKey> = events
        .iter()
        .filter(|(_, tgt)| *tgt == target)
        .map(|(k, _)| *k)
        .collect();
    expect.sort();
    expect
}

/// The conservative-window drain, modeled at the queue level: targets are
/// assigned round-robin to `shards_n` keyed queues; deliveries are held
/// in a crossbox and merged at the barrier opening the window containing
/// them; each shard then drains only its own window. Returns each
/// target's received stream.
fn window_drain(events: &[(EventKey, usize)], shards_n: usize, window: u64) -> Vec<Vec<EventKey>> {
    let mut queues: Vec<KeyedEventQueue<usize>> =
        (0..shards_n).map(|_| KeyedEventQueue::new()).collect();
    let mut held: Vec<(EventKey, usize)> = events.to_vec();
    held.sort();
    held.reverse(); // Vec::pop() yields earliest first
    let mut streams: Vec<Vec<EventKey>> = vec![Vec::new(); 6];
    loop {
        let next_held = held.last().map(|(k, _)| k.at);
        let next_queued = queues.iter().filter_map(|q| q.peek_time()).min();
        let Some(t) = [next_held, next_queued].into_iter().flatten().min() else {
            break;
        };
        let end = t + SimDuration::from_micros(window);
        // Barrier: deliver everything landing inside this window.
        while held.last().is_some_and(|(k, _)| k.at < end) {
            let (k, target) = held.pop().unwrap();
            queues[target % shards_n].push(k, target);
        }
        // Each shard drains its own window, in shard order.
        for q in queues.iter_mut() {
            while q.peek_time().is_some_and(|at| at < end) {
                let (k, target) = q.pop().unwrap();
                streams[target].push(k);
            }
        }
    }
    streams
}

/// Deterministic mirror of the two window-barrier properties above, so
/// the invariant stays exercised even where the proptest feature is off:
/// an LCG-generated workload at several window widths, 1-shard vs
/// N-shard differential plus canonical per-target order.
#[test]
fn window_barrier_drain_differential_fixed_workload() {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let raw: Vec<(u64, usize, usize)> = (0..150)
        .map(|_| (next() % 2000, (next() % 6) as usize, (next() % 6) as usize))
        .collect();
    let events = keyed_events(&raw);
    for window in [1, 37, 250, 1000] {
        let single = window_drain(&events, 1, window);
        for (target, stream) in single.iter().enumerate() {
            assert_eq!(stream, &canonical_target_stream(&events, target));
        }
        for shards_n in [2, 3, 5] {
            assert_eq!(
                single,
                window_drain(&events, shards_n, window),
                "diverged at {shards_n} shards, window {window}µs"
            );
        }
    }
}

/// Deterministic mirror of the same-time canonical-order property.
#[test]
fn same_time_deliveries_pop_in_canonical_order_fixed() {
    let at = SimTime::from_micros(500);
    let mut events: Vec<EventKey> = Vec::new();
    for src in 0..5u64 {
        for seq in 0..(1 + src % 3) {
            events.push(EventKey { at, src, seq });
        }
    }
    // Arrival order scrambled: reversed then rotated.
    let mut arrival = events.clone();
    arrival.reverse();
    arrival.rotate_left(3);
    let mut q: KeyedEventQueue<EventKey> = KeyedEventQueue::new();
    for k in &arrival {
        q.push(*k, *k);
    }
    let mut popped = Vec::new();
    while let Some((k, _)) = q.pop() {
        popped.push(k);
    }
    let mut expect = events;
    expect.sort();
    assert_eq!(popped, expect);
}

/// A deterministic world of relaying actors: each actor forwards a token
/// to the next with a pseudo-random delay; the full event history must be
/// identical across runs with the same seed.
#[test]
fn relay_world_is_deterministic() {
    #[derive(Clone, Debug)]
    struct Token(u32);

    struct Relay {
        next: ActorId,
        seen: u32,
    }
    impl Actor<Token> for Relay {
        fn name(&self) -> String {
            "relay".into()
        }
        fn on_message(&mut self, _f: ActorId, t: Token, ctx: &mut Context<'_, Token>) {
            self.seen += 1;
            if t.0 > 0 {
                let delay = SimDuration::from_micros(ctx.rng.range_u64(1, 1000));
                ctx.send_after(delay, self.next, Token(t.0 - 1));
            }
        }
    }

    let run = |seed: u64| {
        let mut w: World<Token> = World::new(seed);
        let ids: Vec<ActorId> = (0..5)
            .map(|_| w.add_actor(Box::new(Relay { next: 0, seen: 0 })))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let next = ids[(i + 1) % ids.len()];
            w.get_mut::<Relay>(*id).unwrap().next = next;
        }
        w.inject(ids[0], Token(200));
        w.run(10_000);
        (
            w.now(),
            w.events_processed(),
            ids.iter()
                .map(|id| w.get::<Relay>(*id).unwrap().seen)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(42), run(42));
    // Different seed: different delays, same token count.
    let (_, _, seen_a) = run(42);
    let (_, _, seen_b) = run(43);
    assert_eq!(seen_a.iter().sum::<u32>(), seen_b.iter().sum::<u32>());
}
