//! Property-based tests for the simulation engine.

use desim::prelude::*;
use desim::EventQueue;
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops are sorted by
    /// time, and equal-time events keep insertion order.
    #[test]
    fn queue_pops_stable_sorted(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), i);
        }
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        prop_assert_eq!(out.len(), times.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    /// Network transit: latency is always >= 1µs when delivered; loopback
    /// always delivers; partitions always block.
    #[test]
    fn network_invariants(
        base_ms in 0u64..50,
        jitter in 0.0f64..1.0,
        a in 0usize..8,
        b in 0usize..8,
        partitioned in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(SimDuration::from_millis(base_ms)).with_jitter(jitter);
        if partitioned {
            net.partition(a, b);
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let r = net.transit(&mut rng, a, b);
        if a == b {
            prop_assert_eq!(r, Some(SimDuration::from_micros(1)));
        } else if partitioned {
            prop_assert_eq!(r, None);
        } else {
            let lat = r.expect("healthy link delivers");
            prop_assert!(lat.as_micros() >= 1);
            let upper = SimDuration::from_millis(base_ms).mul_f64(1.0 + jitter)
                + SimDuration::from_micros(2);
            prop_assert!(lat <= upper, "latency {lat} above bound {upper}");
        }
    }

    /// Seeded RNG streams are reproducible and forks are independent of
    /// consumption order.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), label in "[a-z]{1,8}") {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        // Fork before consuming on one, after consuming on the other: the
        // child streams must match because forking is order-independent.
        let mut child_a = a.fork(&label);
        let _ = a.f64();
        let _ = b.f64();
        let mut child_b = b.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(child_a.range_u64(0, 1000), child_b.range_u64(0, 1000));
        }
    }

    /// Virtual-time arithmetic: addition is monotone and saturating
    /// subtraction never underflows.
    #[test]
    fn time_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert!(t + d >= t);
        let diff = t.since(SimTime::from_micros(b));
        prop_assert_eq!(diff.as_micros(), a.saturating_sub(b));
    }
}

/// A deterministic world of relaying actors: each actor forwards a token
/// to the next with a pseudo-random delay; the full event history must be
/// identical across runs with the same seed.
#[test]
fn relay_world_is_deterministic() {
    #[derive(Clone, Debug)]
    struct Token(u32);

    struct Relay {
        next: ActorId,
        seen: u32,
    }
    impl Actor<Token> for Relay {
        fn name(&self) -> String {
            "relay".into()
        }
        fn on_message(&mut self, _f: ActorId, t: Token, ctx: &mut Context<'_, Token>) {
            self.seen += 1;
            if t.0 > 0 {
                let delay = SimDuration::from_micros(ctx.rng.range_u64(1, 1000));
                ctx.send_after(delay, self.next, Token(t.0 - 1));
            }
        }
    }

    let run = |seed: u64| {
        let mut w: World<Token> = World::new(seed);
        let ids: Vec<ActorId> = (0..5)
            .map(|_| w.add_actor(Box::new(Relay { next: 0, seen: 0 })))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let next = ids[(i + 1) % ids.len()];
            w.get_mut::<Relay>(*id).unwrap().next = next;
        }
        w.inject(ids[0], Token(200));
        w.run(10_000);
        (
            w.now(),
            w.events_processed(),
            ids.iter()
                .map(|id| w.get::<Relay>(*id).unwrap().seen)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(42), run(42));
    // Different seed: different delays, same token count.
    let (_, _, seen_a) = run(42);
    let (_, _, seen_b) = run(43);
    assert_eq!(seen_a.iter().sum::<u32>(), seen_b.iter().sum::<u32>());
}
