//! Pins the ChaCha RNG stream to the published `rand_chacha` behavior.
//!
//! The workspace's hermetic offline build patches `rand_chacha` to a
//! vendored from-scratch implementation (`vendor/stubs/rand_chacha`).
//! These tests assert the keystream against published ChaCha test vectors
//! (draft-strombergson TC1 for 8 rounds, the RFC 7539 / draft-nir zero-key
//! vector for 20 rounds) and against `rand_core::block::BlockRng`'s
//! word-consumption semantics. They pass unchanged when built against the
//! real crates.io `rand_chacha` 0.3 — that equivalence is what makes
//! seeded experiment artifacts reproducible across both configurations.

use rand::{RngCore, SeedableRng};
use rand_chacha::{ChaCha20Rng, ChaCha8Rng};

/// ChaCha8, all-zero key, block 0: draft-strombergson TC1 (8 rounds),
/// keystream bytes 3e 00 ef 2f 89 5f 40 d6 ... as little-endian words.
const ZERO8: [u32; 16] = [
    0x2fef003e, 0xd6405f89, 0xe8b85b7f, 0xa1a5091f, 0xc30e842c, 0x3b7f9ace, 0x88e11b18, 0x1e1a71ef,
    0x72e14c98, 0x416f21b9, 0x6753449f, 0x19566d45, 0xa3424a31, 0x01b086da, 0xb8fd7b38, 0x42fe0c0e,
];

/// ChaCha8, all-zero key, block 1 (counter = 1), first 8 words.
const ZERO8_BLOCK1: [u32; 8] = [
    0x0dfaaed2, 0x51c1a5ea, 0x6cdb0abf, 0xada5f201, 0x1258fdc0, 0xaaa2f959, 0x8f0ff2dc, 0x6ba266d5,
];

/// ChaCha20, all-zero key, block 0: keystream 76 b8 e0 ad ... (RFC 7539 /
/// draft-nir test vector; also rand_chacha's own `test_chacha_true_values`).
const ZERO20: [u32; 8] = [
    0xade0b876, 0x903df1a0, 0xe56a5d40, 0x28bd8653, 0xb819d2bd, 0x1aed8da0, 0xccef36a8, 0xc70d778b,
];

/// ChaCha8 after `seed_from_u64(42)` (rand_core 0.6 PCG32 seed expansion).
const SEED42: [u32; 8] = [
    0x395d5ba1, 0xae90bfb5, 0x25799188, 0xf3453fc6, 0xc5b6538c, 0x6d71b708, 0x58166752, 0xa09ab2f9,
];

/// ChaCha8 with the incrementing seed 0,1,...,31.
const SEEDINC: [u32; 8] = [
    0x8fb21540, 0x6aab126e, 0x7b66e8d9, 0x3312c531, 0x27178ff7, 0x4fd9b290, 0xd72e6b32, 0xcbbebcff,
];

#[test]
fn chacha8_zero_key_matches_published_vector() {
    let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
    for (i, want) in ZERO8.iter().enumerate() {
        assert_eq!(rng.next_u32(), *want, "word {i}");
    }
    for (i, want) in ZERO8_BLOCK1.iter().enumerate() {
        assert_eq!(rng.next_u32(), *want, "block-1 word {i}");
    }
}

#[test]
fn chacha20_zero_key_matches_published_vector() {
    let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
    for (i, want) in ZERO20.iter().enumerate() {
        assert_eq!(rng.next_u32(), *want, "word {i}");
    }
}

#[test]
fn chacha8_seed_from_u64_matches_rand_core_expansion() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for (i, want) in SEED42.iter().enumerate() {
        assert_eq!(rng.next_u32(), *want, "word {i}");
    }
}

#[test]
fn chacha8_incrementing_seed_vector() {
    let mut seed = [0u8; 32];
    for (i, b) in seed.iter_mut().enumerate() {
        *b = i as u8;
    }
    let mut rng = ChaCha8Rng::from_seed(seed);
    for (i, want) in SEEDINC.iter().enumerate() {
        assert_eq!(rng.next_u32(), *want, "word {i}");
    }
}

/// `BlockRng` refills four blocks (64 words) at a time; a `next_u64`
/// issued with one word left must take that word as the low half and the
/// first word of the next refill as the high half, leaving the refill's
/// second word as the next `next_u32` result.
#[test]
fn next_u64_split_across_buffer_refill() {
    let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
    for _ in 0..63 {
        rng.next_u32();
    }
    assert_eq!(rng.next_u64(), 0x475ff7e801bf7962);
    assert_eq!(rng.next_u32(), 0x59d1b08c);
}

/// `fill_bytes` consumes whole words, little-endian, including a partial
/// trailing word — the next `next_u32` comes from the following word.
#[test]
fn fill_bytes_consumes_whole_words_le() {
    let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
    let mut buf = [0u8; 7];
    rng.fill_bytes(&mut buf);
    assert_eq!(buf, [0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40]);
    assert_eq!(rng.next_u32(), ZERO8[2]);
}

/// Interleaved u32/u64 draws stay aligned with the pure-u32 stream.
#[test]
fn mixed_draws_follow_block_rng_semantics() {
    let mut a = ChaCha8Rng::from_seed([0u8; 32]);
    let lo = u64::from(ZERO8[0]);
    let hi = u64::from(ZERO8[1]);
    assert_eq!(a.next_u64(), (hi << 32) | lo);
    assert_eq!(a.next_u32(), ZERO8[2]);
}
