//! Fault-campaign fuzzing with a machine-checked error-scope oracle.
//!
//! The runtime experiments (E1–E11) each pin one fault class in isolation
//! and assert a hand-written expectation. This crate closes the loop the
//! other way: it *generates* randomized fault schedules — crashes,
//! partitions, loss, duplication, latency spikes, black holes, bad
//! installations, corrupt checkpoints, and memory bit-flips — runs each
//! through the full Condor pool, and checks the run's exported event
//! stream against the paper's four principles mechanically, with no
//! per-scenario expectations at all:
//!
//! * **P1** — errors stay explicit: no journey hop ever converts an
//!   explicit error into an implicit one (no `Swallowed` hops), and the
//!   kernel's own self-reported violations are surfaced.
//! * **P2** — scope changes only widen: every `Widened` hop moves the
//!   error to a scope that strictly contains the one it left.
//! * **P3** — delivery to the scope's manager: every journey terminates
//!   at exactly the Figure 3 layer that manages its final scope, and
//!   every disposition is the one §3.4 assigns to that scope.
//! * **P4** — no lost work: every submitted job ends `Completed` or
//!   `Unexecutable` before the deadline; `Held`, `AwaitingPostmortem`,
//!   or a non-quiescent run is a liveness violation.
//!
//! When the oracle does fire, the violating run is re-executed fault-free
//! from the same seed and both streams go to the post-mortem localizer
//! ([`obs_analyze::localize`]) so the failure arrives pre-annotated with
//! a named culprit, not just a red assertion.
//!
//! The [`sdc`] module accounts for the silent-data-corruption arm of each
//! campaign: checkpoint-image flips must be *detected* (caught by the
//! FNV-1a digest at restore and discarded), while heap flips timed past
//! the digest check must *escape* (the job completes, exit 0, wrong
//! answer) — the ORNL detection/containment/recovery vocabulary, measured
//! rather than asserted.

pub mod gen;
pub mod oracle;
pub mod sdc;

pub use gen::{
    generate, generate_flock, Campaign, CrashPlan, FlipPlan, FlockCampaign, FlockFaultKind,
    FlockFaultPlan, JobPlan, NetKind, NetPlan, Program, RogueKind,
};
pub use oracle::{check, postmortem, RunSummary, Violation};
pub use sdc::{flip_stats, FlipStats};
