//! The campaign generator: a pure function from a seed to a fault
//! schedule and the pool that runs it.
//!
//! Every draw flows through an in-crate SplitMix64, so a [`Campaign`] is
//! a deterministic function of its seed — the same seed yields a
//! byte-identical [`Campaign::describe`] on any thread of any sweep, which
//! is what lets `exp_campaign` gate on artifact byte-identity and lets a
//! red seed be replayed in isolation.
//!
//! The sampled schedules are adversarial but *survivable by design*: the
//! oracle's P4 (no lost work) only means something if a correct kernel can
//! actually drain every queue, so the generator enforces liveness
//! invariants structurally rather than hoping:
//!
//! * the last healthy machine is an anchor — never crashed, never the
//!   owner's desk, and never a net-fault endpoint, so one reachable
//!   execution site always remains (the full campaign sweep found each
//!   of those three clauses the hard way: chronic-host avoidance is
//!   permanent, so even a *bounded* loss window on the anchor's link
//!   can blacklist the last machine and strand the queue);
//! * crashes may land on any machine *except* the anchor — the rail is
//!   "a healthy anchor always remains", not "only the first machine may
//!   die" — and every other fault window is bounded well inside the
//!   48-hour deadline;
//! * chronic-host avoidance and claim leases are always on, so black
//!   holes and partitions become explicit, routable errors instead of
//!   infinite retry loops.
//!
//! Within those rails everything else composes freely: a checkpoint
//! campaign can lose its first machine to the owner, its image to a
//! stored-bit flip, and its link to a partition in the same run.

use condor::prelude::*;
use condor::PoolBuilder as PB;
use desim::{SimDuration, SimTime};
use gridvm::config::SelfTestDepth;
use gridvm::programs;
use std::fmt::Write as _;

/// SplitMix64 (Steele et al.), the whole PRNG in eight lines: no external
/// crate, stable across platforms, and trivially auditable — exactly what
/// a replayable fuzzer wants from its entropy source.
pub struct Rng(u64);

impl Rng {
    /// Seed the stream.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A machine that is present but wrong, in one of the paper's two ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RogueKind {
    /// §5's black hole: a well-resourced machine that accepts every job
    /// and breaks every one.
    BlackHole,
    /// A partial Java installation: passes the trivial self-test, fails
    /// any job that touches the standard library.
    PartialInstall,
}

/// Which program image a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Program {
    /// Completes normally.
    CompletesMain,
    /// Long arithmetic loop.
    CpuBound,
    /// Calls `exit(0)` explicitly.
    CallsExit,
    /// Touches the standard library (the bad-install victim).
    UsesStdlib,
    /// Allocates and sums a heap array — the bit-flip victim, whose
    /// output makes silent corruption visible as a wrong sum.
    HeapSum,
    /// A seeded program from the shared [`programs::generate_with`]
    /// generator (the same one behind the gridvm unit corpus and the E14
    /// differential harness): hot loops with fault-armed bodies, so the
    /// campaign also exercises the trace tier and mid-loop program
    /// exceptions. I/O is disabled — these jobs don't declare remote
    /// files — and the payload seed keeps the image a pure function of
    /// the campaign seed.
    Generated(u64),
}

impl Program {
    fn name(self) -> String {
        match self {
            Program::CompletesMain => "completes-main".into(),
            Program::CpuBound => "cpu-bound".into(),
            Program::CallsExit => "calls-exit".into(),
            Program::UsesStdlib => "uses-stdlib".into(),
            Program::HeapSum => "heap-sum".into(),
            Program::Generated(seed) => format!("generated-{seed}"),
        }
    }

    fn image(self) -> Vec<u8> {
        match self {
            Program::CompletesMain => programs::completes_main(),
            Program::CpuBound => programs::cpu_bound(2000),
            Program::CallsExit => programs::calls_exit(0),
            Program::UsesStdlib => programs::uses_stdlib(),
            Program::HeapSum => programs::heap_sum(64),
            Program::Generated(seed) => programs::generate_with(
                seed,
                &programs::GenOptions {
                    include_io: false,
                    include_faults: true,
                },
            ),
        }
    }
}

/// One job in the campaign's queue.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// Queue id.
    pub id: u32,
    /// Program image.
    pub program: Program,
    /// Nominal execution time, seconds.
    pub exec_secs: u64,
    /// Standard universe (checkpointing) instead of Java.
    pub standard: bool,
}

/// A scheduled machine crash.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Victim actor id.
    pub machine: usize,
    /// Crash time, seconds.
    pub from_s: u64,
    /// Repair delay in seconds; `None` means the machine never returns.
    pub len_s: Option<u64>,
}

/// Which network misbehavior a [`NetPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    /// Both directions severed.
    Partition,
    /// Probabilistic message drop.
    Loss,
    /// Fixed delivery delay.
    Latency,
    /// Probabilistic message duplication.
    Duplication,
}

impl NetKind {
    fn name(self) -> &'static str {
        match self {
            NetKind::Partition => "partition",
            NetKind::Loss => "loss",
            NetKind::Latency => "latency",
            NetKind::Duplication => "duplication",
        }
    }
}

/// One timed fault on the schedd–machine link.
#[derive(Debug, Clone)]
pub struct NetPlan {
    /// What goes wrong.
    pub kind: NetKind,
    /// The machine end of the link.
    pub machine: usize,
    /// Onset, seconds.
    pub from_s: u64,
    /// Duration, seconds (always bounded).
    pub len_s: u64,
    /// Loss/duplication probability in permille, or latency in
    /// milliseconds — an integer so `describe()` never formats a float.
    pub permille: u64,
}

/// The campaign's silent-data-corruption arm.
#[derive(Debug, Clone)]
pub enum FlipPlan {
    /// Flip one bit of the job's live heap immediately after a checkpoint
    /// restore passes its digest check: undetectable by construction.
    Heap {
        /// Victim job.
        job: u32,
        /// Placement seed (reduced modulo the heap size when it lands).
        seed_bit: u64,
    },
    /// Flip one bit of every stored checkpoint image: the restore digest
    /// must catch it.
    Ckpt {
        /// Victim job.
        job: u32,
    },
}

/// A fully-sampled fault campaign: topology, queue, and schedule.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The generator seed (also the pool seed).
    pub seed: u64,
    /// Healthy machine count (the last one is the liveness anchor).
    pub machines: usize,
    /// An additional broken machine, if any.
    pub rogue: Option<RogueKind>,
    /// Whether the schedd runs per-machine circuit breakers.
    pub breaker: bool,
    /// The queue.
    pub jobs: Vec<JobPlan>,
    /// Owner activity on the first machine `(from_s, to_s)` — evicts the
    /// standard job mid-run, forcing the checkpoint round-trip.
    pub owner_window: Option<(u64, u64)>,
    /// A machine crash, if scheduled.
    pub crash: Option<CrashPlan>,
    /// Network faults, if scheduled.
    pub net: Vec<NetPlan>,
    /// The bit-flip arm, if armed.
    pub flip: Option<FlipPlan>,
}

/// The campaign deadline: generous enough that any run the kernel *can*
/// finish, it does — so a non-quiescent run is a real liveness bug, not a
/// tight budget.
pub fn deadline() -> SimTime {
    SimTime::from_secs(48 * 3600)
}

/// Sample the campaign for `seed`. Pure: same seed, same campaign.
pub fn generate(seed: u64) -> Campaign {
    let mut rng = Rng::new(seed);
    let machines = 2 + rng.below(2) as usize;
    let rogue = match rng.below(10) {
        0..=2 => Some(RogueKind::BlackHole),
        3..=4 => Some(RogueKind::PartialInstall),
        _ => None,
    };
    let breaker = rng.chance(40);

    let mut jobs = Vec::new();
    let standard = rng.chance(65);
    if standard {
        jobs.push(JobPlan {
            id: 1,
            program: Program::HeapSum,
            exec_secs: 600,
            standard: true,
        });
    }
    let extra = 1 + rng.below(3);
    for _ in 0..extra {
        let program = match rng.below(4) {
            0 => Program::CompletesMain,
            1 => Program::CpuBound,
            2 => Program::CallsExit,
            _ => Program::UsesStdlib,
        };
        jobs.push(JobPlan {
            id: jobs.len() as u32 + 1,
            program,
            exec_secs: 30 + rng.below(120),
            standard: false,
        });
    }

    // The eviction window and the flip arm exist only when there is a
    // checkpointing job for them to act on.
    let owner_window = standard.then(|| (240 + rng.below(240), 3600 + rng.below(1800)));
    let flip = if standard {
        match rng.below(10) {
            0..=3 => Some(FlipPlan::Heap {
                job: 1,
                seed_bit: rng.next_u64(),
            }),
            4..=6 => Some(FlipPlan::Ckpt { job: 1 }),
            _ => None,
        }
    } else {
        None
    };

    // Bounded network trouble on schedd-machine links. The anchor is
    // never an endpoint: chronic-host avoidance is permanent, so a lossy
    // anchor link could blacklist the last machine (two lease expiries
    // suffice) and strand the queue with every fault long over.
    let mut eligible: Vec<usize> = (0..machines - 1)
        .map(|i| PB::FIRST_MACHINE_ID + i)
        .collect();
    if rogue.is_some() {
        eligible.push(PB::FIRST_MACHINE_ID + machines);
    }
    let mut net = Vec::new();
    for _ in 0..rng.below(3) {
        let kind = match rng.below(4) {
            0 => NetKind::Partition,
            1 => NetKind::Loss,
            2 => NetKind::Latency,
            _ => NetKind::Duplication,
        };
        let permille = match kind {
            NetKind::Partition => 0,
            NetKind::Loss | NetKind::Duplication => 50 + rng.below(10) * 50,
            NetKind::Latency => 50 + rng.below(8) * 50,
        };
        net.push(NetPlan {
            kind,
            machine: eligible[rng.below(eligible.len() as u64) as usize],
            from_s: 60 + rng.below(900),
            len_s: 120 + rng.below(1500),
            permille,
        });
    }

    // Crashes may hit any non-anchor machine (the same eligibility set
    // as the net faults): the liveness rail is that *some* healthy
    // anchor survives, not that only the first machine may die. An
    // unbounded crash stays legal anywhere in the set for the same
    // reason — the anchor outlives it.
    let crash = rng.chance(35).then(|| CrashPlan {
        machine: eligible[rng.below(eligible.len() as u64) as usize],
        from_s: 200 + rng.below(1800),
        len_s: (!rng.chance(30)).then(|| 600 + rng.below(1800)),
    });

    // A job from the shared random-program generator joins some queues.
    // Sampled last, from fresh draws, so every decision above is identical
    // to what the same seed produced before this arm existed — replayed
    // red seeds stay red.
    if rng.chance(40) {
        jobs.push(JobPlan {
            id: jobs.len() as u32 + 1,
            program: Program::Generated(rng.below(1 << 32)),
            exec_secs: 30 + rng.below(120),
            standard: false,
        });
    }

    Campaign {
        seed,
        machines,
        rogue,
        breaker,
        jobs,
        owner_window,
        crash,
        net,
        flip,
    }
}

impl Campaign {
    /// The campaign's fault schedule as an (unbuilt) [`FaultPlan`].
    /// `Campaign::build_pool` validates it through
    /// [`FaultPlan::try_build`]-backed `build()`, so a generator bug that
    /// produces an inverted window fails fast with a named window, not a
    /// silent no-op fault.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if let Some((from, to)) = self.owner_window {
            plan = plan.owner_activity(
                PB::FIRST_MACHINE_ID,
                Window::new(SimTime::from_secs(from), SimTime::from_secs(to)),
            );
        }
        if let Some(c) = &self.crash {
            let from = SimTime::from_secs(c.from_s);
            let window = match c.len_s {
                Some(len) => Window::new(from, SimTime::from_secs(c.from_s + len)),
                None => Window::from(from),
            };
            plan = plan.crash(c.machine, window);
        }
        for n in &self.net {
            let window = Window::new(
                SimTime::from_secs(n.from_s),
                SimTime::from_secs(n.from_s + n.len_s),
            );
            let s = PB::SCHEDD_ID;
            plan = match n.kind {
                NetKind::Partition => plan.net_partition([s], [n.machine], window),
                NetKind::Loss => plan.net_loss(s, n.machine, n.permille as f64 / 1000.0, window),
                NetKind::Latency => plan.net_latency_spike(
                    s,
                    n.machine,
                    SimDuration::from_millis(n.permille),
                    window,
                ),
                NetKind::Duplication => {
                    plan.net_duplication(s, n.machine, n.permille as f64 / 1000.0, window)
                }
            };
        }
        match &self.flip {
            Some(FlipPlan::Heap { job, seed_bit }) => plan = plan.heap_flip(*job, *seed_bit),
            Some(FlipPlan::Ckpt { job }) => plan = plan.ckpt_flip(*job),
            None => {}
        }
        plan
    }

    /// The pool for this campaign. `faulty = false` builds the identical
    /// topology with every injected fault removed (the rogue machine
    /// becomes a healthy twin of the same size), giving the byte-identical
    /// reference stream the post-mortem localizer diffs against.
    pub fn build_pool(&self, faulty: bool) -> PoolBuilder {
        let mut builder = PoolBuilder::new(self.seed);
        for i in 0..self.machines {
            // The first machine is the checkpoint campaign's favorite
            // (most memory, so the standard job lands there first); the
            // rest are small.
            let mem = if i == 0 { 2048 } else { 256 };
            builder = builder.machine(MachineSpec::healthy(&format!("site{i}"), mem));
        }
        if let Some(kind) = self.rogue {
            builder = builder.machine(match (kind, faulty) {
                (RogueKind::BlackHole, true) => MachineSpec::misconfigured("rogue", 512),
                (RogueKind::PartialInstall, true) => {
                    MachineSpec::partially_misconfigured("rogue", 512)
                }
                (_, false) => MachineSpec::healthy("rogue", 512),
            });
        }
        if self.rogue == Some(RogueKind::PartialInstall) {
            // A deep self-test would catch the partial install at claim
            // time; the paper's incident was only visible at job time.
            builder = builder.startd_policy(StartdPolicy {
                self_test: SelfTestDepth::Trivial,
                learn_from_failures: true,
                ..StartdPolicy::default()
            });
        }
        builder = builder.schedd_policy(ScheddPolicy {
            lease: Some(LeaseInfo {
                interval: SimDuration::from_secs(10),
                timeout: SimDuration::from_secs(30),
            }),
            avoid_chronic_hosts: true,
            avoid_threshold: 2,
            max_attempts: 60,
            breaker: self.breaker.then(BreakerPolicy::default),
            ..ScheddPolicy::default()
        });
        for j in &self.jobs {
            let mut spec = JobSpec::java(j.id, "ada", j.program.image(), JavaMode::Scoped)
                .with_exec_time(SimDuration::from_secs(j.exec_secs));
            if j.standard {
                spec.universe = Universe::Standard;
            }
            builder = builder.job(spec);
        }
        let plan = if faulty {
            self.fault_plan()
        } else {
            FaultPlan::none()
        };
        builder
            .with_checkpoint_server()
            .faults(plan)
            .without_trace()
    }

    /// Run the campaign (or its fault-free reference) to the deadline.
    pub fn run(&self, faulty: bool) -> RunReport {
        self.build_pool(faulty).run(deadline())
    }

    /// A stable, line-oriented rendering of everything the generator
    /// decided. Two `Campaign`s describe identically iff they would build
    /// identical pools, so this string is the determinism witness the
    /// property tests and the sweep harness compare.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign seed={} machines={} rogue={} breaker={}",
            self.seed,
            self.machines,
            match self.rogue {
                Some(RogueKind::BlackHole) => "black-hole",
                Some(RogueKind::PartialInstall) => "partial-install",
                None => "none",
            },
            self.breaker
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "  job {} {} exec={}s universe={}",
                j.id,
                j.program.name(),
                j.exec_secs,
                if j.standard { "standard" } else { "java" }
            );
        }
        if let Some((from, to)) = self.owner_window {
            let _ = writeln!(out, "  owner-activity machine=2 [{from}s, {to}s)");
        }
        if let Some(c) = &self.crash {
            match c.len_s {
                Some(len) => {
                    let _ = writeln!(
                        out,
                        "  crash machine={} [{}s, {}s)",
                        c.machine,
                        c.from_s,
                        c.from_s + len
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  crash machine={} [{}s, forever)",
                        c.machine, c.from_s
                    );
                }
            }
        }
        for n in &self.net {
            let _ = writeln!(
                out,
                "  net {} machine={} [{}s, {}s) permille={}",
                n.kind.name(),
                n.machine,
                n.from_s,
                n.from_s + n.len_s,
                n.permille
            );
        }
        match &self.flip {
            Some(FlipPlan::Heap { job, seed_bit }) => {
                let _ = writeln!(out, "  flip heap job={job} seed-bit={seed_bit}");
            }
            Some(FlipPlan::Ckpt { job }) => {
                let _ = writeln!(out, "  flip ckpt job={job}");
            }
            None => {}
        }
        out
    }
}

/// The deliberately broken kernel for the oracle's negative control: a
/// naive-mode pool around a black hole, where environment errors reach
/// the user dressed as results (the pre-error-scope Condor of §2). A
/// correct oracle must flag it; a correct localizer must name the rogue
/// machine. `faulty = false` is the same-seed healthy reference for the
/// post-mortem.
pub fn negative_control_pool(seed: u64, faulty: bool) -> PoolBuilder {
    let rogue = if faulty {
        MachineSpec::misconfigured("rogue", 4096)
    } else {
        MachineSpec::healthy("rogue", 4096)
    };
    PoolBuilder::new(seed)
        .machine(rogue)
        .machine(MachineSpec::healthy("ok", 256))
        .jobs((1..=3).map(|i| {
            JobSpec::java(i, "ada", programs::completes_main(), JavaMode::Naive)
                .with_exec_time(SimDuration::from_secs(60))
        }))
        .without_trace()
}

/// Which remote-pool fault a [`FlockCampaign`] window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlockFaultKind {
    /// The remote pool's matchmaker crashes: flock probes must time out
    /// into explicit `unreachable` pool faults, never hang.
    MatchmakerCrash,
    /// The inter-pool link partitions — the schedd loses the remote
    /// matchmaker *and* its machines at once, mid-flock.
    Partition,
    /// The remote pool's machines revoke flocked claims at activation:
    /// the visiting job is bounced back with an explicit revocation.
    Revocation,
}

impl FlockFaultKind {
    fn name(self) -> &'static str {
        match self {
            FlockFaultKind::MatchmakerCrash => "matchmaker-crash",
            FlockFaultKind::Partition => "partition",
            FlockFaultKind::Revocation => "revocation",
        }
    }
}

/// One timed fault against a remote pool in a [`FlockCampaign`].
#[derive(Debug, Clone)]
pub struct FlockFaultPlan {
    /// What goes wrong.
    pub kind: FlockFaultKind,
    /// The victim pool (never the home pool, never the anchor pool).
    pub pool: u64,
    /// Onset, seconds.
    pub from_s: u64,
    /// Duration, seconds (always bounded).
    pub len_s: u64,
}

/// A fully-sampled federation campaign: pool topology, queue, and the
/// remote-pool fault schedule. The liveness rail generalizes the
/// single-pool anchor: the *last* pool is the anchor pool — never a
/// fault target — so some pool always retains healthy, reachable
/// machines and P4 stays meaningful.
#[derive(Debug, Clone)]
pub struct FlockCampaign {
    /// The generator seed (also the federation seed).
    pub seed: u64,
    /// Machines per pool; index 0 is the home pool (kept small or empty
    /// so flocking actually happens), the last pool is the anchor.
    pub pools: Vec<usize>,
    /// Nominal execution time of each job, seconds (queue ids are
    /// `1..=jobs.len()`).
    pub jobs: Vec<u64>,
    /// The remote-pool fault schedule.
    pub faults: Vec<FlockFaultPlan>,
}

/// Sample the federation campaign for `seed`. Pure: same seed, same
/// campaign.
pub fn generate_flock(seed: u64) -> FlockCampaign {
    let mut rng = Rng::new(seed);
    let n_pools = 3 + rng.below(3) as usize;
    let mut pools = Vec::with_capacity(n_pools);
    // A starved home pool: zero or one machine, so most of the queue
    // must flock.
    pools.push(rng.below(2) as usize);
    for _ in 1..n_pools {
        pools.push(1 + rng.below(2) as usize);
    }
    let jobs = (0..2 + rng.below(4)).map(|_| 30 + rng.below(90)).collect();
    // Fault targets exclude pool 0 (home: faults there are just the
    // saturation flocking already exercises) and the anchor pool.
    let targets = (n_pools - 2) as u64;
    let faults = (0..1 + rng.below(2))
        .map(|_| {
            let kind = match rng.below(3) {
                0 => FlockFaultKind::MatchmakerCrash,
                1 => FlockFaultKind::Partition,
                _ => FlockFaultKind::Revocation,
            };
            FlockFaultPlan {
                kind,
                pool: 1 + rng.below(targets),
                from_s: rng.below(300),
                len_s: 300 + rng.below(1200),
            }
        })
        .collect();
    FlockCampaign {
        seed,
        pools,
        jobs,
        faults,
    }
}

impl FlockCampaign {
    /// The machine actor ids of `pool`, mirroring
    /// [`FederationBuilder`]'s deterministic layout (matchmaker `p` at
    /// actor `p`, schedd after the matchmakers, machines after the
    /// schedd grouped by pool).
    fn machine_ids(&self, pool: u64) -> Vec<usize> {
        let mut next = self.pools.len() + 1;
        for (p, &n) in self.pools.iter().enumerate() {
            if p as u64 == pool {
                return (next..next + n).collect();
            }
            next += n;
        }
        Vec::new()
    }

    /// The campaign's fault schedule as an (unbuilt) [`FaultPlan`].
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let schedd = self.pools.len();
        for f in &self.faults {
            let window = Window::new(
                SimTime::from_secs(f.from_s),
                SimTime::from_secs(f.from_s + f.len_s),
            );
            match f.kind {
                FlockFaultKind::MatchmakerCrash => {
                    plan = plan.crash(f.pool as usize, window);
                }
                FlockFaultKind::Partition => {
                    let mut far = vec![f.pool as usize];
                    far.extend(self.machine_ids(f.pool));
                    plan = plan.net_partition([schedd], far, window);
                }
                FlockFaultKind::Revocation => {
                    for m in self.machine_ids(f.pool) {
                        plan = plan.flock_revocation(m, window);
                    }
                }
            }
        }
        plan
    }

    /// The federation for this campaign. `faulty = false` builds the
    /// identical topology with the fault schedule removed — the
    /// reference stream for the post-mortem localizer.
    pub fn build(&self, faulty: bool) -> FederationBuilder {
        let mut b = FederationBuilder::new(self.seed);
        for (p, &n) in self.pools.iter().enumerate() {
            b = b.pool((0..n).map(|i| MachineSpec::healthy(&format!("p{p}m{i}"), 256)));
        }
        let plan = if faulty {
            self.fault_plan()
        } else {
            FaultPlan::none()
        };
        b.jobs(self.jobs.iter().enumerate().map(|(i, &exec)| {
            JobSpec::java(
                i as u32 + 1,
                "ada",
                programs::completes_main(),
                JavaMode::Scoped,
            )
            .with_exec_time(SimDuration::from_secs(exec))
        }))
        .schedd_policy(ScheddPolicy {
            max_attempts: 60,
            ..ScheddPolicy::default()
        })
        .patience(SimDuration::from_secs(30))
        .faults(plan)
        .without_trace()
    }

    /// Run the campaign (or its fault-free reference) to the deadline.
    pub fn run(&self, faulty: bool) -> FlockReport {
        self.build(faulty).run(deadline())
    }

    /// Stable, line-oriented determinism witness (same contract as
    /// [`Campaign::describe`]).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flock-campaign seed={} pools={:?} jobs={:?}",
            self.seed, self.pools, self.jobs
        );
        for f in &self.faults {
            let _ = writeln!(
                out,
                "  fault {} pool={} [{}s, {}s)",
                f.kind.name(),
                f.pool,
                f.from_s,
                f.from_s + f.len_s
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check, RunSummary};
    use obs_analyze::Stream;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(generate(seed).describe(), generate(seed).describe());
        }
    }

    #[test]
    fn seeds_differ() {
        // Not a tautology: a generator that ignored its seed would pass
        // every determinism gate while fuzzing nothing.
        let a = generate(100).describe();
        assert!((101..140).any(|s| generate(s).describe() != a));
    }

    #[test]
    fn every_generated_plan_validates() {
        for seed in 0..200 {
            let c = generate(seed);
            c.fault_plan()
                .try_build()
                .unwrap_or_else(|e| panic!("seed {seed}: generator built a bad plan: {e}"));
            assert!(!c.jobs.is_empty(), "seed {seed}: empty queue");
            // The liveness rails: neither a crash window nor a net fault
            // ever touches the anchor — a healthy anchor always remains.
            let anchor = PB::FIRST_MACHINE_ID + c.machines - 1;
            if let Some(crash) = &c.crash {
                assert_ne!(crash.machine, anchor, "seed {seed}: crash on the anchor");
            }
            for n in &c.net {
                assert_ne!(n.machine, anchor, "seed {seed}: net fault on the anchor");
            }
        }
    }

    #[test]
    fn a_sampled_campaign_runs_clean_through_the_oracle() {
        // One full end-to-end spin of a seed known to compose an owner
        // eviction with a flip arm; the sweep harness does thousands.
        let c = generate(3);
        assert!(c.flip.is_some(), "seed 3 should arm the flip for this test");
        let report = c.run(true);
        let stream = Stream::from_collector(&report.telemetry).unwrap();
        let summary = RunSummary::of(&report);
        let violations = check(&stream, &summary);
        assert!(
            violations.is_empty(),
            "oracle fired on a correct kernel: {violations:?}"
        );
    }

    #[test]
    fn a_campaign_with_a_generated_program_runs_clean_through_the_oracle() {
        // The shared-generator arm must compose with the oracle like any
        // canned program: its mid-loop faults are program-scope results,
        // not environment errors, and the kernel stays quiescent.
        let c = (0..50u64)
            .map(generate)
            .find(|c| {
                c.jobs
                    .iter()
                    .any(|j| matches!(j.program, Program::Generated(_)))
            })
            .expect("some seed in 0..50 samples the generated arm");
        let report = c.run(true);
        let stream = Stream::from_collector(&report.telemetry).unwrap();
        let summary = RunSummary::of(&report);
        let violations = check(&stream, &summary);
        assert!(
            violations.is_empty(),
            "oracle fired on a correct kernel: {violations:?}\n{}",
            c.describe()
        );
    }

    #[test]
    fn flock_generation_is_deterministic() {
        for seed in [0, 1, 9, 0xFEED_FACE, u64::MAX] {
            assert_eq!(
                generate_flock(seed).describe(),
                generate_flock(seed).describe()
            );
        }
        let a = generate_flock(300).describe();
        assert!((301..340).any(|s| generate_flock(s).describe() != a));
    }

    #[test]
    fn every_flock_plan_validates_and_spares_the_anchor_pool() {
        for seed in 0..100 {
            let c = generate_flock(seed);
            c.fault_plan()
                .try_build()
                .unwrap_or_else(|e| panic!("seed {seed}: generator built a bad plan: {e}"));
            assert!(!c.jobs.is_empty(), "seed {seed}: empty queue");
            assert!(!c.faults.is_empty(), "seed {seed}: nothing injected");
            // The federated liveness rail: the last pool is the anchor —
            // it has machines and no fault window ever targets it (or
            // the home pool, whose starvation is the point).
            let anchor = c.pools.len() as u64 - 1;
            assert!(c.pools[anchor as usize] >= 1, "seed {seed}: empty anchor");
            for f in &c.faults {
                assert!(
                    f.pool >= 1 && f.pool < anchor,
                    "seed {seed}: fault on pool {} (anchor {anchor})",
                    f.pool
                );
            }
        }
    }

    #[test]
    fn a_sampled_flock_campaign_runs_clean_through_the_oracle() {
        let c = generate_flock(5);
        let report = c.run(true);
        assert!(report.quiescent, "unfinished: {:?}", report.unfinished());
        let stream = Stream::from_collector(&report.telemetry).unwrap();
        let summary = RunSummary::of_flock(&report);
        let violations = check(&stream, &summary);
        assert!(
            violations.is_empty(),
            "oracle fired on a correct federation: {violations:?}\n{}",
            c.describe()
        );
    }

    #[test]
    fn negative_control_is_flagged_and_localized() {
        let report = negative_control_pool(11, true).run(SimTime::from_secs(24 * 3600));
        let stream = Stream::from_collector(&report.telemetry).unwrap();
        let summary = RunSummary::of(&report);
        let violations = check(&stream, &summary);
        assert!(
            violations.iter().any(|v| v.principle == 3),
            "naive kernel must trip the delivery invariant: {violations:?}"
        );
        let reference = negative_control_pool(11, false).run(SimTime::from_secs(24 * 3600));
        let rs = Stream::from_collector(&reference.telemetry).unwrap();
        let post = crate::oracle::postmortem(&stream, &rs);
        assert!(
            post.contains("machine:2"),
            "post-mortem must name the rogue machine:\n{post}"
        );
    }
}
