//! Silent-data-corruption accounting in the ORNL resilience vocabulary:
//! for each campaign, how many injected flips were *detected* (caught by
//! a digest and contained to a discarded image), how many were *recovered*
//! (the job still completed from a cold restart), and how many *escaped*
//! (the run finished, exit 0, wrong answer).
//!
//! The counts come from the stream's own `mem-flip` scrubber log — the
//! injector's record of where each bit actually landed — cross-checked
//! against checkpoint-discard events and final job states, so a campaign
//! whose flip never fired (the job never revisited its checkpoint)
//! contributes zero, not a phantom detection.

use obs::Event;
use obs_analyze::Stream;
use std::collections::BTreeSet;

/// Flip outcomes for one campaign (or, summed, for a whole sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipStats {
    /// Bits flipped in stored checkpoint images.
    pub ckpt_injected: u64,
    /// Image flips caught by the restore digest (capped at injected).
    /// Flipped images nobody ever refetched — the job finished some
    /// other way — count as injected but neither detected nor escaped.
    pub ckpt_detected: u64,
    /// Flipped images that *passed* the digest and were restored — a
    /// digest escape, which the theory says cannot happen.
    pub ckpt_escaped: u64,
    /// Bits flipped into live heaps after digest validation.
    pub heap_injected: u64,
    /// Heap flips whose job nonetheless reported normal completion —
    /// the undetectable-by-construction escapes.
    pub heap_escaped: u64,
}

impl FlipStats {
    /// Accumulate another campaign's counts.
    pub fn add(&mut self, other: FlipStats) {
        self.ckpt_injected += other.ckpt_injected;
        self.ckpt_detected += other.ckpt_detected;
        self.ckpt_escaped += other.ckpt_escaped;
        self.heap_injected += other.heap_injected;
        self.heap_escaped += other.heap_escaped;
    }

    /// Fraction of flipped images *presented to the digest* that it
    /// caught (1.0 when none were ever refetched).
    pub fn detection_rate(&self) -> f64 {
        let presented = self.ckpt_detected + self.ckpt_escaped;
        if presented == 0 {
            1.0
        } else {
            self.ckpt_detected as f64 / presented as f64
        }
    }

    /// Fraction of heap flips that escaped to a completed result (0.0
    /// when none fired).
    pub fn escape_rate(&self) -> f64 {
        if self.heap_injected == 0 {
            0.0
        } else {
            self.heap_escaped as f64 / self.heap_injected as f64
        }
    }
}

/// Tally one campaign's flips. `completed` is the set of job ids that
/// ended `Completed` — a heap flip into one of those is an escape.
pub fn flip_stats(stream: &Stream, completed: &BTreeSet<u64>) -> FlipStats {
    let mut s = FlipStats::default();
    let mut discards = 0u64;
    let mut restores = 0u64;
    for r in &stream.records {
        match &r.event {
            Event::MemFlip { target, job, .. } => {
                if target == "ckpt-image" {
                    s.ckpt_injected += 1;
                } else {
                    s.heap_injected += 1;
                    if completed.contains(job) {
                        s.heap_escaped += 1;
                    }
                }
            }
            Event::CheckpointDiscarded { .. } => discards += 1,
            Event::CheckpointRestored { .. } => restores += 1,
            _ => {}
        }
    }
    // Every flipped image that is ever fetched produces exactly one
    // discard (caught) or one restore (escaped); a flipped image nobody
    // revisits produces neither. In a campaign that flipped images at
    // all, every stored image for the victim job was flipped, so any
    // restore in such a run is a digest escape.
    if s.ckpt_injected > 0 {
        s.ckpt_detected = discards.min(s.ckpt_injected);
        s.ckpt_escaped = restores;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Collector;
    use obs_analyze::Stream;

    fn flip(job: u64, target: &str) -> Event {
        Event::MemFlip {
            job,
            machine: 3,
            target: target.to_string(),
            bit: 42,
        }
    }

    #[test]
    fn flips_are_tallied_by_target_and_outcome() {
        let mut c = Collector::new();
        c.record(1, "ckptserver", flip(1, "ckpt-image"));
        c.record(2, "ckptserver", flip(1, "ckpt-image"));
        c.record(
            3,
            "startd:m1",
            Event::CheckpointDiscarded {
                job: 1,
                machine: 3,
                reason: "digest mismatch".to_string(),
            },
        );
        c.record(
            4,
            "startd:m1",
            Event::CheckpointRestored {
                job: 1,
                machine: 3,
                saved_us: 100,
            },
        );
        c.record(5, "startd:m1", flip(1, "heap-word"));
        c.record(6, "startd:m1", flip(2, "heap-word"));
        let s = Stream::from_collector(&c).unwrap();
        let completed: BTreeSet<u64> = [1].into();
        let stats = flip_stats(&s, &completed);
        assert_eq!(
            stats,
            FlipStats {
                ckpt_injected: 2,
                ckpt_detected: 1,
                ckpt_escaped: 1,
                heap_injected: 2,
                heap_escaped: 1,
            }
        );
        assert_eq!(stats.detection_rate(), 0.5);
        assert_eq!(stats.escape_rate(), 0.5);
    }

    #[test]
    fn restores_without_image_flips_are_not_escapes() {
        // A heap-flip campaign restores checkpoints legitimately; only
        // runs that flipped stored images treat a restore as a miss.
        let mut c = Collector::new();
        c.record(
            1,
            "startd:m1",
            Event::CheckpointRestored {
                job: 1,
                machine: 3,
                saved_us: 100,
            },
        );
        c.record(2, "startd:m1", flip(1, "heap-word"));
        let s = Stream::from_collector(&c).unwrap();
        let stats = flip_stats(&s, &BTreeSet::new());
        assert_eq!(stats.ckpt_escaped, 0);
        assert_eq!(stats.detection_rate(), 1.0);
    }

    #[test]
    fn rates_degrade_gracefully_with_no_flips() {
        let c = Collector::new();
        let s = Stream::from_collector(&c).unwrap();
        let stats = flip_stats(&s, &BTreeSet::new());
        assert_eq!(stats.detection_rate(), 1.0);
        assert_eq!(stats.escape_rate(), 0.0);
    }

    #[test]
    fn totals_accumulate() {
        let mut total = FlipStats::default();
        total.add(FlipStats {
            ckpt_injected: 3,
            ckpt_detected: 3,
            ckpt_escaped: 0,
            heap_injected: 1,
            heap_escaped: 1,
        });
        total.add(FlipStats {
            ckpt_injected: 1,
            ckpt_detected: 1,
            ckpt_escaped: 0,
            heap_injected: 0,
            heap_escaped: 0,
        });
        assert_eq!(total.ckpt_injected, 4);
        assert_eq!(total.detection_rate(), 1.0);
        assert_eq!(total.escape_rate(), 1.0);
    }
}
