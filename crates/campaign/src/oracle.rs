//! The error-scope oracle: the paper's four principles as machine-checked
//! invariants over an exported event stream.
//!
//! The oracle re-derives every expectation from the theory crate itself
//! ([`errorscope::propagate::java_universe_stack`] names each scope's
//! manager, [`Disposition::for_scope`] names each scope's ruling), so it
//! shares no code path with the schedd's decision logic it is judging: a
//! kernel that routed an error to the wrong layer, ruled the wrong
//! disposition, narrowed a scope, or let a job evaporate is caught here
//! no matter which fault schedule provoked it. The naive-mode negative
//! control in `gen::negative_control_pool` proves the teeth are real.

use condor::prelude::{JobState, RunReport};
use errorscope::propagate::{java_universe_stack, Disposition};
use errorscope::Scope;
use obs::{Event, SpanAction};
use obs_analyze::{journeys, Stream};
use std::fmt;

/// One invariant breach, pinned to a principle and (when the evidence is
/// a single event) a stream timestamp.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which paper principle (1–4) the breach falls under.
    pub principle: u8,
    /// Short invariant name, stable for reports.
    pub invariant: &'static str,
    /// Stream time of the offending event, when there is one.
    pub at_us: Option<u64>,
    /// What happened.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at_us {
            Some(t) => write!(
                f,
                "P{} {} at {:.3}s: {}",
                self.principle,
                self.invariant,
                t as f64 / 1e6,
                self.detail
            ),
            None => write!(f, "P{} {}: {}", self.principle, self.invariant, self.detail),
        }
    }
}

/// The liveness facts the stream alone cannot carry: whether the run
/// drained, and which jobs (if any) never reached a terminal state the
/// user can act on.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Did the simulator go quiescent before the deadline?
    pub quiescent: bool,
    /// Jobs that ended anywhere other than `Completed`/`Unexecutable`.
    pub unfinished: Vec<String>,
}

impl RunSummary {
    /// Summarize a pool run. `Held` and `AwaitingPostmortem` count as
    /// unfinished: the work is lost to the queue even though the schedd
    /// considers them settled.
    pub fn of(report: &RunReport) -> RunSummary {
        let mut unfinished = Vec::new();
        for (id, rec) in &report.jobs {
            match &rec.state {
                JobState::Completed { .. } | JobState::Unexecutable { .. } => {}
                other => unfinished.push(format!("job {id} ended {other:?}")),
            }
        }
        RunSummary {
            quiescent: report.quiescent,
            unfinished,
        }
    }

    /// Summarize a federation run: same P4 contract, sourced from the
    /// flocking schedd's report.
    pub fn of_flock(report: &condor::FlockReport) -> RunSummary {
        RunSummary {
            quiescent: report.quiescent,
            unfinished: report.unfinished(),
        }
    }
}

/// Check every invariant over `stream` and `summary`; an empty result is
/// a verdict, not an absence of opinion.
pub fn check(stream: &Stream, summary: &RunSummary) -> Vec<Violation> {
    let mut out = Vec::new();
    let stack = java_universe_stack();

    for r in &stream.records {
        match &r.event {
            // P1: an explicit error must never be converted back to an
            // implicit one. The kernel's own audit layer also reports
            // principle breaches as first-class events; surface those
            // under their own numbering.
            Event::SpanHop {
                action: SpanAction::Swallowed,
                layer,
                scope,
                ..
            } => out.push(Violation {
                principle: 1,
                invariant: "explicit-stays-explicit",
                at_us: Some(r.at_us),
                detail: format!("{layer} swallowed an explicit {scope}-scope error"),
            }),
            Event::Violation {
                principle, detail, ..
            } => out.push(Violation {
                principle: *principle,
                invariant: "kernel-self-report",
                at_us: Some(r.at_us),
                detail: detail.clone(),
            }),
            // P2: scope changes in transit may only widen — the scope
            // after the hop must strictly contain the scope before it.
            Event::SpanHop {
                action: SpanAction::Widened { from },
                scope,
                layer,
                ..
            } => match (Scope::from_name(from), Scope::from_name(scope)) {
                (Some(a), Some(b)) if a < b => {}
                _ => out.push(Violation {
                    principle: 2,
                    invariant: "widen-only-outward",
                    at_us: Some(r.at_us),
                    detail: format!("{layer} moved a {from}-scope error to {scope}"),
                }),
            },
            // P3, half one: the ruling must be the one §3.4 assigns to
            // the error's scope.
            Event::Disposition {
                job,
                disposition,
                scope,
                ..
            } => match Scope::from_name(scope) {
                Some(s) if Disposition::for_scope(s).to_string() == *disposition => {}
                Some(s) => out.push(Violation {
                    principle: 3,
                    invariant: "disposition-matches-scope",
                    at_us: Some(r.at_us),
                    detail: format!(
                        "job {job}: {scope}-scope error ruled {disposition}, expected {}",
                        Disposition::for_scope(s)
                    ),
                }),
                None => out.push(Violation {
                    principle: 3,
                    invariant: "disposition-matches-scope",
                    at_us: Some(r.at_us),
                    detail: format!("job {job}: disposition on unknown scope {scope:?}"),
                }),
            },
            _ => {}
        }
    }

    // P3, half two: every journey that terminated must have terminated at
    // exactly the Figure 3 layer managing its final scope. Journeys still
    // in flight have no terminal hop to judge; if their job never
    // finished either, P4 below catches it.
    for j in journeys(stream) {
        let Some((layer, scope_name)) = &j.managed_by else {
            continue;
        };
        let expected = Scope::from_name(scope_name).and_then(|s| stack.manager_of(s));
        if expected != Some(layer.as_str()) {
            out.push(Violation {
                principle: 3,
                invariant: "delivered-to-scope-manager",
                at_us: None,
                detail: format!(
                    "span {}: {scope_name}-scope error consumed by {layer}, manager is {}",
                    j.span,
                    expected.unwrap_or("unknown")
                ),
            });
        }
    }

    // P4: no lost work. Every job ends Completed or Unexecutable, and the
    // simulator actually drains.
    if !summary.quiescent {
        out.push(Violation {
            principle: 4,
            invariant: "no-lost-work",
            at_us: None,
            detail: "run hit the deadline without going quiescent".to_string(),
        });
    }
    for u in &summary.unfinished {
        out.push(Violation {
            principle: 4,
            invariant: "no-lost-work",
            at_us: None,
            detail: u.clone(),
        });
    }
    out
}

/// Annotate an oracle failure: diff the violating stream against its
/// same-seed fault-free reference and render the localizer's verdict, so
/// a red campaign arrives with a named culprit.
pub fn postmortem(faulty: &Stream, reference: &Stream) -> String {
    let loc = obs_analyze::localize(faulty, reference);
    obs_analyze::render_report(faulty, &loc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Collector;

    fn stream(events: Vec<Event>) -> Stream {
        let mut c = Collector::new();
        for (i, e) in events.into_iter().enumerate() {
            c.record(i as u64 * 1_000_000, "test", e);
        }
        Stream::from_collector(&c).unwrap()
    }

    fn quiescent() -> RunSummary {
        RunSummary {
            quiescent: true,
            unfinished: Vec::new(),
        }
    }

    fn hop(span: u64, layer: &str, action: SpanAction, scope: &str) -> Event {
        Event::SpanHop {
            span,
            layer: layer.to_string(),
            action,
            scope: scope.to_string(),
        }
    }

    #[test]
    fn a_lawful_pool_journey_passes() {
        // The flocking journey: a network-scope error raised in the
        // shadow, widened to pool scope by the schedd (lawful: network ⊂
        // pool), handled there (the schedd manages pool scope), with the
        // scope-correct escalate-to-human ruling.
        let s = stream(vec![
            hop(9, "shadow", SpanAction::Raised, "network"),
            hop(
                9,
                "schedd",
                SpanAction::Widened {
                    from: "network".to_string(),
                },
                "pool",
            ),
            hop(9, "schedd", SpanAction::Handled, "pool"),
            Event::Disposition {
                job: 1,
                disposition: "escalate-to-human".to_string(),
                scope: "pool".to_string(),
                span: 9,
            },
        ]);
        let v = check(&s, &quiescent());
        assert!(v.is_empty(), "lawful pool journey flagged: {v:?}");
    }

    #[test]
    fn a_swallowed_pool_escape_is_a_p1_violation() {
        // The mutation seed's signature: the schedd converts the remote
        // pool's explicit escape into an implicit error instead of
        // widening it. P1 must fire.
        let s = stream(vec![
            hop(9, "shadow", SpanAction::Raised, "network"),
            hop(9, "schedd", SpanAction::Swallowed, "network"),
        ]);
        let v = check(&s, &quiescent());
        assert!(
            v.iter().any(|v| v.principle == 1),
            "swallowed pool escape must trip P1: {v:?}"
        );
    }

    #[test]
    fn the_buggy_flocking_schedd_is_flagged_by_the_oracle() {
        // End to end: a federation whose schedd carries the deliberate
        // escape-swallowing mutation (test-only flag), driven into a
        // saturation denial. The machine-checked oracle must flag the
        // swallow as a P1 breach; the same world without the mutation
        // must pass clean — the differential that proves the oracle can
        // tell the two kernels apart.
        use condor::prelude::*;
        use desim::{SimDuration, SimTime};
        let run = |buggy: bool| {
            let mut b = FederationBuilder::new(71)
                .pool([])
                .pool([])
                .pool([MachineSpec::healthy("r2", 256)])
                .job(
                    condor::JobSpec::java(
                        1,
                        "ada",
                        gridvm::programs::completes_main(),
                        condor::JavaMode::Scoped,
                    )
                    .with_exec_time(SimDuration::from_secs(30)),
                );
            if buggy {
                b = b.swallow_escapes();
            }
            let report = b.run(SimTime::from_secs(3600));
            let stream = Stream::from_collector(&report.telemetry).unwrap();
            let summary = RunSummary::of_flock(&report);
            check(&stream, &summary)
        };
        let violations = run(true);
        assert!(
            violations
                .iter()
                .any(|v| v.principle == 1 && v.detail.contains("swallow")),
            "mutated schedd must trip P1: {violations:?}"
        );
        let clean = run(false);
        assert!(clean.is_empty(), "correct schedd flagged: {clean:?}");
    }

    #[test]
    fn a_lawful_journey_passes() {
        // A virtual-machine-scope error raised in the jvm, handled by the
        // jvm (its Figure 3 manager), with the scope-correct ruling.
        let s = stream(vec![
            hop(7, "jvm", SpanAction::Raised, "virtual-machine"),
            hop(7, "jvm", SpanAction::Handled, "virtual-machine"),
            Event::Disposition {
                job: 1,
                disposition: "log-and-reschedule".to_string(),
                scope: "virtual-machine".to_string(),
                span: 7,
            },
        ]);
        assert!(check(&s, &quiescent()).is_empty());
    }

    #[test]
    fn swallowed_hops_are_p1() {
        let s = stream(vec![
            hop(7, "jvm", SpanAction::Raised, "virtual-machine"),
            hop(7, "wrapper", SpanAction::Swallowed, "virtual-machine"),
        ]);
        let v = check(&s, &quiescent());
        assert!(v.iter().any(|v| v.principle == 1), "{v:?}");
    }

    #[test]
    fn kernel_self_reports_are_surfaced() {
        let s = stream(vec![Event::Violation {
            principle: 3,
            machine: 2,
            detail: "pool-scope error delivered to user as a result".to_string(),
        }]);
        let v = check(&s, &quiescent());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].principle, 3);
        assert_eq!(v[0].invariant, "kernel-self-report");
    }

    #[test]
    fn narrowing_and_sideways_widening_are_p2() {
        // pool -> virtual-machine narrows; job -> remote-resource is
        // incomparable. Both are illegal moves.
        let s = stream(vec![
            hop(
                1,
                "schedd",
                SpanAction::Widened {
                    from: "pool".to_string(),
                },
                "virtual-machine",
            ),
            hop(
                2,
                "shadow",
                SpanAction::Widened {
                    from: "job".to_string(),
                },
                "remote-resource",
            ),
        ]);
        let v = check(&s, &quiescent());
        assert_eq!(v.iter().filter(|v| v.principle == 2).count(), 2, "{v:?}");
    }

    #[test]
    fn lawful_widening_is_not_flagged() {
        let s = stream(vec![hop(
            1,
            "starter",
            SpanAction::Widened {
                from: "virtual-machine".to_string(),
            },
            "remote-resource",
        )]);
        assert!(check(&s, &quiescent()).is_empty());
    }

    #[test]
    fn wrong_manager_is_p3() {
        // remote-resource is managed by the starter; the shadow consuming
        // it means the error crossed to the submission side unhandled.
        let s = stream(vec![
            hop(9, "starter", SpanAction::Raised, "remote-resource"),
            hop(9, "shadow", SpanAction::Handled, "remote-resource"),
        ]);
        let v = check(&s, &quiescent());
        assert!(
            v.iter()
                .any(|v| v.principle == 3 && v.invariant == "delivered-to-scope-manager"),
            "{v:?}"
        );
    }

    #[test]
    fn wrong_disposition_is_p3() {
        let s = stream(vec![Event::Disposition {
            job: 4,
            disposition: "log-and-reschedule".to_string(),
            scope: "program".to_string(),
            span: obs::NO_SPAN,
        }]);
        let v = check(&s, &quiescent());
        assert!(
            v.iter()
                .any(|v| v.principle == 3 && v.detail.contains("expected return-completed")),
            "{v:?}"
        );
    }

    #[test]
    fn lost_work_is_p4() {
        let empty = stream(vec![]);
        let summary = RunSummary {
            quiescent: false,
            unfinished: vec!["job 2 ended Held".to_string()],
        };
        let v = check(&empty, &summary);
        assert_eq!(v.iter().filter(|v| v.principle == 4).count(), 2, "{v:?}");
    }
}
