//! Randomized determinism properties for the campaign generator, behind
//! the `proptest-props` feature (run with
//! `cargo test -p campaign --features proptest-props`).
//!
//! The sweep harness's byte-identity gate rests on two facts checked
//! here over arbitrary seeds: generation is a pure function of the seed,
//! and `desim::sweep::run_sweep` reassembles per-seed results in seed
//! order regardless of how many worker threads claimed them.

use campaign::generate;
use desim::sweep::run_sweep;
use proptest::prelude::*;

proptest! {
    #[test]
    fn same_seed_describes_identically(seed in any::<u64>()) {
        prop_assert_eq!(generate(seed).describe(), generate(seed).describe());
    }

    #[test]
    fn every_sampled_plan_validates(seed in any::<u64>()) {
        prop_assert!(generate(seed).fault_plan().try_build().is_ok());
    }

    #[test]
    fn sweep_width_never_changes_the_plans(
        seeds in proptest::collection::vec(any::<u64>(), 1..12)
    ) {
        let describe = |_i: usize, s: u64| generate(s).describe();
        let one = run_sweep(&seeds, 1, describe);
        let two = run_sweep(&seeds, 2, describe);
        let eight = run_sweep(&seeds, 8, describe);
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
    }
}
