//! # condor — the Condor kernel on a discrete-event simulator
//!
//! A faithful control-plane reproduction of the system of Thain & Livny's
//! Figures 1 and 2: matchmaker, schedd (with shadows), startd (with
//! starters), the claiming protocol, the Java Universe with its Chirp proxy
//! and wrapper — plus the fault injection and accounting the paper's
//! experiments need.
//!
//! * [`job`], [`machine`] — what users submit and owners contribute.
//! * [`msg`] — the protocol messages (the arrows of Figure 1).
//! * [`matchmaker`], [`schedd`], [`startd`] — the daemons.
//! * [`ckptserver`] — the checkpoint server Standard-universe jobs
//!   migrate through.
//! * [`faults`] — the timed fault plan (crashes, file-system outages,
//!   network partitions/loss/latency/duplication windows).
//! * [`netdriver`] — the actor that applies the plan's network faults to
//!   the simulated fabric at window edges.
//! * [`health`] — adaptive retry (exponential backoff with deterministic
//!   jitter) and per-machine circuit breakers.
//! * [`pool`] — one-stop pool assembly and run reports.
//! * [`flock`] — federated pools: one schedd flocking to remote
//!   matchmakers, with every cross-pool failure an explicit pool-scope
//!   error.
//! * [`metrics`] — the quantities the experiments report.
//! * [`telemetry`] — error-journey span plumbing over the `obs` layer.
//!
//! The Java Universe runs in either of the paper's two disciplines
//! ([`job::JavaMode`]): **naive** (§2.3 — exit codes and generic
//! exceptions; environmental errors reach the user) and **scoped** (§4 —
//! the wrapper's result file routes every error to the manager of its
//! scope).
//!
//! ```
//! use condor::prelude::*;
//! use desim::{SimDuration, SimTime};
//!
//! let report = PoolBuilder::new(42)
//!     .machine(MachineSpec::healthy("node1", 256))
//!     .job(JobSpec::java(1, "ada", gridvm::programs::completes_main(), JavaMode::Scoped)
//!         .with_exec_time(SimDuration::from_secs(30)))
//!     .run(SimTime::from_secs(600));
//! assert_eq!(report.metrics.jobs_completed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ckptserver;
pub mod faults;
pub mod flock;
pub mod health;
pub mod job;
pub mod machine;
pub mod matchmaker;
pub mod metrics;
pub mod msg;
pub mod netdriver;
pub mod pool;
pub mod schedd;
pub mod startd;
pub mod telemetry;

pub use ckptserver::{CkptServer, CkptServerStats};
pub use faults::{
    culprit_link, culprit_machine, culprit_pool, FaultLabel, FaultPlan, NetFault, PlanError,
    TimedNetFault, Window, CULPRIT_CKPT_SERVER, OVERLAP_WARNING,
};
pub use flock::{FederationBuilder, FlockReport};
pub use health::{BreakerPolicy, BreakerState, CircuitBreaker, RetryPolicy};
pub use job::{Attempt, JavaMode, JobId, JobRecord, JobSpec, JobState, Universe};
pub use machine::MachineSpec;
pub use matchmaker::{MatchEngine, Matchmaker, MatchmakerStats};
pub use metrics::{MachineStats, Metrics};
pub use msg::{
    Activation, CkptAttempt, ExecutionReport, FsSnapshot, LeaseInfo, Msg, ResumeInfo, StoredCkpt,
};
pub use netdriver::NetFaultDriver;
pub use pool::{PoolBuilder, RunReport};
pub use schedd::{FlockConfig, FlockTarget, Schedd, ScheddPolicy, UserEvent};
pub use startd::{Startd, StartdPolicy};

/// Convenient glob import.
pub mod prelude {
    pub use crate::faults::{FaultLabel, FaultPlan, Window};
    pub use crate::flock::{FederationBuilder, FlockReport};
    pub use crate::health::{BreakerPolicy, RetryPolicy};
    pub use crate::job::{JavaMode, JobSpec, JobState, Universe};
    pub use crate::machine::MachineSpec;
    pub use crate::msg::LeaseInfo;
    pub use crate::pool::{PoolBuilder, RunReport};
    pub use crate::schedd::{FlockConfig, FlockTarget, ScheddPolicy, UserEvent};
    pub use crate::startd::StartdPolicy;
}
