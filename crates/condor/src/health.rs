//! The schedd's machine-health layer: adaptive retry and circuit breakers.
//!
//! Two pieces, both pure state machines so they test in isolation and stay
//! deterministic inside the simulation:
//!
//! * [`RetryPolicy`] — how long to wait before re-queueing a failed job.
//!   The fixed delay of the original kernel is one point in the space; the
//!   partition-tolerant configuration uses exponential backoff with
//!   deterministic jitter drawn from the world's seeded RNG, so retry
//!   traffic during an outage grows geometrically sparser instead of
//!   hammering a dead link at a constant rate.
//!
//! * [`CircuitBreaker`] — per-machine memory of consecutive
//!   scope-of-the-machine failures. Closed (healthy) machines are matched
//!   normally; after `threshold` consecutive failures the breaker opens and
//!   the machine is withheld from matchmaking for `open_for`; then a single
//!   half-open probe decides whether it closes again or re-opens (with the
//!   hold doubled, capped). This generalizes the chronic-host ("black
//!   hole") avoidance: where the chronic list is a permanent per-job
//!   exclusion, the breaker is a pool-wide, self-healing one.

use desim::{SimDuration, SimRng, SimTime};

/// How long to wait before the n-th consecutive retry of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryPolicy {
    /// Always the same delay (the original kernel's behavior).
    Fixed(SimDuration),
    /// `base * 2^level`, capped at `max`, then scaled by a uniform draw in
    /// `[1, 1+jitter]` from the caller's RNG. With the world's seeded RNG
    /// this is fully deterministic.
    Backoff {
        /// First-retry delay.
        base: SimDuration,
        /// Upper bound on the pre-jitter delay.
        max: SimDuration,
        /// Multiplicative jitter fraction (0 = none).
        jitter: f64,
    },
}

impl RetryPolicy {
    /// The delay before a retry at consecutive-failure `level` (0-based:
    /// level 0 is the first retry).
    pub fn delay(&self, level: u32, rng: &mut SimRng) -> SimDuration {
        match *self {
            RetryPolicy::Fixed(d) => d,
            RetryPolicy::Backoff { base, max, jitter } => {
                let shift = level.min(32);
                let scaled = base
                    .as_micros()
                    .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX));
                let capped = scaled.min(max.as_micros());
                let jittered = if jitter > 0.0 {
                    (capped as f64 * (1.0 + rng.f64() * jitter)) as u64
                } else {
                    capped
                };
                SimDuration::from_micros(jittered.max(1))
            }
        }
    }

    /// The base (un-jittered, level-0) delay — what the fixed-delay kernel
    /// would use everywhere.
    pub fn base_delay(&self) -> SimDuration {
        match *self {
            RetryPolicy::Fixed(d) => d,
            RetryPolicy::Backoff { base, .. } => base,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive scope-of-the-machine failures that open the breaker.
    pub threshold: u32,
    /// How long an open breaker withholds the machine before the half-open
    /// probe.
    pub open_for: SimDuration,
    /// Cap on the doubled hold after repeated re-opens.
    pub max_open: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            threshold: 3,
            open_for: SimDuration::from_secs(60),
            max_open: SimDuration::from_secs(600),
        }
    }
}

/// The breaker's state, in circuit-breaker vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: the machine is withheld until `until`.
    Open {
        /// When the half-open probe becomes available.
        until: SimTime,
    },
    /// One probe is allowed; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// The state's display name, as used in `breaker-state-change` events.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A state transition worth reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The state left behind.
    pub from: BreakerState,
    /// The state entered.
    pub to: BreakerState,
}

/// One machine's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    /// How many times the breaker has re-opened without an intervening
    /// close; doubles the hold.
    reopens: u32,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            reopens: 0,
        }
    }

    /// The current state (after lazily promoting an expired `Open` to
    /// `HalfOpen`).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
            }
        }
        self.state
    }

    /// Should the machine be withheld from matchmaking at `now`? `HalfOpen`
    /// admits the machine (that admission *is* the probe).
    pub fn is_blocked(&mut self, now: SimTime) -> bool {
        matches!(self.state(now), BreakerState::Open { .. })
    }

    fn hold(&self) -> SimDuration {
        let scaled = self
            .policy
            .open_for
            .as_micros()
            .saturating_mul(1u64.checked_shl(self.reopens.min(32)).unwrap_or(u64::MAX));
        SimDuration::from_micros(scaled.min(self.policy.max_open.as_micros()))
    }

    /// Record a scope-of-the-machine failure. Returns the transition if the
    /// breaker changed state.
    pub fn on_failure(&mut self, now: SimTime) -> Option<Transition> {
        let from = self.state(now);
        match from {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.threshold {
                    let to = BreakerState::Open {
                        until: now + self.hold(),
                    };
                    self.state = to;
                    Some(Transition { from, to })
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: re-open, holding longer.
                self.reopens += 1;
                let to = BreakerState::Open {
                    until: now + self.hold(),
                };
                self.state = to;
                Some(Transition { from, to })
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// Record a successful execution (or any positive proof of machine
    /// health). Returns the transition if the breaker closed.
    pub fn on_success(&mut self, now: SimTime) -> Option<Transition> {
        let from = self.state(now);
        self.consecutive_failures = 0;
        match from {
            BreakerState::Closed => None,
            _ => {
                self.reopens = 0;
                self.state = BreakerState::Closed;
                Some(Transition {
                    from,
                    to: BreakerState::Closed,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fixed_policy_is_flat() {
        let mut rng = SimRng::seed_from_u64(1);
        let p = RetryPolicy::Fixed(secs(10));
        assert_eq!(p.delay(0, &mut rng), secs(10));
        assert_eq!(p.delay(7, &mut rng), secs(10));
        assert_eq!(p.base_delay(), secs(10));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut rng = SimRng::seed_from_u64(1);
        let p = RetryPolicy::Backoff {
            base: secs(10),
            max: secs(100),
            jitter: 0.0,
        };
        assert_eq!(p.delay(0, &mut rng), secs(10));
        assert_eq!(p.delay(1, &mut rng), secs(20));
        assert_eq!(p.delay(2, &mut rng), secs(40));
        assert_eq!(p.delay(3, &mut rng), secs(80));
        assert_eq!(p.delay(4, &mut rng), secs(100), "capped");
        assert_eq!(p.delay(63, &mut rng), secs(100), "shift saturates");
        assert_eq!(p.base_delay(), secs(10));
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::Backoff {
            base: secs(10),
            max: secs(300),
            jitter: 0.5,
        };
        let draw = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..20)
                .map(|i| p.delay(i % 4, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed, same jitter");
        for (i, d) in a.iter().enumerate() {
            let level = (i as u32) % 4;
            let lo = secs(10 * (1 << level));
            let hi = lo.mul_f64(1.5) + SimDuration::from_micros(1);
            assert!(*d >= lo && *d <= hi, "delay {d} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 3,
            open_for: secs(60),
            max_open: secs(600),
        });
        assert!(b.on_failure(at(10)).is_none());
        assert!(b.on_failure(at(20)).is_none());
        let tr = b.on_failure(at(30)).expect("third strike opens");
        assert_eq!(tr.from, BreakerState::Closed);
        assert_eq!(tr.to, BreakerState::Open { until: at(90) });
        assert!(b.is_blocked(at(60)));
        // Further failures while open do not retrigger.
        assert!(b.on_failure(at(61)).is_none());
    }

    #[test]
    fn breaker_half_open_probe_success_closes() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 1,
            open_for: secs(60),
            max_open: secs(600),
        });
        b.on_failure(at(0)).expect("opens at once");
        assert!(b.is_blocked(at(59)));
        assert!(!b.is_blocked(at(60)), "hold elapsed: half-open admits");
        assert_eq!(b.state(at(60)), BreakerState::HalfOpen);
        let tr = b.on_success(at(70)).expect("probe success closes");
        assert_eq!(tr.to, BreakerState::Closed);
        assert!(!b.is_blocked(at(70)));
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens_longer() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 1,
            open_for: secs(60),
            max_open: secs(100),
        });
        b.on_failure(at(0));
        assert_eq!(b.state(at(60)), BreakerState::HalfOpen);
        let tr = b.on_failure(at(60)).expect("probe failure reopens");
        // Hold doubled 60 -> 120, capped at 100.
        assert_eq!(tr.to, BreakerState::Open { until: at(160) });
        assert_eq!(b.state(at(160)), BreakerState::HalfOpen);
        // A close resets the doubling.
        b.on_success(at(161));
        b.on_failure(at(200));
        assert_eq!(b.state(at(200)), BreakerState::Open { until: at(260) });
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            threshold: 2,
            open_for: secs(60),
            max_open: secs(600),
        });
        assert!(b.on_failure(at(0)).is_none());
        assert!(b.on_success(at(1)).is_none(), "closed stays closed");
        assert!(b.on_failure(at(2)).is_none(), "count restarted");
        assert!(b.on_failure(at(3)).is_some());
    }
}
