//! The checkpoint server: a pool-level actor that stores checkpoint
//! images for evicted Standard-universe jobs.
//!
//! The paper's Standard universe checkpoints a job on eviction and resumes
//! it elsewhere "with its progress intact". This actor makes that concrete:
//! starters ship serialized [`ckpt::MachineState`] images here over the
//! Chirp protocol (`PUT_CKPT` / `GET_CKPT`), batched into
//! [`Msg::CkptRequest`] frames on the simulated network.
//!
//! The server stores bytes; it never inspects them. Integrity is the
//! *restorer's* concern: a corrupt or mismatched image is detected by the
//! starter at resume time and handled as an explicit checkpoint-scope
//! error (discard and cold-restart), never an implicit crash inside the
//! resumed program. To exercise exactly that path, tests can arm
//! [`CkptServer::corrupt_key_prefix`], which flips a byte in matching
//! images as they are stored.

use crate::msg::Msg;
use chirp::backend::MemFs;
use chirp::cookie::Cookie;
use chirp::server::{ChirpServer, ServerOutcome};
use chirp::wire;
use chirp::Request;
use desim::{Actor, ActorId, Context};

/// Traffic counters, inspectable after a run.
#[derive(Debug, Clone, Default)]
pub struct CkptServerStats {
    /// Checkpoint images stored.
    pub puts: u64,
    /// Checkpoint fetches served (including explicit `NotFound` answers).
    pub gets: u64,
    /// Frames rejected before dispatch (oversized or malformed).
    pub rejected_frames: u64,
    /// Total image bytes accepted by `PUT_CKPT`.
    pub bytes_stored: u64,
}

/// The checkpoint-server daemon.
pub struct CkptServer {
    server: ChirpServer<MemFs>,
    max_frame: u32,
    corrupt_prefixes: Vec<String>,
    flip_prefixes: Vec<(String, u64)>,
    /// Traffic counters.
    pub stats: CkptServerStats,
}

impl CkptServer {
    /// A fresh server trusting `cookie`, with the default frame limit.
    pub fn new(cookie: Cookie) -> CkptServer {
        CkptServer {
            server: ChirpServer::new(MemFs::default(), cookie),
            max_frame: wire::MAX_FRAME,
            corrupt_prefixes: Vec::new(),
            flip_prefixes: Vec::new(),
            stats: CkptServerStats::default(),
        }
    }

    /// Lower (or raise) the per-frame size limit (builder style).
    pub fn with_max_frame(mut self, limit: u32) -> CkptServer {
        self.max_frame = limit;
        self
    }

    /// Fault injection: corrupt every image stored under a key starting
    /// with `prefix` (builder style). Use [`ckpt::key`] prefixes like
    /// `"ckpt/job3/"` to target one job.
    pub fn corrupt_key_prefix(mut self, prefix: &str) -> CkptServer {
        self.corrupt_prefixes.push(prefix.to_string());
        self
    }

    /// Fault injection for the SDC campaign: flip exactly one bit of
    /// every image stored under a key starting with `prefix` (builder
    /// style), and log the flip as an [`obs::Event::MemFlip`] attributed
    /// to `job` — bit rot in storage that the restorer's digest check
    /// must catch. Unlike [`CkptServer::corrupt_key_prefix`], the damage
    /// is on the scrubber's record, so a post-mortem can name it.
    pub fn flip_bit_key_prefix(mut self, prefix: &str, job: u64) -> CkptServer {
        self.flip_prefixes.push((prefix.to_string(), job));
        self
    }

    fn account(&mut self, req: &mut Request, ctx: &mut Context<'_, Msg>) {
        match req {
            Request::PutCkpt { key, data } => {
                self.stats.puts += 1;
                self.stats.bytes_stored += data.len() as u64;
                if self.corrupt_prefixes.iter().any(|p| key.starts_with(p)) {
                    *data = ckpt::corrupt_bytes(data, data.len() / 2);
                }
                if let Some((_, job)) = self
                    .flip_prefixes
                    .iter()
                    .find(|(p, _)| key.starts_with(p.as_str()))
                {
                    // The bit is a deterministic function of the key, so
                    // same-seed runs flip the same bit of the same image.
                    let (flipped, bit) = ckpt::flip_bit(data, ckpt::fnv1a(key.as_bytes()));
                    *data = flipped;
                    ctx.emit(obs::Event::MemFlip {
                        job: *job,
                        machine: ctx.self_id as u64,
                        target: "ckpt-image".to_string(),
                        bit,
                    });
                }
            }
            Request::GetCkpt { .. } => self.stats.gets += 1,
            _ => {}
        }
    }
}

impl Actor<Msg> for CkptServer {
    fn name(&self) -> String {
        "ckptserver".into()
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        let Msg::CkptRequest { frames } = msg else {
            return;
        };
        let mut out = Vec::new();
        let mut rest = &frames[..];
        loop {
            let (payload, consumed) = match wire::deframe_with_limit(rest, self.max_frame) {
                Ok(Some(hit)) => hit,
                Ok(None) => break,
                Err(e) => {
                    self.stats.rejected_frames += 1;
                    ctx.trace_with(|| format!("rejected frame: {e}"));
                    break;
                }
            };
            rest = &rest[consumed..];
            let mut req = match wire::decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    self.stats.rejected_frames += 1;
                    ctx.trace_with(|| format!("undecodable request: {e}"));
                    break;
                }
            };
            self.account(&mut req, ctx);
            match self.server.handle(&req) {
                ServerOutcome::Reply(resp) => {
                    out.extend_from_slice(&wire::frame(&wire::encode_response(&resp)));
                }
                ServerOutcome::Disconnect(reason) => {
                    ctx.trace_with(|| format!("disconnect: {reason:?}"));
                    break;
                }
            }
        }
        ctx.send_net(from, Msg::CkptResponse { frames: out });
    }
}
