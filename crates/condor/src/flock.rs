//! Federated pools: flocking assembly and run reports.
//!
//! [`FederationBuilder`] wires several pools — each with its own
//! matchmaker and startds — plus one flocking schedd into a single
//! [`desim::World`]. Pool 0 is the home pool; when the home pool cannot
//! place a job (saturated, or its matchmaker unreachable), the schedd
//! negotiates with the remaining pools in order, with every remote
//! interaction wrapped in the robustness stack: probes time out, grants
//! can be explicit denials, per-pool circuit breakers withhold failing
//! pools, claims are epoch- and pool-fenced, and every cross-boundary
//! fault becomes an explicit pool-scope error instead of a hang.
//!
//! Actor-id layout is deterministic: matchmaker of pool `p` is actor
//! `p`, the flocking schedd follows the matchmakers, machines follow the
//! schedd grouped by pool in declaration order, and the network-fault
//! driver (when the plan has network faults) registers last.

use crate::faults::FaultPlan;
use crate::job::{JobRecord, JobSpec};
use crate::machine::MachineSpec;
use crate::matchmaker::{Matchmaker, MatchmakerStats};
use crate::metrics::{MachineStats, Metrics};
use crate::msg::Msg;
use crate::schedd::{FlockConfig, FlockTarget, Schedd, ScheddPolicy, UserEvent};
use crate::startd::{Startd, StartdPolicy};
use desim::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a finished federation run yields.
#[derive(Debug)]
pub struct FlockReport {
    /// The flocking schedd's counters.
    pub metrics: Metrics,
    /// The users' view of the queue.
    pub user_log: Vec<UserEvent>,
    /// Final job records, attempt histories included.
    pub jobs: BTreeMap<u32, JobRecord>,
    /// Per-machine statistics, keyed by actor id.
    pub machines: BTreeMap<usize, MachineStats>,
    /// Which pool each machine belongs to (actor id → pool id).
    pub pool_of_machine: BTreeMap<usize, u64>,
    /// Per-pool matchmaker negotiation counters, indexed by pool id.
    pub matchmakers: Vec<MatchmakerStats>,
    /// Per-pool count of flock grants served, indexed by pool id.
    pub flock_grants: Vec<u64>,
    /// The run's typed event stream (pool faults, spans, dispositions…).
    pub telemetry: obs::Collector,
    /// What the simulated fabric did to messages.
    pub net: desim::NetStats,
    /// Virtual time when the run stopped.
    pub finished_at: SimTime,
    /// Did every job reach a terminal state?
    pub quiescent: bool,
    /// Events processed by the simulator.
    pub events: u64,
}

impl FlockReport {
    /// Project the run's counters into a metrics registry: schedd metrics,
    /// per-machine statistics, pooled matchmaker counters, and per-pool
    /// flock-grant counts — deterministic, ready for
    /// [`obs::Registry::snapshot_json`].
    pub fn registry(&self) -> obs::Registry {
        let mut reg = self.metrics.registry();
        for stats in self.machines.values() {
            stats.register_into(&mut reg);
        }
        for mm in &self.matchmakers {
            mm.register_into(&mut reg);
        }
        for (pool, grants) in self.flock_grants.iter().enumerate() {
            let label = pool.to_string();
            reg.counter_add("flock_grants_served", &[("pool", &label)], *grants);
        }
        reg.counter_add("events_dropped", &[], self.telemetry.evicted());
        reg.counter_add(
            "events_recorded",
            &[],
            self.telemetry.len() as u64 + self.telemetry.evicted(),
        );
        reg
    }

    /// Jobs that ended anywhere other than completed/unexecutable, one
    /// line each — the federation's no-lost-work ledger.
    pub fn unfinished(&self) -> Vec<String> {
        use crate::job::JobState;
        self.jobs
            .values()
            .filter(|rec| {
                !matches!(
                    rec.state,
                    JobState::Completed { .. } | JobState::Unexecutable { .. }
                )
            })
            .map(|rec| format!("job {} ended {:?}", rec.spec.id, rec.state))
            .collect()
    }
}

/// Builder for a federation of pools with one flocking schedd.
pub struct FederationBuilder {
    seed: u64,
    pools: Vec<Vec<MachineSpec>>,
    jobs: Vec<JobSpec>,
    home_files: Vec<(String, Vec<u8>)>,
    schedd_policy: ScheddPolicy,
    startd_policy: StartdPolicy,
    plan: FaultPlan,
    trace: bool,
    patience: SimDuration,
    probe_timeout: SimDuration,
    denial_delay: SimDuration,
    pool_breaker: crate::health::BreakerPolicy,
    swallow_escapes: bool,
}

impl FederationBuilder {
    /// A new federation with the given random seed and no pools yet.
    pub fn new(seed: u64) -> FederationBuilder {
        let defaults = FlockConfig::default();
        FederationBuilder {
            seed,
            pools: Vec::new(),
            jobs: Vec::new(),
            home_files: Vec::new(),
            schedd_policy: ScheddPolicy::default(),
            startd_policy: StartdPolicy::default(),
            plan: FaultPlan::none(),
            trace: true,
            patience: defaults.patience,
            probe_timeout: defaults.probe_timeout,
            denial_delay: defaults.denial_delay,
            pool_breaker: defaults.breaker,
            swallow_escapes: false,
        }
    }

    /// Add one pool with the given machines (possibly none: an empty pool
    /// answers flock probes with an explicit saturation denial). The first
    /// pool added is the home pool.
    pub fn pool(mut self, machines: impl IntoIterator<Item = MachineSpec>) -> FederationBuilder {
        self.pools.push(machines.into_iter().collect());
        self
    }

    /// Submit one job to the flocking schedd.
    pub fn job(mut self, spec: JobSpec) -> FederationBuilder {
        self.jobs.push(spec);
        self
    }

    /// Submit several jobs.
    pub fn jobs(mut self, specs: impl IntoIterator<Item = JobSpec>) -> FederationBuilder {
        self.jobs.extend(specs);
        self
    }

    /// Place a file in the submitter's home file system.
    pub fn home_file(mut self, path: &str, data: &[u8]) -> FederationBuilder {
        self.home_files.push((path.to_string(), data.to_vec()));
        self
    }

    /// Set the schedd policy.
    pub fn schedd_policy(mut self, p: ScheddPolicy) -> FederationBuilder {
        self.schedd_policy = p;
        self
    }

    /// Set the startd policy (applies to every machine in every pool).
    pub fn startd_policy(mut self, p: StartdPolicy) -> FederationBuilder {
        self.startd_policy = p;
        self
    }

    /// Install a fault plan (matchmaker crashes, inter-pool partitions,
    /// flock-claim revocations, and everything single-pool plans carry).
    pub fn faults(mut self, plan: FaultPlan) -> FederationBuilder {
        self.plan = plan;
        self
    }

    /// Disable tracing (large sweeps).
    pub fn without_trace(mut self) -> FederationBuilder {
        self.trace = false;
        self
    }

    /// How long a job may starve before the schedd flocks.
    pub fn patience(mut self, d: SimDuration) -> FederationBuilder {
        self.patience = d;
        self
    }

    /// How long a flock probe waits before declaring the remote
    /// matchmaker unreachable.
    pub fn probe_timeout(mut self, d: SimDuration) -> FederationBuilder {
        self.probe_timeout = d;
        self
    }

    /// How long a denial or failure parks a remote pool.
    pub fn denial_delay(mut self, d: SimDuration) -> FederationBuilder {
        self.denial_delay = d;
        self
    }

    /// The per-remote-pool circuit breaker policy.
    pub fn pool_breaker(mut self, p: crate::health::BreakerPolicy) -> FederationBuilder {
        self.pool_breaker = p;
        self
    }

    /// **Test-only.** Build the deliberately buggy schedd that swallows
    /// remote-pool escapes instead of widening them — the mutation seed
    /// the campaign oracle must flag as a Principle-1 breach.
    pub fn swallow_escapes(mut self) -> FederationBuilder {
        self.swallow_escapes = true;
        self
    }

    /// The matchmaker actor id of `pool` (the layout puts matchmaker `p`
    /// at actor id `p`).
    pub fn matchmaker_id(pool: u64) -> usize {
        pool as usize
    }

    /// The flocking schedd's actor id: right after the matchmakers.
    pub fn schedd_id(&self) -> usize {
        self.pools.len()
    }

    /// The machine actor ids of `pool`, in declaration order.
    pub fn machine_ids(&self, pool: u64) -> Vec<usize> {
        let mut next = self.pools.len() + 1;
        for (p, machines) in self.pools.iter().enumerate() {
            if p as u64 == pool {
                return (next..next + machines.len()).collect();
            }
            next += machines.len();
        }
        Vec::new()
    }

    /// Build the world without running it. Returns the world, the
    /// flocking schedd's actor id, and the machine→pool map.
    pub fn build(self) -> (World<Msg>, usize, BTreeMap<usize, u64>) {
        assert!(
            !self.pools.is_empty(),
            "a federation needs at least one pool"
        );
        let mut world: World<Msg> = World::new(self.seed);
        if !self.trace {
            world = world.without_trace();
        }
        let plan = self.plan.build();
        let n_pools = self.pools.len();

        for p in 0..n_pools {
            let id = world.add_actor(Box::new(
                Matchmaker::new()
                    .with_pool(p as u64)
                    .with_faults(Arc::clone(&plan)),
            ));
            assert_eq!(id, p, "matchmaker {p} must land at actor id {p}");
        }

        let cfg = FlockConfig {
            home_pool: 0,
            pools: (1..n_pools)
                .map(|p| FlockTarget {
                    pool: p as u64,
                    matchmaker: p,
                })
                .collect(),
            patience: self.patience,
            probe_timeout: self.probe_timeout,
            denial_delay: self.denial_delay,
            breaker: self.pool_breaker,
            swallow_escapes: self.swallow_escapes,
        };
        let mut schedd = Schedd::new(
            Self::matchmaker_id(0),
            self.schedd_policy,
            Arc::clone(&plan),
        )
        .with_flock(cfg);
        for (path, data) in &self.home_files {
            schedd.put_home_file(path, data);
        }
        for job in self.jobs {
            schedd.submit(job);
        }
        let schedd_id = world.add_actor(Box::new(schedd));
        assert_eq!(schedd_id, n_pools, "schedd must follow the matchmakers");

        let mut pool_of_machine = BTreeMap::new();
        for (p, machines) in self.pools.into_iter().enumerate() {
            for spec in machines {
                let startd = Startd::new(
                    spec,
                    self.startd_policy,
                    Self::matchmaker_id(p as u64),
                    Arc::clone(&plan),
                )
                .with_pool(p as u64);
                let id = world.add_actor(Box::new(startd));
                pool_of_machine.insert(id, p as u64);
            }
        }
        // The network-fault driver registers last: nothing addresses it,
        // so its id never perturbs the ids the fault plan aims at.
        if !plan.net_faults().is_empty() {
            world.add_actor(Box::new(crate::netdriver::NetFaultDriver::new(Arc::clone(
                &plan,
            ))));
        }
        (world, schedd_id, pool_of_machine)
    }

    /// Build the world and run until every job is terminal or `deadline`
    /// passes.
    pub fn run(self, deadline: SimTime) -> FlockReport {
        let n_pools = self.pools.len();
        let (mut world, schedd_id, pool_of_machine) = self.build();
        let all_done =
            |world: &World<Msg>| world.get::<Schedd>(schedd_id).expect("schedd").all_done();
        let slice = SimDuration::from_secs(30);
        let mut now = SimTime::ZERO;
        loop {
            now = SimTime::from_micros((now + slice).as_micros().min(deadline.as_micros()));
            world.run_until(now);
            if all_done(&world) || now >= deadline {
                break;
            }
        }
        let quiescent = all_done(&world);
        let schedd = world.get::<Schedd>(schedd_id).unwrap();
        let mut machines = BTreeMap::new();
        for &id in pool_of_machine.keys() {
            let s = world.get::<Startd>(id).expect("startd present");
            machines.insert(id, s.stats.clone());
        }
        let mut matchmakers = Vec::new();
        let mut flock_grants = Vec::new();
        for p in 0..n_pools {
            let mm = world
                .get::<Matchmaker>(Self::matchmaker_id(p as u64))
                .expect("matchmaker present");
            matchmakers.push(mm.stats().clone());
            flock_grants.push(mm.flock_grants);
        }
        FlockReport {
            metrics: schedd.metrics.clone(),
            user_log: schedd.user_log.clone(),
            jobs: schedd.jobs.clone(),
            machines,
            pool_of_machine,
            matchmakers,
            flock_grants,
            telemetry: world.telemetry().clone(),
            net: world.net().stats().clone(),
            finished_at: world.now(),
            quiescent,
            events: world.events_processed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Window;
    use crate::job::JavaMode;
    use gridvm::programs;

    fn job(id: u32) -> JobSpec {
        JobSpec::java(id, "ada", programs::completes_main(), JavaMode::Scoped)
            .with_exec_time(SimDuration::from_secs(30))
    }

    fn deadline() -> SimTime {
        SimTime::from_secs(3600)
    }

    #[test]
    fn starved_job_flocks_to_a_remote_pool_and_completes() {
        // Home pool has no machines at all: the job starves past the
        // patience window, the schedd probes pool 1, and the job runs
        // remotely — a flocked claim end to end.
        let report = FederationBuilder::new(41)
            .pool([])
            .pool([MachineSpec::healthy("r1", 256)])
            .job(job(1))
            .run(deadline());
        assert!(report.quiescent, "{:?}", report.jobs);
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.metrics.flock_escalations >= 1);
        assert_eq!(report.flock_grants[1], 1, "pool 1 served the probe");
        // The one attempt ran on pool 1's machine.
        let rec = &report.jobs[&1];
        let machine = rec.attempts.last().unwrap().machine;
        assert_eq!(report.pool_of_machine[&machine], 1);
    }

    #[test]
    fn saturated_pool_is_an_explicit_denial_not_silence() {
        // Pool 1 is empty (saturated); pool 2 has the machine. The denial
        // from pool 1 must surface as an explicit pool-scope FlockFault,
        // and the job must still complete via pool 2.
        let report = FederationBuilder::new(42)
            .pool([])
            .pool([])
            .pool([MachineSpec::healthy("r2", 256)])
            .job(job(1))
            .run(deadline());
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.metrics.flock_faults >= 1, "{:?}", report.metrics);
        let saturated: Vec<u64> = report
            .telemetry
            .iter()
            .filter_map(|r| match &r.event {
                obs::Event::FlockFault { pool, kind, .. } if kind == "saturated" => Some(*pool),
                _ => None,
            })
            .collect();
        assert_eq!(saturated, vec![1], "pool 1 denied; only pool 1");
    }

    #[test]
    fn crashed_remote_matchmaker_times_out_and_the_next_pool_serves() {
        // Pool 1's matchmaker is down the whole run: the probe times out
        // (unreachable — never a hang), its breaker records the failure,
        // and pool 2 takes the job.
        let report = FederationBuilder::new(43)
            .pool([])
            .pool([MachineSpec::healthy("r1", 256)])
            .pool([MachineSpec::healthy("r2", 256)])
            .faults(FaultPlan::none().crash(
                FederationBuilder::matchmaker_id(1),
                Window::from(SimTime::ZERO),
            ))
            .job(job(1))
            .run(deadline());
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        let unreachable = report
            .telemetry
            .iter()
            .filter(|r| {
                matches!(&r.event,
                    obs::Event::FlockFault { pool, kind, .. } if *pool == 1 && kind == "unreachable")
            })
            .count();
        assert!(
            unreachable >= 1,
            "probe of the dead matchmaker must time out"
        );
        let rec = &report.jobs[&1];
        let machine = rec.attempts.last().unwrap().machine;
        assert_eq!(report.pool_of_machine[&machine], 2);
    }

    #[test]
    fn same_seed_same_federation_report() {
        let run = || {
            FederationBuilder::new(44)
                .pool([MachineSpec::healthy("h1", 128)])
                .pool([MachineSpec::healthy("r1", 256)])
                .jobs((1..=4).map(job))
                .run(deadline())
        };
        let a = run();
        let b = run();
        assert_eq!(a.events, b.events);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.metrics.jobs_completed, b.metrics.jobs_completed);
        assert_eq!(a.metrics.flock_escalations, b.metrics.flock_escalations);
        assert_eq!(
            a.registry().snapshot_json(),
            b.registry().snapshot_json(),
            "registry snapshots must be byte-identical"
        );
    }
}
