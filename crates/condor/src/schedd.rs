//! The schedd and its shadows.
//!
//! "A user submits jobs to a schedd, which keeps the job state in
//! persistent storage, and works to find places where the job may be
//! executed … The schedd starts a shadow, which is responsible for
//! providing the details of the job to be run" (§2.1).
//!
//! The schedd is "the last line of defense" (§4): an error of program scope
//! completes the job; an error of job scope marks it unexecutable; anything
//! in between is logged and the job tries another site. In the **naive**
//! discipline, every exit is delivered to the user as a result — and the
//! *user* pays for the missing scope information with postmortem time.

use crate::faults::FaultPlan;
use crate::health::{BreakerPolicy, BreakerState, CircuitBreaker, RetryPolicy};
use crate::job::{Attempt, JobId, JobRecord, JobSpec, JobState};
use crate::metrics::Metrics;
use crate::msg::{
    Activation, CkptAttempt, ExecutionReport, FsSnapshot, LeaseInfo, Msg, ResumeInfo,
};
use desim::prelude::*;
use errorscope::propagate::Disposition;
use errorscope::resultfile::{Outcome, ResultFile};
use errorscope::Scope;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How often the schedd advertises its idle jobs.
pub const ADVERTISE_PERIOD: SimDuration = SimDuration::from_secs(5);

/// The schedd's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScheddPolicy {
    /// How long to wait before re-advertising after an environmental
    /// failure. The default backs off exponentially with deterministic
    /// jitter; [`RetryPolicy::Fixed`] restores the original constant-delay
    /// kernel.
    pub retry: RetryPolicy,
    /// Delay before retrying after a *local-resource* failure — the home
    /// file system needs time to come back; trying another execution site
    /// would not help.
    pub local_resource_delay: SimDuration,
    /// How long the human takes to postmortem a wrongly-returned job
    /// (naive mode). "A human is the slowest part of any computing system."
    pub postmortem_delay: SimDuration,
    /// Attempts before the job is parked.
    pub max_attempts: u32,
    /// §5's complementary approach: "enhance the schedd with logic to
    /// detect and avoid hosts with chronic failures."
    pub avoid_chronic_hosts: bool,
    /// Environmental failures on one host before it is avoided.
    pub avoid_threshold: u32,
    /// Claim handshake timeout.
    pub claim_timeout: SimDuration,
    /// Extra slack on top of the job's own execution time before the
    /// shadow declares the attempt vanished.
    pub report_slack: SimDuration,
    /// Claim leasing: when set, activations carry these lease terms, the
    /// startd heartbeats, and a missed lease converts a silent partition
    /// into an explicit scope-of-the-claim error on both sides. `None`
    /// falls back to the report timeout alone.
    pub lease: Option<LeaseInfo>,
    /// Per-machine circuit breakers over scope-of-the-machine failures —
    /// the self-healing generalisation of chronic-host avoidance. `None`
    /// disables them.
    pub breaker: Option<BreakerPolicy>,
}

impl Default for ScheddPolicy {
    fn default() -> Self {
        ScheddPolicy {
            retry: RetryPolicy::Backoff {
                base: SimDuration::from_secs(10),
                max: SimDuration::from_secs(60),
                jitter: 0.1,
            },
            local_resource_delay: SimDuration::from_secs(120),
            postmortem_delay: SimDuration::from_secs(600),
            max_attempts: 20,
            avoid_chronic_hosts: false,
            avoid_threshold: 2,
            claim_timeout: SimDuration::from_secs(20),
            report_slack: SimDuration::from_secs(120),
            lease: None,
            breaker: None,
        }
    }
}

/// One remote pool a flocking schedd may negotiate with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlockTarget {
    /// The remote pool's id.
    pub pool: u64,
    /// The remote pool's matchmaker (actor id).
    pub matchmaker: usize,
}

/// Flocking (§6): when the home pool cannot place a job, the schedd
/// negotiates with remote pools in the configured order. Every remote
/// interaction is wrapped in the robustness stack — a saturated pool, an
/// unreachable matchmaker, or a partition mid-flock becomes an explicit
/// pool-scope error, never a hang, and the job falls back to the home
/// queue still schedulable.
#[derive(Debug, Clone)]
pub struct FlockConfig {
    /// The home pool's id; machines without a recorded pool are assumed
    /// to belong here.
    pub home_pool: u64,
    /// Remote pools, tried in preference order.
    pub pools: Vec<FlockTarget>,
    /// How long a job may sit idle before the schedd escalates to a
    /// remote pool.
    pub patience: SimDuration,
    /// How long to wait for a [`Msg::FlockGrant`] before declaring the
    /// remote matchmaker unreachable.
    pub probe_timeout: SimDuration,
    /// How long a denial (or failure) parks a pool before re-probing.
    pub denial_delay: SimDuration,
    /// Per-remote-pool circuit breaker policy.
    pub breaker: BreakerPolicy,
    /// **Test-only mutation seed.** A schedd built with this flag is
    /// deliberately buggy: it swallows remote-pool escapes instead of
    /// widening them to pool scope, exactly the Principle-1 breach the
    /// campaign oracle must flag. Never set outside tests.
    pub swallow_escapes: bool,
}

impl Default for FlockConfig {
    fn default() -> Self {
        FlockConfig {
            home_pool: 0,
            pools: Vec::new(),
            patience: SimDuration::from_secs(30),
            probe_timeout: SimDuration::from_secs(10),
            denial_delay: SimDuration::from_secs(30),
            breaker: BreakerPolicy::default(),
            swallow_escapes: false,
        }
    }
}

/// Where the schedd stands with one remote pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlockState {
    /// Never probed (or demoted after a failure and due for a re-probe).
    Unprobed,
    /// A [`Msg::FlockRequest`] is in flight; its timeout is armed.
    Probing,
    /// The pool accepted flocked ads; job ads flow there each tick.
    Granted,
    /// Denied or failed at `at`; re-probe after the denial delay.
    Denied {
        /// When the denial/failure was recorded.
        at: SimTime,
    },
}

/// One line of the user's view of the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserEvent {
    /// When.
    pub at: SimTime,
    /// Which job.
    pub job: JobId,
    /// What the user was told.
    pub text: String,
}

/// The schedd actor.
pub struct Schedd {
    matchmaker: ActorId,
    policy: ScheddPolicy,
    plan: Arc<FaultPlan>,
    /// The job queue ("persistent storage").
    pub jobs: BTreeMap<JobId, JobRecord>,
    /// The submitter's home file system contents.
    pub home_fs: BTreeMap<String, Vec<u8>>,
    /// Hosts with chronic environmental failures (machine → count).
    pub chronic: BTreeMap<usize, u32>,
    /// Per-machine circuit breakers (populated only when the policy
    /// enables them).
    pub breakers: BTreeMap<usize, CircuitBreaker>,
    /// Accounting.
    pub metrics: Metrics,
    /// What the user saw, in order.
    pub user_log: Vec<UserEvent>,
    /// Flocking configuration; `None` keeps the schedd home-pool only.
    flock: Option<FlockConfig>,
    /// Per-remote-pool circuit breakers (pool id → breaker).
    pub pool_breakers: BTreeMap<u64, CircuitBreaker>,
    /// Where the schedd stands with each remote pool.
    flock_states: BTreeMap<u64, FlockState>,
    /// The job whose starvation drove the outstanding probe of each pool.
    flock_probe_job: BTreeMap<u64, JobId>,
    /// When each currently-idle job first went idle.
    first_idle: BTreeMap<JobId, SimTime>,
    /// Which pool each matched machine belongs to, learned from
    /// [`Msg::MatchNotify`]. Claims and activations are stamped with it.
    pub machine_pool: BTreeMap<usize, u64>,
    self_id: usize,
}

impl Schedd {
    /// A schedd with an empty queue.
    pub fn new(matchmaker: ActorId, policy: ScheddPolicy, plan: Arc<FaultPlan>) -> Schedd {
        Schedd {
            matchmaker,
            policy,
            plan,
            jobs: BTreeMap::new(),
            home_fs: BTreeMap::new(),
            chronic: BTreeMap::new(),
            breakers: BTreeMap::new(),
            metrics: Metrics::default(),
            user_log: Vec::new(),
            flock: None,
            pool_breakers: BTreeMap::new(),
            flock_states: BTreeMap::new(),
            flock_probe_job: BTreeMap::new(),
            first_idle: BTreeMap::new(),
            machine_pool: BTreeMap::new(),
            self_id: usize::MAX,
        }
    }

    /// Enable flocking to the remote pools named in `cfg`.
    pub fn with_flock(mut self, cfg: FlockConfig) -> Schedd {
        self.flock = Some(cfg);
        self
    }

    /// Submit a job before the world starts.
    pub fn submit(&mut self, spec: JobSpec) {
        let id = spec.id;
        self.jobs.insert(id, JobRecord::new(spec, SimTime::ZERO));
    }

    /// Place a file in the submitter's home file system.
    pub fn put_home_file(&mut self, path: &str, data: &[u8]) {
        self.home_fs.insert(path.to_string(), data.to_vec());
    }

    /// Are all jobs in terminal states?
    pub fn all_done(&self) -> bool {
        self.jobs.values().all(|j| j.state.is_terminal())
    }

    fn user_sees(&mut self, at: SimTime, job: JobId, text: impl Into<String>) {
        self.user_log.push(UserEvent {
            at,
            job,
            text: text.into(),
        });
    }

    fn is_avoided(&self, machine: usize) -> bool {
        self.policy.avoid_chronic_hosts
            && self
                .chronic
                .get(&machine)
                .is_some_and(|c| *c >= self.policy.avoid_threshold)
    }

    /// The job's ad with `TARGET.MachineId =!= id` clauses appended for
    /// every avoided host — how the schedd "avoids hosts with chronic
    /// failures" (§5) without the matchmaker needing to know why.
    fn ad_excluding(spec: &JobSpec, avoided: &[usize]) -> classads::ClassAd {
        use classads::ast::{BinOp, Expr};
        let mut ad = spec.ad();
        if avoided.is_empty() {
            return ad;
        }
        let mut req = ad
            .get("Requirements")
            .cloned()
            .unwrap_or(Expr::boolean(true));
        for id in avoided {
            req = req.and(Expr::target("MachineId").bin(BinOp::MetaNe, Expr::int(*id as i64)));
        }
        ad.insert_expr("Requirements", req);
        ad
    }

    fn snapshot_for(&self, spec: &JobSpec) -> FsSnapshot {
        let mut snap = FsSnapshot::default();
        for input in &spec.inputs {
            match self.home_fs.get(input) {
                Some(data) => {
                    snap.files.insert(input.clone(), data.clone());
                }
                None => snap.missing.push(input.clone()),
            }
        }
        snap
    }

    /// Machines whose breaker is open right now (withheld from matching).
    fn breaker_blocked(&mut self, now: SimTime) -> Vec<usize> {
        self.breakers
            .iter_mut()
            .filter_map(|(m, b)| b.is_blocked(now).then_some(*m))
            .collect()
    }

    /// Feed a scope-of-the-machine failure to `machine`'s breaker.
    fn machine_failure(&mut self, machine: usize, ctx: &mut Context<'_, Msg>) {
        let Some(policy) = self.policy.breaker else {
            return;
        };
        let breaker = self
            .breakers
            .entry(machine)
            .or_insert_with(|| CircuitBreaker::new(policy));
        if let Some(tr) = breaker.on_failure(ctx.now) {
            if matches!(tr.to, BreakerState::Open { .. }) {
                self.metrics.breaker_opens += 1;
            }
            ctx.emit(obs::Event::BreakerStateChange {
                machine: machine as u64,
                from: tr.from.name().to_string(),
                to: tr.to.name().to_string(),
            });
            ctx.trace_with(|| {
                format!(
                    "breaker for machine {machine}: {} -> {}",
                    tr.from.name(),
                    tr.to.name()
                )
            });
        }
    }

    /// Feed a proof of machine health to `machine`'s breaker.
    fn machine_success(&mut self, machine: usize, ctx: &mut Context<'_, Msg>) {
        if self.policy.breaker.is_none() {
            return;
        }
        if let Some(breaker) = self.breakers.get_mut(&machine) {
            if let Some(tr) = breaker.on_success(ctx.now) {
                ctx.emit(obs::Event::BreakerStateChange {
                    machine: machine as u64,
                    from: tr.from.name().to_string(),
                    to: tr.to.name().to_string(),
                });
                ctx.trace_with(|| format!("breaker for machine {machine}: closed"));
            }
        }
    }

    /// Count and log a message fenced for carrying a stale claim epoch.
    fn drop_stale(
        &mut self,
        job: JobId,
        kind: &str,
        got: u64,
        current: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        self.metrics.stale_epochs_dropped += 1;
        ctx.emit(obs::Event::StaleEpochDropped {
            job: u64::from(job),
            kind: kind.to_string(),
            got,
            current,
        });
        ctx.trace_with(|| {
            format!("fenced stale {kind} for job {job}: epoch {got}, current {current}")
        });
    }

    /// The retry delay for `job`'s *next* environmental retry, advancing
    /// its consecutive-failure level.
    fn backoff_delay(&mut self, job: JobId, ctx: &mut Context<'_, Msg>) -> SimDuration {
        let retry = self.policy.retry;
        let rec = self.jobs.get_mut(&job).expect("job exists");
        let delay = retry.delay(rec.backoff_level, ctx.rng);
        rec.backoff_level += 1;
        delay
    }
}

impl Actor<Msg> for Schedd {
    fn name(&self) -> String {
        "schedd".into()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.self_id = ctx.self_id;
        ctx.send_self_after(ADVERTISE_PERIOD, Msg::AdvertiseTick);
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        self.self_id = ctx.self_id;
        match msg {
            Msg::AdvertiseTick => {
                let mut avoided: Vec<usize> = if self.policy.avoid_chronic_hosts {
                    self.chronic
                        .iter()
                        .filter(|(_, c)| **c >= self.policy.avoid_threshold)
                        .map(|(m, _)| *m)
                        .collect()
                } else {
                    Vec::new()
                };
                // Breaker-open machines are withheld the same way; a
                // half-open breaker admits the machine (the probe).
                for m in self.breaker_blocked(ctx.now) {
                    if !avoided.contains(&m) {
                        avoided.push(m);
                    }
                }
                avoided.sort_unstable();
                let ads: Vec<(JobId, classads::ClassAd)> = self
                    .jobs
                    .values()
                    .filter(|j| matches!(j.state, JobState::Idle))
                    .map(|j| (j.spec.id, Self::ad_excluding(&j.spec, &avoided)))
                    .collect();
                self.note_idle_jobs(ctx.now);
                let remotes = self.granted_matchmakers(ctx.now);
                for (job, ad) in ads {
                    for &mm in &remotes {
                        ctx.send_net(
                            mm,
                            Msg::JobAd {
                                job,
                                ad: Box::new(ad.clone()),
                            },
                        );
                    }
                    ctx.send_net(
                        self.matchmaker,
                        Msg::JobAd {
                            job,
                            ad: Box::new(ad),
                        },
                    );
                }
                self.maybe_flock(ctx);
                ctx.send_self_after(ADVERTISE_PERIOD, Msg::AdvertiseTick);
            }

            Msg::MatchNotify { job, machine, pool } => {
                self.machine_pool.insert(machine, pool);
                let avoided = self.is_avoided(machine);
                let breaker_open = self
                    .breakers
                    .get_mut(&machine)
                    .is_some_and(|b| b.is_blocked(ctx.now));
                let Some(rec) = self.jobs.get_mut(&job) else {
                    return;
                };
                if !matches!(rec.state, JobState::Idle) {
                    return;
                }
                if avoided {
                    ctx.trace_with(|| format!("avoiding chronic host {machine} for job {job}"));
                    return; // stays idle; re-advertised next tick
                }
                if breaker_open {
                    ctx.trace_with(|| {
                        format!("breaker open for machine {machine}; job {job} stays idle")
                    });
                    return;
                }
                // Opening a claim starts a new epoch: every message about
                // this claim carries it, and older epochs are fenced.
                rec.epoch += 1;
                let epoch = rec.epoch;
                rec.state = JobState::Claiming { machine };
                let ad = rec.spec.ad();
                ctx.trace_with(|| format!("claiming machine {machine} for job {job}"));
                ctx.emit(obs::Event::Claim {
                    job: u64::from(job),
                    machine: machine as u64,
                    outcome: obs::ClaimOutcome::Requested,
                });
                ctx.send_net(
                    machine,
                    Msg::ClaimRequest {
                        job,
                        ad: Box::new(ad),
                        epoch,
                        pool,
                    },
                );
                ctx.send_self_after(
                    self.policy.claim_timeout,
                    Msg::ClaimTimeout { job, machine },
                );
            }

            Msg::ClaimAccept { job, epoch } => {
                let Some(rec) = self.jobs.get(&job) else {
                    return;
                };
                if epoch != rec.epoch {
                    let current = rec.epoch;
                    self.drop_stale(job, "claim-accept", epoch, current, ctx);
                    return;
                }
                let JobState::Claiming { machine } = rec.state else {
                    return;
                };
                if machine != from {
                    return;
                }
                // The shadow stages the job. If the home file system is
                // down right now, staging itself fails: a local-resource
                // error the shadow reports to the schedd ("the job cannot
                // run right now").
                if self.plan.fs_fault_at(ctx.self_id, ctx.now).is_some()
                    && !self.jobs[&job].spec.inputs.is_empty()
                {
                    ctx.trace_with(|| {
                        format!("staging failed for job {job}: home file system offline")
                    });
                    ctx.send_net(machine, Msg::ReleaseClaim { job });
                    self.metrics.reschedules += 1;
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.epoch += 1; // claim closed without activating
                    rec.state = JobState::Waiting;
                    ctx.send_self_after(self.policy.local_resource_delay, Msg::RetryJob { job });
                    return;
                }
                let rec = self.jobs.get_mut(&job).unwrap();
                let spec = rec.spec.clone();
                // Standard-universe jobs resume from their checkpoint: only
                // the remaining execution time is needed.
                let remaining = if matches!(spec.universe, crate::job::Universe::Standard) {
                    let left = spec
                        .exec_time
                        .as_micros()
                        .saturating_sub(rec.progress.as_micros());
                    SimDuration::from_micros(left.max(1))
                } else {
                    spec.exec_time
                };
                rec.state = JobState::Running { machine };
                let attempt_no = rec.attempts.len();
                // A stored checkpoint from an earlier attempt: ask the
                // starter to resume from it.
                let resume = rec.ckpt_key.clone().map(|key| ResumeInfo {
                    key,
                    banked: rec.progress,
                });
                let resuming = resume.is_some();
                let epoch = rec.epoch;
                let snapshot = self.snapshot_for(&spec);
                let pool = self.machine_pool.get(&machine).copied().unwrap_or(0);
                ctx.trace_with(|| format!("shadow activating job {job} on machine {machine}"));
                ctx.emit(obs::Event::Dispatch {
                    job: u64::from(job),
                    machine: machine as u64,
                });
                ctx.send_net(
                    machine,
                    Msg::ActivateClaim(Box::new(Activation {
                        job,
                        image: spec.image.clone(),
                        universe: spec.universe,
                        snapshot,
                        exec_time: remaining,
                        does_remote_io: spec.does_remote_io,
                        schedd: ctx.self_id,
                        attempt: attempt_no,
                        resume,
                        epoch,
                        lease: self.policy.lease,
                        pool,
                    })),
                );
                // The lease: the shadow expects heartbeats from the
                // activation on; silence past the timeout expires the
                // claim long before the report timeout would.
                if let Some(lease) = self.policy.lease {
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.last_heartbeat = ctx.now;
                    ctx.send_self_after(lease.timeout, Msg::LeaseCheck { job, epoch });
                }
                // A resumed attempt may discard its checkpoint and cold-
                // restart, owing the full execution time again — give the
                // shadow timeout room for that before declaring the
                // attempt vanished.
                let budget = if resuming { spec.exec_time } else { remaining };
                let deadline = budget + budget + self.policy.report_slack;
                ctx.send_self_after(
                    deadline,
                    Msg::ReportTimeout {
                        job,
                        machine,
                        attempt: attempt_no,
                    },
                );
            }

            Msg::ClaimReject { job, reason, epoch } => {
                let Some(rec) = self.jobs.get(&job) else {
                    return;
                };
                if epoch != rec.epoch {
                    let current = rec.epoch;
                    self.drop_stale(job, "claim-reject", epoch, current, ctx);
                    return;
                }
                let JobState::Claiming { machine } = rec.state else {
                    return;
                };
                if machine != from {
                    return;
                }
                ctx.trace_with(|| format!("claim rejected for job {job}: {reason}"));
                self.metrics.failed_claims += 1;
                let rec = self.jobs.get_mut(&job).unwrap();
                rec.epoch += 1; // claim closed
                rec.state = JobState::Idle;
            }

            Msg::ClaimTimeout { job, machine } => {
                let Some(rec) = self.jobs.get_mut(&job) else {
                    return;
                };
                if rec.state == (JobState::Claiming { machine }) {
                    ctx.trace_with(|| format!("claim timeout for job {job} on machine {machine}"));
                    ctx.emit(obs::Event::Claim {
                        job: u64::from(job),
                        machine: machine as u64,
                        outcome: obs::ClaimOutcome::TimedOut,
                    });
                    self.metrics.failed_claims += 1;
                    rec.epoch += 1; // a late accept is now stale
                    rec.state = JobState::Waiting;
                    // A silent claim is a machine-scope signal: feed the
                    // breaker and back off instead of hammering the link.
                    self.machine_failure(machine, ctx);
                    // On a flocked machine the silence sits on an inter-pool
                    // link: surface it at pool scope too.
                    self.note_remote_fault(
                        job,
                        machine,
                        "claim",
                        "FlockClaimSilent",
                        format!("flocked claim for job {job} timed out on machine {machine}"),
                        ctx,
                    );
                    let delay = self.backoff_delay(job, ctx);
                    ctx.send_self_after(delay, Msg::RetryJob { job });
                }
            }

            Msg::Heartbeat { job, epoch } => {
                let Some(rec) = self.jobs.get(&job) else {
                    return;
                };
                if epoch != rec.epoch {
                    let current = rec.epoch;
                    self.drop_stale(job, "heartbeat", epoch, current, ctx);
                    return;
                }
                let JobState::Running { machine } = rec.state else {
                    return;
                };
                if machine != from {
                    return;
                }
                let rec = self.jobs.get_mut(&job).unwrap();
                rec.last_heartbeat = ctx.now;
                ctx.send_net(from, Msg::HeartbeatAck { job, epoch });
            }

            Msg::LeaseCheck { job, epoch } => {
                self.check_lease(job, epoch, ctx);
            }

            Msg::StarterReport {
                job,
                report,
                cpu,
                started,
                ckpt,
                epoch,
            } => {
                self.handle_report(job, from, report, cpu, started, ckpt, epoch, ctx);
            }

            Msg::ReportTimeout {
                job,
                machine,
                attempt,
            } => {
                let Some(rec) = self.jobs.get_mut(&job) else {
                    return;
                };
                if rec.state != (JobState::Running { machine }) || rec.attempts.len() != attempt {
                    return; // a report arrived; stale timer
                }
                // The claim evaporated: machine crash or partition. An
                // escaping error whose only representation is silence —
                // time gives it scope (§5).
                ctx.trace_with(|| {
                    format!("report timeout: job {job} vanished on machine {machine}")
                });
                ctx.emit(obs::Event::Reschedule {
                    job: u64::from(job),
                    machine: machine as u64,
                    reason: "no report: machine crashed or unreachable".into(),
                });
                let exec_time = rec.spec.exec_time;
                rec.epoch += 1; // a late report is now stale
                rec.attempts.push(Attempt {
                    machine,
                    started: ctx.now,
                    ended: ctx.now,
                    scope: None,
                    note: "no report: machine crashed or unreachable".into(),
                });
                self.metrics.vanished_attempts += 1;
                self.metrics.wasted_cpu += exec_time;
                *self.chronic.entry(machine).or_insert(0) += 1;
                self.machine_failure(machine, ctx);
                self.note_remote_fault(
                    job,
                    machine,
                    "claim",
                    "FlockClaimVanished",
                    format!("flocked job {job} vanished on remote machine {machine}"),
                    ctx,
                );
                let delay = self.backoff_delay(job, ctx);
                self.reschedule_or_hold(job, delay, ctx);
            }

            Msg::RetryJob { job } => {
                if let Some(rec) = self.jobs.get_mut(&job) {
                    if matches!(rec.state, JobState::Waiting) {
                        rec.state = JobState::Idle;
                    }
                }
            }

            Msg::FlockGrant { pool, free } => {
                let Some(cfg) = self.flock.clone() else {
                    return;
                };
                let Some(target) = cfg.pools.iter().find(|t| t.pool == pool).copied() else {
                    return;
                };
                if !matches!(self.flock_states.get(&pool), Some(FlockState::Probing)) {
                    return; // the probe already timed out; stale grant
                }
                let Some(&job) = self.flock_probe_job.get(&pool) else {
                    return;
                };
                // Either way the matchmaker answered: the link is healthy.
                self.pool_breaker_success(pool, target.matchmaker, ctx);
                if free == 0 {
                    // An explicit pool-scope denial — saturation, not
                    // silence. Park the pool and fall back to the home
                    // queue; the job stays schedulable.
                    self.flock_states
                        .insert(pool, FlockState::Denied { at: ctx.now });
                    self.pool_fault(
                        job,
                        pool,
                        "saturated",
                        "PoolSaturated",
                        format!("pool {pool} denied flocking: saturated"),
                        ctx,
                    );
                } else {
                    self.flock_states.insert(pool, FlockState::Granted);
                    ctx.trace_with(|| {
                        format!("pool {pool} granted flocking ({free} machines advertised)")
                    });
                }
            }

            Msg::FlockTimeout { pool } => {
                let Some(cfg) = self.flock.clone() else {
                    return;
                };
                if !matches!(self.flock_states.get(&pool), Some(FlockState::Probing)) {
                    return; // a grant arrived first; stale timer
                }
                let Some(target) = cfg.pools.iter().find(|t| t.pool == pool).copied() else {
                    return;
                };
                let Some(&job) = self.flock_probe_job.get(&pool) else {
                    return;
                };
                // Silence from the remote matchmaker: an unreachable pool,
                // made explicit by time (§5) instead of hanging the probe.
                self.flock_states
                    .insert(pool, FlockState::Denied { at: ctx.now });
                self.pool_fault(
                    job,
                    pool,
                    "unreachable",
                    "PoolUnreachable",
                    format!(
                        "pool {pool} matchmaker silent for {}: unreachable",
                        cfg.probe_timeout
                    ),
                    ctx,
                );
                self.pool_breaker_failure(pool, target.matchmaker, ctx);
            }

            Msg::ClaimRevoked { job, epoch } => {
                let Some(rec) = self.jobs.get(&job) else {
                    return;
                };
                if epoch != rec.epoch {
                    let current = rec.epoch;
                    self.drop_stale(job, "claim-revoked", epoch, current, ctx);
                    return;
                }
                let (JobState::Running { machine } | JobState::Claiming { machine }) = rec.state
                else {
                    return;
                };
                if machine != from {
                    return;
                }
                ctx.trace_with(|| {
                    format!("remote pool revoked the claim for job {job} on machine {machine}")
                });
                ctx.emit(obs::Event::Reschedule {
                    job: u64::from(job),
                    machine: machine as u64,
                    reason: "flocked claim revoked by remote pool".into(),
                });
                let rec = self.jobs.get_mut(&job).unwrap();
                rec.epoch += 1; // the claim is dead; anything later is stale
                rec.attempts.push(Attempt {
                    machine,
                    started: ctx.now,
                    ended: ctx.now,
                    scope: None,
                    note: "flocked claim revoked by remote pool".into(),
                });
                self.metrics.failed_claims += 1;
                let pool = self.machine_pool.get(&machine).copied().unwrap_or(0);
                self.pool_fault(
                    job,
                    pool,
                    "revoked",
                    "FlockClaimRevoked",
                    format!("remote pool {pool} revoked the claim for job {job}"),
                    ctx,
                );
                if let Some(cfg) = self.flock.clone() {
                    if let Some(t) = cfg.pools.iter().find(|t| t.pool == pool) {
                        self.pool_breaker_failure(pool, t.matchmaker, ctx);
                    }
                }
                // Graceful degradation: back to the home queue, still
                // schedulable.
                let delay = self.backoff_delay(job, ctx);
                self.reschedule_or_hold(job, delay, ctx);
            }

            Msg::PostmortemDone { job } => {
                let Some(rec) = self.jobs.get_mut(&job) else {
                    return;
                };
                if !matches!(rec.state, JobState::AwaitingPostmortem { .. }) {
                    return;
                }
                self.metrics.postmortems += 1;
                ctx.trace_with(|| format!("user resubmits job {job} after postmortem"));
                self.reschedule_or_hold(job, SimDuration::from_micros(1), ctx);
            }

            _ => {}
        }
    }
}

impl Schedd {
    /// Refresh the first-went-idle clock each advertise tick: idle jobs
    /// keep (or gain) their timestamp, everything else sheds it.
    fn note_idle_jobs(&mut self, now: SimTime) {
        let idle: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Idle))
            .map(|j| j.spec.id)
            .collect();
        self.first_idle.retain(|j, _| idle.contains(j));
        for j in idle {
            self.first_idle.entry(j).or_insert(now);
        }
    }

    /// Matchmakers of remote pools currently granting flocked ads, with
    /// breaker-blocked pools withheld.
    fn granted_matchmakers(&mut self, now: SimTime) -> Vec<usize> {
        let Some(cfg) = &self.flock else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for t in &cfg.pools {
            if !matches!(self.flock_states.get(&t.pool), Some(FlockState::Granted)) {
                continue;
            }
            let blocked = self
                .pool_breakers
                .get_mut(&t.pool)
                .is_some_and(|b| b.is_blocked(now));
            if !blocked {
                out.push(t.matchmaker);
            }
        }
        out
    }

    /// The flocking ladder: when some job has starved past the patience
    /// window, probe the first remote pool (in configured order) that is
    /// neither already granting, mid-probe, freshly denied, nor breaker-
    /// blocked. One probe per tick; the probe doubles as a half-open
    /// breaker's trial request.
    fn maybe_flock(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(cfg) = self.flock.clone() else {
            return;
        };
        let starving = self
            .first_idle
            .iter()
            .filter(|(_, t)| ctx.now.since(**t) >= cfg.patience)
            .map(|(j, _)| *j)
            .next();
        let Some(job) = starving else {
            return;
        };
        for target in &cfg.pools {
            match self
                .flock_states
                .get(&target.pool)
                .copied()
                .unwrap_or(FlockState::Unprobed)
            {
                FlockState::Granted => continue,
                FlockState::Probing => return, // one probe in flight
                FlockState::Denied { at } if ctx.now.since(at) < cfg.denial_delay => continue,
                FlockState::Unprobed | FlockState::Denied { .. } => {}
            }
            let blocked = self
                .pool_breakers
                .get_mut(&target.pool)
                .is_some_and(|b| b.is_blocked(ctx.now));
            if blocked {
                continue;
            }
            self.flock_states.insert(target.pool, FlockState::Probing);
            self.flock_probe_job.insert(target.pool, job);
            self.metrics.flock_escalations += 1;
            ctx.trace_with(|| {
                format!(
                    "job {job} starved past patience; probing pool {} for flocking",
                    target.pool
                )
            });
            ctx.send_net(target.matchmaker, Msg::FlockRequest { pool: target.pool });
            ctx.send_self_after(cfg.probe_timeout, Msg::FlockTimeout { pool: target.pool });
            return;
        }
    }

    /// Convert a remote-pool failure into an explicit pool-scope error:
    /// emit the [`obs::Event::FlockFault`] marker, walk a lawful journey
    /// (a network-scope escape at the shadow, widened to pool scope at the
    /// schedd — the pool scope's Figure 3 manager — and handled there),
    /// and rule the scope-correct disposition. Under the test-only
    /// `swallow_escapes` mutation the schedd instead swallows the escape,
    /// exactly the Principle-1 breach the oracle must flag.
    fn pool_fault(
        &mut self,
        job: JobId,
        pool: u64,
        kind: &str,
        code: &'static str,
        note: String,
        ctx: &mut Context<'_, Msg>,
    ) {
        self.metrics.flock_faults += 1;
        ctx.emit(obs::Event::FlockFault {
            job: u64::from(job),
            pool,
            kind: kind.to_string(),
        });
        ctx.trace_with(|| format!("pool-scope fault for job {job}: {note}"));
        let err = errorscope::ScopedError::escaping(code, Scope::Network, "shadow", note);
        if self.flock.as_ref().is_some_and(|f| f.swallow_escapes) {
            // The deliberate bug: the escape dies here, unwidened and
            // invisible to the user. P1 ("explicit stays explicit") fires.
            let err = err.swallow("schedd");
            for ev in err.trail_events() {
                ctx.emit(ev);
            }
            return;
        }
        let err = err.widen(Scope::Pool, "schedd").handle("schedd");
        for ev in err.trail_events() {
            ctx.emit(ev);
        }
        ctx.emit(obs::Event::Disposition {
            job: u64::from(job),
            disposition: Disposition::for_scope(Scope::Pool).to_string(),
            scope: Scope::Pool.name().to_string(),
            span: err.span,
        });
    }

    /// Feed a failure to `pool`'s breaker and demote the pool: a failing
    /// pool must re-earn its grant through a fresh probe.
    fn pool_breaker_failure(&mut self, pool: u64, matchmaker: usize, ctx: &mut Context<'_, Msg>) {
        let Some(cfg) = &self.flock else {
            return;
        };
        let policy = cfg.breaker;
        let breaker = self
            .pool_breakers
            .entry(pool)
            .or_insert_with(|| CircuitBreaker::new(policy));
        if let Some(tr) = breaker.on_failure(ctx.now) {
            if matches!(tr.to, BreakerState::Open { .. }) {
                self.metrics.breaker_opens += 1;
            }
            ctx.emit(obs::Event::BreakerStateChange {
                machine: matchmaker as u64,
                from: tr.from.name().to_string(),
                to: tr.to.name().to_string(),
            });
            ctx.trace_with(|| {
                format!(
                    "breaker for pool {pool}: {} -> {}",
                    tr.from.name(),
                    tr.to.name()
                )
            });
        }
        self.flock_states
            .insert(pool, FlockState::Denied { at: ctx.now });
    }

    /// Feed a proof of health to `pool`'s breaker.
    fn pool_breaker_success(&mut self, pool: u64, matchmaker: usize, ctx: &mut Context<'_, Msg>) {
        if let Some(breaker) = self.pool_breakers.get_mut(&pool) {
            if let Some(tr) = breaker.on_success(ctx.now) {
                ctx.emit(obs::Event::BreakerStateChange {
                    machine: matchmaker as u64,
                    from: tr.from.name().to_string(),
                    to: tr.to.name().to_string(),
                });
                ctx.trace_with(|| format!("breaker for pool {pool}: closed"));
            }
        }
    }

    /// If `machine` is a flocked (remote-pool) machine, its failure also
    /// sits on an inter-pool link: surface it at pool scope and charge the
    /// pool's breaker. Home-pool machines are untouched.
    fn note_remote_fault(
        &mut self,
        job: JobId,
        machine: usize,
        kind: &str,
        code: &'static str,
        note: String,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(cfg) = self.flock.clone() else {
            return;
        };
        let pool = self
            .machine_pool
            .get(&machine)
            .copied()
            .unwrap_or(cfg.home_pool);
        if pool == cfg.home_pool {
            return;
        }
        self.pool_fault(job, pool, kind, code, note, ctx);
        if let Some(t) = cfg.pools.iter().find(|t| t.pool == pool) {
            self.pool_breaker_failure(pool, t.matchmaker, ctx);
        }
    }

    /// Reschedule after `delay`, or hold the job if its attempt budget is
    /// exhausted.
    fn reschedule_or_hold(&mut self, job: JobId, delay: SimDuration, ctx: &mut Context<'_, Msg>) {
        let max = self.policy.max_attempts;
        let rec = self.jobs.get_mut(&job).expect("job exists");
        if rec.attempts.len() as u32 >= max {
            rec.state = JobState::Held {
                reason: format!("{} failed attempts", rec.attempts.len()),
            };
            rec.finished = Some(ctx.now);
            self.metrics.jobs_held += 1;
            self.user_sees(ctx.now, job, "job held: too many failed attempts");
            return;
        }
        rec.state = JobState::Waiting;
        ctx.send_self_after(delay, Msg::RetryJob { job });
    }

    /// The submit-side half of the lease: has the running claim been heard
    /// from within the lease timeout? If not, the silent partition becomes
    /// an explicit scope-of-the-claim error *now*, instead of waiting for
    /// the much longer report timeout.
    fn check_lease(&mut self, job: JobId, epoch: u64, ctx: &mut Context<'_, Msg>) {
        let Some(lease) = self.policy.lease else {
            return;
        };
        let Some(rec) = self.jobs.get_mut(&job) else {
            return;
        };
        if epoch != rec.epoch {
            return; // the claim already closed; this timer is stale
        }
        let JobState::Running { machine } = rec.state else {
            return;
        };
        let silent = ctx.now.since(rec.last_heartbeat);
        if silent < lease.timeout {
            // Heard from within the window: re-arm for the remainder.
            let remaining =
                SimDuration::from_micros(lease.timeout.as_micros() - silent.as_micros());
            ctx.send_self_after(remaining, Msg::LeaseCheck { job, epoch });
            return;
        }
        ctx.trace_with(|| {
            format!("lease expired for job {job} on machine {machine}: silent for {silent}")
        });
        ctx.emit(obs::Event::LeaseExpired {
            job: u64::from(job),
            machine: machine as u64,
            side: "schedd".to_string(),
        });
        ctx.emit(obs::Event::Reschedule {
            job: u64::from(job),
            machine: machine as u64,
            reason: "lease expired: claim unreachable".into(),
        });
        let exec_time = rec.spec.exec_time;
        rec.epoch += 1; // the claim is dead; its report would be stale
        rec.attempts.push(Attempt {
            machine,
            started: ctx.now,
            ended: ctx.now,
            scope: None,
            note: "lease expired: claim unreachable".into(),
        });
        self.metrics.leases_expired += 1;
        self.metrics.vanished_attempts += 1;
        self.metrics.wasted_cpu += exec_time;
        *self.chronic.entry(machine).or_insert(0) += 1;
        self.machine_failure(machine, ctx);
        self.note_remote_fault(
            job,
            machine,
            "lease",
            "FlockLeaseExpired",
            format!("lease on flocked machine {machine} expired for job {job}"),
            ctx,
        );
        let delay = self.backoff_delay(job, ctx);
        self.reschedule_or_hold(job, delay, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_report(
        &mut self,
        job: JobId,
        machine: ActorId,
        report: ExecutionReport,
        cpu: SimDuration,
        started: SimTime,
        ckpt: CkptAttempt,
        epoch: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(rec) = self.jobs.get(&job) else {
            return;
        };
        if epoch != rec.epoch {
            // A report from a closed claim: a duplicated frame, a late
            // delivery from a healed partition, or a claim the lease check
            // already expired. Count it; never act on it.
            let current = rec.epoch;
            self.drop_stale(job, "report", epoch, current, ctx);
            return;
        }
        if rec.state != (JobState::Running { machine }) {
            return; // late report after a timeout already acted
        }
        // The report closes the claim: anything stamped with this epoch
        // from here on (duplicates, partition echoes) is stale.
        let rec = self.jobs.get_mut(&job).unwrap();
        rec.epoch += 1;

        // Settle the attempt's checkpoint-resume outcome first: it adjusts
        // the banked progress the report's own accounting builds on.
        let ckpt_note = match ckpt {
            CkptAttempt::None => None,
            CkptAttempt::Resumed { saved } => {
                self.metrics.checkpoints_restored += 1;
                self.metrics.work_saved_by_checkpoint += saved;
                Some(format!("resumed from checkpoint ({saved} saved)"))
            }
            CkptAttempt::Discarded { reason } => {
                // An explicit checkpoint-scope error: the image (and the
                // progress it banked) is gone, and the attempt cold-
                // restarted from zero.
                self.metrics.checkpoints_discarded += 1;
                let rec = self.jobs.get_mut(&job).unwrap();
                self.metrics.work_lost_to_eviction += rec.progress;
                rec.progress = SimDuration::ZERO;
                rec.ckpt_key = None;
                ctx.trace_with(|| format!("job {job} discarded its checkpoint: {reason}"));
                Some(format!("checkpoint discarded ({reason}); cold-restarted"))
            }
        };
        let attempts_before = self.jobs[&job].attempts.len();

        match report {
            // ---- owner reclaimed the machine: not an error at all ----
            ExecutionReport::Evicted {
                completed,
                checkpointed,
                stored,
            } => {
                self.metrics.evictions += 1;
                let rec = self.jobs.get_mut(&job).unwrap();
                let note = if let Some(s) = stored {
                    // Checkpoint-server mode: bank exactly what the stored
                    // image preserves; the tail past the last periodic
                    // checkpoint is lost.
                    rec.progress += s.banked;
                    rec.ckpt_key = Some(s.key);
                    self.metrics.checkpointed_work += s.banked;
                    let lost = SimDuration::from_micros(
                        completed.as_micros().saturating_sub(s.banked.as_micros()),
                    );
                    self.metrics.work_lost_to_eviction += lost;
                    self.metrics.checkpoints_taken += 1;
                    self.metrics.checkpoint_bytes += s.bytes;
                    format!(
                        "evicted by owner; checkpointed {} of work ({lost} lost)",
                        s.banked
                    )
                } else if checkpointed {
                    rec.progress += completed;
                    self.metrics.checkpointed_work += completed;
                    format!("evicted by owner; checkpointed {completed} of work")
                } else {
                    self.metrics.work_lost_to_eviction += completed;
                    format!("evicted by owner; {completed} of work lost")
                };
                let rec = self.jobs.get_mut(&job).unwrap();
                rec.attempts.push(Attempt {
                    machine,
                    started,
                    ended: ctx.now,
                    scope: None,
                    note,
                });
                ctx.trace_with(|| format!("job {job} evicted from machine {machine}"));
                // Owner policy, not a chronic failure: reschedule without
                // blaming the host, reset the backoff, and tell the breaker
                // the machine is demonstrably alive.
                self.machine_success(machine, ctx);
                let rec = self.jobs.get_mut(&job).unwrap();
                rec.backoff_level = 0;
                self.reschedule_or_hold(job, self.policy.retry.base_delay(), ctx);
                let _ = cpu;
            }

            // ---- the naive discipline: the exit code is the result ----
            ExecutionReport::NaiveExit {
                code,
                stdout: _,
                truth_scope,
                truth_note,
            } => {
                {
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.attempts.push(Attempt {
                        machine,
                        started,
                        ended: ctx.now,
                        scope: Some(truth_scope),
                        note: truth_note.clone(),
                    });
                }
                self.metrics.record_outcome(truth_scope, cpu);
                // The naive schedd believes every exit is a result, so the
                // machine looks healthy regardless of the hidden truth — it
                // has no scope information to feed the breaker.
                self.machine_success(machine, ctx);
                if truth_scope == Scope::Program {
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.state = JobState::Completed {
                        result: ResultFile::completed(code),
                    };
                    rec.finished = Some(ctx.now);
                    self.metrics.jobs_completed += 1;
                    self.user_sees(ctx.now, job, format!("job exited with code {code}"));
                } else {
                    // The environmental error reaches the user dressed as a
                    // result. "It required frequent postmortem analysis to
                    // determine whether the job had exited of its own
                    // account or because of accidental properties of the
                    // execution site."
                    self.metrics.incidental_errors_shown_to_user += 1;
                    ctx.emit(obs::Event::Violation {
                        principle: 3,
                        machine: machine as u64,
                        detail: format!(
                            "{truth_scope}-scope error delivered to user as a result: {truth_note}"
                        ),
                    });
                    let shown = format!("job exited with code {code}");
                    self.user_sees(ctx.now, job, shown.clone());
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.state = JobState::AwaitingPostmortem { shown };
                    ctx.send_self_after(self.policy.postmortem_delay, Msg::PostmortemDone { job });
                }
            }

            // ---- the scoped discipline: route by error scope ----
            ExecutionReport::Scoped { result, journey } => {
                let scope = result.scope();
                let note = result.to_string();
                {
                    let rec = self.jobs.get_mut(&job).unwrap();
                    rec.attempts.push(Attempt {
                        machine,
                        started,
                        ended: ctx.now,
                        scope: Some(scope),
                        note: note.clone(),
                    });
                }
                self.metrics.record_outcome(scope, cpu);
                // Advance the error's journey through the submission side:
                // the startd emitted every hop up to here; the schedd emits
                // only the hops it appends.
                let journey = journey.map(|j| {
                    let before = j.trail.len();
                    let stack = errorscope::propagate::java_universe_stack();
                    let (j, _done) = crate::telemetry::advance_journey(
                        &stack,
                        j,
                        crate::telemetry::SUBMIT_SIDE_LAYERS,
                    );
                    crate::telemetry::emit_journey_hops(ctx, &j, before);
                    j
                });
                let disposition = Disposition::for_scope(scope);
                ctx.emit(obs::Event::Disposition {
                    job: u64::from(job),
                    disposition: disposition.to_string(),
                    scope: scope.name().to_string(),
                    span: journey.as_ref().map_or(obs::NO_SPAN, |j| j.span),
                });
                match disposition {
                    Disposition::ReturnCompleted => {
                        self.machine_success(machine, ctx);
                        let rec = self.jobs.get_mut(&job).unwrap();
                        let text = match &result.outcome {
                            Outcome::Completed { exit_code } => {
                                format!("job completed with exit code {exit_code}")
                            }
                            Outcome::ProgramException { exception, message } => {
                                format!("job threw {exception}: {message}")
                            }
                            Outcome::EnvironmentFailure { .. } => unreachable!(),
                        };
                        rec.state = JobState::Completed { result };
                        rec.finished = Some(ctx.now);
                        self.metrics.jobs_completed += 1;
                        self.user_sees(ctx.now, job, text);
                    }
                    Disposition::ReturnUnexecutable => {
                        // The machine faithfully ran the job far enough to
                        // prove the *job* is at fault: a healthy host.
                        self.machine_success(machine, ctx);
                        let rec = self.jobs.get_mut(&job).unwrap();
                        rec.state = JobState::Unexecutable {
                            reason: note.clone(),
                        };
                        rec.finished = Some(ctx.now);
                        self.metrics.jobs_unexecutable += 1;
                        self.user_sees(ctx.now, job, format!("job is unexecutable: {note}"));
                    }
                    Disposition::LogAndReschedule | Disposition::EscalateToHuman => {
                        // "Anything in between causes it to log the error
                        // and then attempt to execute the program at a new
                        // site."
                        ctx.trace_with(|| {
                            format!("logged {scope}-scope error for job {job}; rescheduling")
                        });
                        ctx.emit(obs::Event::Reschedule {
                            job: u64::from(job),
                            machine: machine as u64,
                            reason: format!("{scope}-scope error: {note}"),
                        });
                        self.metrics.reschedules += 1;
                        let delay = if scope == Scope::LocalResource {
                            // Our own file system's fault, not the host's:
                            // no blame, no backoff escalation.
                            self.policy.local_resource_delay
                        } else {
                            *self.chronic.entry(machine).or_insert(0) += 1;
                            self.machine_failure(machine, ctx);
                            self.backoff_delay(job, ctx)
                        };
                        self.reschedule_or_hold(job, delay, ctx);
                    }
                }
            }
        }

        // Fold the checkpoint-resume outcome into the attempt record so the
        // job history shows "resumed" / "discarded" alongside the verdict.
        if let Some(prefix) = ckpt_note {
            let rec = self.jobs.get_mut(&job).unwrap();
            if let Some(att) = rec.attempts.get_mut(attempts_before) {
                att.note = format!("{prefix}; {}", att.note);
            }
        }
    }
}
