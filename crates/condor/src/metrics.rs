//! Pool-level accounting: the quantities the experiments report.
//!
//! [`Metrics`] keeps the typed counters the schedd updates as it runs, plus
//! a log-scale CPU histogram per outcome scope. [`Metrics::registry`]
//! projects everything into an [`obs::Registry`] (counters, gauges,
//! histograms with per-scope labels) for the JSON metrics snapshots the
//! experiment binaries export; [`MachineStats::register_into`] adds the
//! per-machine view under `machine=<name>` labels.

use desim::SimDuration;
use errorscope::Scope;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;

/// Serialize a [`SimDuration`] as integer microseconds, so CPU totals
/// survive the JSON export and efficiency is recomputable downstream.
fn as_micros<S: Serializer>(d: &SimDuration, s: S) -> Result<S::Ok, S::Error> {
    s.serialize_u64(d.as_micros())
}

/// Counters accumulated by the schedd over one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Metrics {
    /// Jobs that reached a true program result (completion or program
    /// exception) delivered to the user.
    pub jobs_completed: u64,
    /// Jobs marked unexecutable (job scope) and returned to the user.
    pub jobs_unexecutable: u64,
    /// Jobs parked after exhausting their attempt budget.
    pub jobs_held: u64,
    /// Incidental (environment-scope) errors delivered to the user as if
    /// they were program results — the naive system's signature failure.
    pub incidental_errors_shown_to_user: u64,
    /// Human postmortems performed (naive mode resubmissions).
    pub postmortems: u64,
    /// Times the schedd logged an environmental error and rescheduled.
    pub reschedules: u64,
    /// Claims that were rejected or timed out.
    pub failed_claims: u64,
    /// Execution reports that never arrived (machine crash / partition).
    pub vanished_attempts: u64,
    /// Claim leases the schedd declared expired (no heartbeat within the
    /// lease timeout) — silent partitions converted to explicit errors.
    pub leases_expired: u64,
    /// Messages fenced for carrying a stale claim epoch (late reports,
    /// duplicated frames, resurrected partitions). Counted, never acted on.
    pub stale_epochs_dropped: u64,
    /// Times a per-machine circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Times the schedd escalated an idle job to a remote pool (flocking).
    pub flock_escalations: u64,
    /// Remote-pool failures converted into explicit pool-scope errors
    /// (saturation, unreachable matchmaker, revoked or silent flock
    /// claims). Each one is a fault that, unscoped, would have hung a job.
    pub flock_faults: u64,
    /// Jobs evicted by owner activity.
    pub evictions: u64,
    /// Execution time preserved by checkpoints across evictions
    /// (microseconds in JSON).
    #[serde(rename = "checkpointed_work_us", serialize_with = "as_micros")]
    pub checkpointed_work: SimDuration,
    /// Execution time thrown away by evictions of non-checkpointable jobs
    /// (microseconds in JSON).
    #[serde(rename = "work_lost_to_eviction_us", serialize_with = "as_micros")]
    pub work_lost_to_eviction: SimDuration,
    /// Checkpoints stored on the checkpoint server.
    pub checkpoints_taken: u64,
    /// Attempts that successfully resumed from a stored checkpoint.
    pub checkpoints_restored: u64,
    /// Stored checkpoints rejected at resume time (missing, corrupt, or
    /// version-mismatched) — each an explicit checkpoint-scope error
    /// followed by a cold restart.
    pub checkpoints_discarded: u64,
    /// Total serialized size of checkpoints stored on the server.
    pub checkpoint_bytes: u64,
    /// Execution time that resumed attempts did not have to redo
    /// (microseconds in JSON).
    #[serde(rename = "work_saved_by_checkpoint_us", serialize_with = "as_micros")]
    pub work_saved_by_checkpoint: SimDuration,
    /// CPU time spent on attempts that produced a program result
    /// (microseconds in JSON).
    #[serde(rename = "useful_cpu_us", serialize_with = "as_micros")]
    pub useful_cpu: SimDuration,
    /// CPU time spent on attempts that failed environmentally — the §5
    /// black-hole waste (microseconds in JSON).
    #[serde(rename = "wasted_cpu_us", serialize_with = "as_micros")]
    pub wasted_cpu: SimDuration,
    /// Execution outcomes by scope, as observed by the schedd (ground
    /// truth in naive mode comes from the report's accounting field).
    pub outcomes_by_scope: BTreeMap<String, u64>,
    /// Log-scale histogram of per-attempt CPU (µs) keyed by outcome scope.
    #[serde(skip)]
    pub cpu_by_scope: BTreeMap<String, obs::Histogram>,
}

impl Metrics {
    /// Record an execution outcome of the given true scope.
    pub fn record_outcome(&mut self, scope: Scope, cpu: SimDuration) {
        *self
            .outcomes_by_scope
            .entry(scope.name().to_string())
            .or_insert(0) += 1;
        self.cpu_by_scope
            .entry(scope.name().to_string())
            .or_default()
            .record(cpu.as_micros());
        if scope == Scope::Program {
            self.useful_cpu += cpu;
        } else {
            self.wasted_cpu += cpu;
        }
    }

    /// Fraction of total execution CPU that was useful. 1.0 when no CPU
    /// was spent at all.
    pub fn cpu_efficiency(&self) -> f64 {
        let useful = self.useful_cpu.as_micros() as f64;
        let total = useful + self.wasted_cpu.as_micros() as f64;
        if total == 0.0 {
            1.0
        } else {
            useful / total
        }
    }

    /// Jobs that left the queue in any user-facing way.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_completed + self.jobs_unexecutable + self.jobs_held
    }

    /// Project the metrics into a registry. Counters are plain; outcome
    /// counts and CPU histograms carry a `scope` label.
    pub fn register_into(&self, reg: &mut obs::Registry) {
        for (name, value) in [
            ("jobs_completed", self.jobs_completed),
            ("jobs_unexecutable", self.jobs_unexecutable),
            ("jobs_held", self.jobs_held),
            (
                "incidental_errors_shown_to_user",
                self.incidental_errors_shown_to_user,
            ),
            ("postmortems", self.postmortems),
            ("reschedules", self.reschedules),
            ("failed_claims", self.failed_claims),
            ("vanished_attempts", self.vanished_attempts),
            ("leases_expired", self.leases_expired),
            ("stale_epochs_dropped", self.stale_epochs_dropped),
            ("breaker_opens", self.breaker_opens),
            ("flock_escalations", self.flock_escalations),
            ("flock_faults", self.flock_faults),
            ("evictions", self.evictions),
            ("checkpointed_work_us", self.checkpointed_work.as_micros()),
            (
                "work_lost_to_eviction_us",
                self.work_lost_to_eviction.as_micros(),
            ),
            ("checkpoints_taken", self.checkpoints_taken),
            ("checkpoints_restored", self.checkpoints_restored),
            ("checkpoints_discarded", self.checkpoints_discarded),
            ("checkpoint_bytes", self.checkpoint_bytes),
            (
                "work_saved_by_checkpoint_us",
                self.work_saved_by_checkpoint.as_micros(),
            ),
            ("useful_cpu_us", self.useful_cpu.as_micros()),
            ("wasted_cpu_us", self.wasted_cpu.as_micros()),
        ] {
            reg.counter_add(name, &[], value);
        }
        reg.gauge_set("cpu_efficiency", &[], self.cpu_efficiency());
        for (scope, n) in &self.outcomes_by_scope {
            reg.counter_add("outcomes", &[("scope", scope)], *n);
        }
        for (scope, hist) in &self.cpu_by_scope {
            reg.histogram_merge("attempt_cpu_us", &[("scope", scope)], hist);
        }
    }

    /// A fresh registry holding this metrics snapshot.
    pub fn registry(&self) -> obs::Registry {
        let mut reg = obs::Registry::new();
        self.register_into(&mut reg);
        reg
    }
}

/// The per-machine view, extracted from startds after a run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineStats {
    /// Display name.
    pub name: String,
    /// Whether the startd advertised Java capability (post self-test,
    /// possibly revoked by learning).
    pub advertising_java: bool,
    /// Claims accepted.
    pub claims_accepted: u64,
    /// Claims rejected.
    pub claims_rejected: u64,
    /// Executions performed.
    pub executions: u64,
    /// Executions that failed with remote-resource scope (this machine's
    /// own fault).
    pub remote_resource_failures: u64,
    /// Claim leases this startd declared expired (no heartbeat ack within
    /// the lease timeout) — the execute-side half of the lease.
    pub leases_expired: u64,
    /// Messages this startd fenced for carrying a stale claim epoch.
    pub stale_epochs_dropped: u64,
    /// Hot-loop recordings the machine's VMs closed into linear traces.
    /// Like every other counter here, a pure function of the executed
    /// instruction streams — byte-identical across same-seed runs.
    pub vm_traces_recorded: u64,
    /// Traces lowered and installed as compiled programs.
    pub vm_traces_compiled: u64,
    /// Guard exits: compiled executions that bailed back to the
    /// interpreter at a scope-relevant condition.
    pub vm_guard_exits: u64,
    /// Base instructions executed through the compiled tier.
    pub vm_compiled_instructions: u64,
}

impl MachineStats {
    /// Fold one VM run's trace-tier counters into this machine's view.
    pub fn absorb_vm(&mut self, vm: &gridvm::VmStats) {
        self.vm_traces_recorded += vm.traces_recorded;
        self.vm_traces_compiled += vm.traces_compiled;
        self.vm_guard_exits += vm.guard_exits;
        self.vm_compiled_instructions += vm.compiled_instructions;
    }

    /// Add this machine's counters to a registry under a `machine` label.
    pub fn register_into(&self, reg: &mut obs::Registry) {
        let labels: &[(&str, &str)] = &[("machine", &self.name)];
        reg.counter_add("claims_accepted", labels, self.claims_accepted);
        reg.counter_add("claims_rejected", labels, self.claims_rejected);
        reg.counter_add("executions", labels, self.executions);
        reg.counter_add(
            "remote_resource_failures",
            labels,
            self.remote_resource_failures,
        );
        reg.counter_add("leases_expired", labels, self.leases_expired);
        reg.counter_add("stale_epochs_dropped", labels, self.stale_epochs_dropped);
        reg.counter_add("vm_traces_recorded", labels, self.vm_traces_recorded);
        reg.counter_add("vm_traces_compiled", labels, self.vm_traces_compiled);
        reg.counter_add("vm_guard_exits", labels, self.vm_guard_exits);
        reg.counter_add(
            "vm_compiled_instructions",
            labels,
            self.vm_compiled_instructions,
        );
        reg.gauge_set(
            "advertising_java",
            labels,
            if self.advertising_java { 1.0 } else { 0.0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accounting() {
        let mut m = Metrics::default();
        m.record_outcome(Scope::Program, SimDuration::from_secs(60));
        m.record_outcome(Scope::RemoteResource, SimDuration::from_secs(20));
        m.record_outcome(Scope::RemoteResource, SimDuration::from_secs(20));
        assert_eq!(m.outcomes_by_scope["program"], 1);
        assert_eq!(m.outcomes_by_scope["remote-resource"], 2);
        assert_eq!(m.useful_cpu, SimDuration::from_secs(60));
        assert_eq!(m.wasted_cpu, SimDuration::from_secs(40));
        assert!((m.cpu_efficiency() - 0.6).abs() < 1e-9);
        assert_eq!(m.cpu_by_scope["remote-resource"].count(), 2);
    }

    #[test]
    fn efficiency_with_no_cpu_is_one() {
        assert_eq!(Metrics::default().cpu_efficiency(), 1.0);
    }

    #[test]
    fn finished_sums_terminal_states() {
        let m = Metrics {
            jobs_completed: 3,
            jobs_unexecutable: 2,
            jobs_held: 1,
            ..Metrics::default()
        };
        assert_eq!(m.jobs_finished(), 6);
    }

    #[test]
    fn vm_counters_flow_from_runs_into_the_machine_registry() {
        use gridvm::prelude::*;
        use gridvm::TraceConfig;
        let install = Installation::healthy().with_trace(TraceConfig::eager());
        let out = load_and_run(&gridvm::programs::cpu_bound(500), &install, &mut NoIo);
        assert!(out.vm.traces_compiled > 0);
        let mut stats = MachineStats {
            name: "node3".into(),
            ..MachineStats::default()
        };
        stats.absorb_vm(&out.vm);
        stats.absorb_vm(&out.vm);
        assert_eq!(stats.vm_traces_compiled, 2 * out.vm.traces_compiled);
        let mut reg = obs::Registry::new();
        stats.register_into(&mut reg);
        let labels = [("machine", "node3")];
        assert_eq!(
            reg.counter("vm_traces_recorded", &labels),
            2 * out.vm.traces_recorded
        );
        assert_eq!(
            reg.counter("vm_compiled_instructions", &labels),
            2 * out.vm.compiled_instructions
        );
        assert!(reg.counter("vm_compiled_instructions", &labels) > 0);
    }

    #[test]
    fn serialization_keeps_cpu_as_integer_micros() {
        let mut m = Metrics::default();
        m.record_outcome(Scope::Program, SimDuration::from_secs(60));
        m.record_outcome(Scope::Network, SimDuration::from_secs(30));
        let j = serde_json::to_value(&m).unwrap();
        assert_eq!(j["useful_cpu_us"], 60_000_000u64);
        assert_eq!(j["wasted_cpu_us"], 30_000_000u64);
        // Efficiency is recomputable from the JSON alone.
        let useful = j["useful_cpu_us"].as_u64().unwrap() as f64;
        let wasted = j["wasted_cpu_us"].as_u64().unwrap() as f64;
        assert!((useful / (useful + wasted) - m.cpu_efficiency()).abs() < 1e-12);
    }

    #[test]
    fn registry_projection_carries_labels() {
        let mut m = Metrics {
            jobs_completed: 4,
            ..Metrics::default()
        };
        m.record_outcome(Scope::Program, SimDuration::from_secs(1));
        let mut reg = m.registry();
        let stats = MachineStats {
            name: "node7".into(),
            advertising_java: true,
            claims_accepted: 2,
            ..MachineStats::default()
        };
        stats.register_into(&mut reg);
        assert_eq!(reg.counter("jobs_completed", &[]), 4);
        assert_eq!(reg.counter("outcomes", &[("scope", "program")]), 1);
        assert_eq!(reg.counter("claims_accepted", &[("machine", "node7")]), 2);
        let h = reg
            .histogram("attempt_cpu_us", &[("scope", "program")])
            .unwrap();
        assert_eq!(h.count(), 1);
        // The snapshot parses back cleanly.
        assert!(obs::json::parse(&reg.snapshot_json()).is_ok());
    }
}
