//! Pool-level accounting: the quantities the experiments report.

use desim::SimDuration;
use errorscope::Scope;
use serde::Serialize;
use std::collections::BTreeMap;

/// Counters accumulated by the schedd over one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Metrics {
    /// Jobs that reached a true program result (completion or program
    /// exception) delivered to the user.
    pub jobs_completed: u64,
    /// Jobs marked unexecutable (job scope) and returned to the user.
    pub jobs_unexecutable: u64,
    /// Jobs parked after exhausting their attempt budget.
    pub jobs_held: u64,
    /// Incidental (environment-scope) errors delivered to the user as if
    /// they were program results — the naive system's signature failure.
    pub incidental_errors_shown_to_user: u64,
    /// Human postmortems performed (naive mode resubmissions).
    pub postmortems: u64,
    /// Times the schedd logged an environmental error and rescheduled.
    pub reschedules: u64,
    /// Claims that were rejected or timed out.
    pub failed_claims: u64,
    /// Execution reports that never arrived (machine crash / partition).
    pub vanished_attempts: u64,
    /// Jobs evicted by owner activity.
    pub evictions: u64,
    /// Execution time preserved by checkpoints across evictions.
    #[serde(skip)]
    pub checkpointed_work: SimDuration,
    /// Execution time thrown away by evictions of non-checkpointable jobs.
    #[serde(skip)]
    pub work_lost_to_eviction: SimDuration,
    /// CPU time spent on attempts that produced a program result.
    #[serde(skip)]
    pub useful_cpu: SimDuration,
    /// CPU time spent on attempts that failed environmentally — the §5
    /// black-hole waste.
    #[serde(skip)]
    pub wasted_cpu: SimDuration,
    /// Execution outcomes by scope, as observed by the schedd (ground
    /// truth in naive mode comes from the report's accounting field).
    pub outcomes_by_scope: BTreeMap<String, u64>,
}

impl Metrics {
    /// Record an execution outcome of the given true scope.
    pub fn record_outcome(&mut self, scope: Scope, cpu: SimDuration) {
        *self
            .outcomes_by_scope
            .entry(scope.name().to_string())
            .or_insert(0) += 1;
        if scope == Scope::Program {
            self.useful_cpu += cpu;
        } else {
            self.wasted_cpu += cpu;
        }
    }

    /// Fraction of total execution CPU that was useful. 1.0 when no CPU
    /// was spent at all.
    pub fn cpu_efficiency(&self) -> f64 {
        let useful = self.useful_cpu.as_micros() as f64;
        let total = useful + self.wasted_cpu.as_micros() as f64;
        if total == 0.0 {
            1.0
        } else {
            useful / total
        }
    }

    /// Jobs that left the queue in any user-facing way.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_completed + self.jobs_unexecutable + self.jobs_held
    }
}

/// The per-machine view, extracted from startds after a run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineStats {
    /// Display name.
    pub name: String,
    /// Whether the startd advertised Java capability (post self-test,
    /// possibly revoked by learning).
    pub advertising_java: bool,
    /// Claims accepted.
    pub claims_accepted: u64,
    /// Claims rejected.
    pub claims_rejected: u64,
    /// Executions performed.
    pub executions: u64,
    /// Executions that failed with remote-resource scope (this machine's
    /// own fault).
    pub remote_resource_failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accounting() {
        let mut m = Metrics::default();
        m.record_outcome(Scope::Program, SimDuration::from_secs(60));
        m.record_outcome(Scope::RemoteResource, SimDuration::from_secs(20));
        m.record_outcome(Scope::RemoteResource, SimDuration::from_secs(20));
        assert_eq!(m.outcomes_by_scope["program"], 1);
        assert_eq!(m.outcomes_by_scope["remote-resource"], 2);
        assert_eq!(m.useful_cpu, SimDuration::from_secs(60));
        assert_eq!(m.wasted_cpu, SimDuration::from_secs(40));
        assert!((m.cpu_efficiency() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn efficiency_with_no_cpu_is_one() {
        assert_eq!(Metrics::default().cpu_efficiency(), 1.0);
    }

    #[test]
    fn finished_sums_terminal_states() {
        let m = Metrics {
            jobs_completed: 3,
            jobs_unexecutable: 2,
            jobs_held: 1,
            ..Metrics::default()
        };
        assert_eq!(m.jobs_finished(), 6);
    }
}
