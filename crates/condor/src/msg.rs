//! The message alphabet of the simulated Condor kernel.
//!
//! These are the arrows of Figure 1 (matchmaking, claiming) and Figure 2
//! (activation, execution reports), plus the self-addressed timer messages
//! each daemon uses for periodic work and timeouts.

use crate::job::{JobId, Universe};
use classads::ClassAd;
use desim::{SimDuration, SimTime};
use errorscope::resultfile::ResultFile;
use errorscope::Scope;
use std::collections::BTreeMap;

/// A snapshot of the submitter's home file system, shipped with a claim
/// activation (the shadow "providing the details of the job to be run,
/// such as the executable, the input files, and the arguments").
#[derive(Debug, Clone, Default)]
pub struct FsSnapshot {
    /// Input files and contents.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Inputs the schedd could not provide (named by the job but missing).
    pub missing: Vec<String>,
}

/// Where a previous attempt left a checkpoint, shipped with the
/// activation so the starter can try to resume instead of restarting.
#[derive(Debug, Clone)]
pub struct ResumeInfo {
    /// Checkpoint-server key of the stored image.
    pub key: String,
    /// Execution time the checkpoint is believed to bank.
    pub banked: SimDuration,
}

/// The lease terms a claim runs under: the startd heartbeats every
/// `interval`; either side that goes `timeout` without hearing from the
/// other declares the lease expired — an explicit scope-of-the-claim error
/// in place of a silent partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseInfo {
    /// How often the startd heartbeats while the claim is active.
    pub interval: SimDuration,
    /// Silence longer than this expires the lease.
    pub timeout: SimDuration,
}

/// Everything the starter needs to run one job.
#[derive(Debug, Clone)]
pub struct Activation {
    /// Which job.
    pub job: JobId,
    /// The program image.
    pub image: Vec<u8>,
    /// Universe (and Java error discipline).
    pub universe: Universe,
    /// Input snapshot.
    pub snapshot: FsSnapshot,
    /// Nominal execution time.
    pub exec_time: SimDuration,
    /// Whether the job performs remote I/O against the shadow.
    pub does_remote_io: bool,
    /// The schedd (shadow host) this claim belongs to.
    pub schedd: usize,
    /// Which attempt this activation is (0-based).
    pub attempt: usize,
    /// A checkpoint from an earlier attempt to resume from, if any.
    pub resume: Option<ResumeInfo>,
    /// The claim epoch this activation belongs to. Reports and heartbeats
    /// echo it back; anything stamped with an older epoch is fenced.
    pub epoch: u64,
    /// The lease terms, when leasing is enabled.
    pub lease: Option<LeaseInfo>,
    /// The pool the schedd believes the claimed machine belongs to. A
    /// startd in a different pool refuses the activation — a stale flock
    /// claim can never activate across pool boundaries.
    pub pool: u64,
}

/// A checkpoint the starter stored on the checkpoint server during this
/// attempt.
#[derive(Debug, Clone)]
pub struct StoredCkpt {
    /// The key it was stored under.
    pub key: String,
    /// Size of the serialized image.
    pub bytes: u64,
    /// New execution time this checkpoint banks beyond what the attempt
    /// started with (period-floored; the tail past the last periodic
    /// checkpoint is not in the image and is lost).
    pub banked: SimDuration,
}

/// What became of the checkpoint the activation asked the starter to
/// resume from. Distinguishing "resumed" from "discarded" is the heart of
/// checkpoint scope: a bad checkpoint is an explicit, recoverable error of
/// the checkpoint layer, never an implicit crash inside the program.
#[derive(Debug, Clone, Default)]
pub enum CkptAttempt {
    /// No resume was attempted (first attempt, or no server configured).
    #[default]
    None,
    /// The checkpoint validated and the job resumed from it.
    Resumed {
        /// Execution time the resume saved (the banked progress).
        saved: SimDuration,
    },
    /// The checkpoint was rejected (missing, corrupt, or mismatched) and
    /// the starter fell back to a cold restart.
    Discarded {
        /// Why it was rejected.
        reason: String,
    },
}

/// What the starter tells the shadow when execution concludes.
#[derive(Debug, Clone)]
pub enum ExecutionReport {
    /// The naive Java Universe (and the Vanilla universe): the process
    /// exit code is all the schedd gets.
    NaiveExit {
        /// The VM process exit code.
        code: i32,
        /// Captured stdout.
        stdout: String,
        /// What the user would have to discover by postmortem: the true
        /// scope of the outcome. Carried for *accounting only* — the naive
        /// schedd logic never reads it.
        truth_scope: Scope,
        /// Human-readable truth, for the event log.
        truth_note: String,
    },
    /// The scope-aware Java Universe: the wrapper's result file.
    Scoped {
        /// The result file read back by the starter.
        result: ResultFile,
        /// The error's telemetry journey so far (environment failures
        /// only): span id and trail from birth through the layers already
        /// crossed on the execute side. The schedd appends its own hops.
        journey: Option<errorscope::ScopedError>,
    },
    /// The machine owner reclaimed the machine; the starter evicted the
    /// job. Not an error — owner policy. For Standard-universe jobs the
    /// starter took a checkpoint first.
    Evicted {
        /// Execution time completed before eviction (banked for Standard
        /// jobs, lost for others).
        completed: SimDuration,
        /// Whether a checkpoint was taken (Standard universe only).
        checkpointed: bool,
        /// The checkpoint stored on the checkpoint server, when one is
        /// configured. `checkpointed` without `stored` is the legacy
        /// exact-banking model.
        stored: Option<StoredCkpt>,
    },
}

/// One message.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- timers (self-addressed) ----
    /// Periodic: advertise to the matchmaker.
    AdvertiseTick,
    /// Periodic (matchmaker): run a negotiation cycle.
    NegotiateTick,
    /// The claim handshake for `job` timed out.
    ClaimTimeout {
        /// Which job.
        job: JobId,
        /// The machine being claimed.
        machine: usize,
    },
    /// No execution report arrived for `job` in time.
    ReportTimeout {
        /// Which job.
        job: JobId,
        /// The machine it was running on.
        machine: usize,
        /// Attempt number the timeout was armed for (stale timeouts are
        /// ignored).
        attempt: usize,
    },
    /// The human finished postmortem analysis of a wrongly-returned job
    /// (naive mode only) and resubmits it.
    PostmortemDone {
        /// Which job.
        job: JobId,
    },
    /// A delayed retry: put the job back in the idle queue.
    RetryJob {
        /// Which job.
        job: JobId,
    },
    /// The starter's execution of `job` finished (startd self-timer).
    ExecutionComplete {
        /// Which job.
        job: JobId,
    },
    /// Periodic (startd): send the next heartbeat for an active claim.
    HeartbeatTick {
        /// Which job.
        job: JobId,
        /// The claim epoch the tick was armed for (stale ticks are ignored).
        epoch: u64,
    },
    /// Periodic (schedd): check whether a running claim's lease is still
    /// being renewed.
    LeaseCheck {
        /// Which job.
        job: JobId,
        /// The claim epoch the check was armed for.
        epoch: u64,
    },
    /// A claim was accepted but never activated; the startd frees itself
    /// (startd self-timer).
    ClaimExpire {
        /// Which job.
        job: JobId,
        /// The claim epoch the timer was armed for.
        epoch: u64,
    },
    /// The network-fault driver reached a window edge and must reconfigure
    /// the fabric (self-timer).
    NetFaultTick,

    // ---- matchmaking (Figure 1: "Matchmaking Protocol") ----
    /// A startd advertises its machine.
    MachineAd {
        /// The machine's ClassAd (with `HasJava` per the self-test).
        ad: Box<ClassAd>,
    },
    /// A schedd advertises one idle job.
    JobAd {
        /// Which job.
        job: JobId,
        /// The job's ClassAd.
        ad: Box<ClassAd>,
    },
    /// The matchmaker notifies the schedd of a compatible partner
    /// ("notifies schedds and startds of compatible partners").
    MatchNotify {
        /// Which job.
        job: JobId,
        /// The matched machine (startd actor id).
        machine: usize,
        /// The pool the notifying matchmaker serves. The schedd stamps
        /// the claim (and its `pool:{id}` attribution) with this.
        pool: u64,
    },

    // ---- flocking (federated pools, §6) ----
    /// A schedd asks a remote pool's matchmaker whether it will accept
    /// flocked job ads. Doubles as the circuit breaker's half-open probe.
    FlockRequest {
        /// The pool id the schedd believes it is addressing.
        pool: u64,
    },
    /// A matchmaker grants (or effectively denies, with `free == 0`) a
    /// flock request.
    FlockGrant {
        /// The granting matchmaker's pool id.
        pool: u64,
        /// How many machine ads it currently holds. Zero means the pool
        /// is saturated — an explicit pool-scope denial, not silence.
        free: u64,
    },
    /// No [`Msg::FlockGrant`] arrived in time (schedd self-timer): the
    /// remote matchmaker is unreachable.
    FlockTimeout {
        /// The pool that went silent.
        pool: u64,
    },

    // ---- claiming (Figure 1: "Claiming Protocol") ----
    /// The schedd asks to claim the machine for a job.
    ClaimRequest {
        /// Which job.
        job: JobId,
        /// The job ad, for the startd's own verification ("matched
        /// processes are individually responsible for … verifying that
        /// their needs are met").
        ad: Box<ClassAd>,
        /// The claim epoch this request opens. Every later message about
        /// the claim carries it; stale epochs are fenced.
        epoch: u64,
        /// The pool the schedd believes the machine belongs to; the
        /// startd rejects a mismatch.
        pool: u64,
    },
    /// The startd accepts the claim.
    ClaimAccept {
        /// Which job.
        job: JobId,
        /// The epoch of the claim being accepted.
        epoch: u64,
    },
    /// The startd declines.
    ClaimReject {
        /// Which job.
        job: JobId,
        /// Why.
        reason: String,
        /// The epoch of the claim being declined.
        epoch: u64,
    },
    /// The schedd releases a claim it cannot activate (e.g. its home file
    /// system is offline at staging time).
    ReleaseClaim {
        /// Which job.
        job: JobId,
    },
    /// A remote pool's startd revoked a flocked claim at activation time
    /// (the remote administrator reclaimed the machine). The schedd
    /// converts this into an explicit pool-scope error and falls back to
    /// the home queue.
    ClaimRevoked {
        /// Which job.
        job: JobId,
        /// The epoch of the revoked claim.
        epoch: u64,
    },

    // ---- shadow/starter (Figure 1: "Control Protocol") ----
    /// The shadow activates the claim with the job details.
    ActivateClaim(Box<Activation>),
    /// The starter reports the outcome to the shadow.
    StarterReport {
        /// Which job.
        job: JobId,
        /// The outcome.
        report: ExecutionReport,
        /// CPU time consumed at the execution site.
        cpu: SimDuration,
        /// When execution started (for the attempt record).
        started: SimTime,
        /// What became of the checkpoint resume, if one was attempted.
        ckpt: CkptAttempt,
        /// The claim epoch of the activation this report answers. A report
        /// from an older epoch (late, duplicated, or resurrected) is
        /// rejected and counted, never acted on.
        epoch: u64,
    },
    /// The startd renews the claim lease ("still here, still running").
    Heartbeat {
        /// Which job.
        job: JobId,
        /// The claim epoch being renewed.
        epoch: u64,
    },
    /// The schedd acknowledges a heartbeat, renewing the lease on the
    /// startd's side too.
    HeartbeatAck {
        /// Which job.
        job: JobId,
        /// The claim epoch being renewed.
        epoch: u64,
    },

    // ---- checkpoint server (chirp over the simulated network) ----
    /// A batch of chirp frames addressed to the checkpoint server
    /// (an AUTHENTICATE frame followed by PUT_CKPT / GET_CKPT frames).
    CkptRequest {
        /// The framed request bytes.
        frames: Vec<u8>,
    },
    /// The checkpoint server's framed responses, one per request frame
    /// (fewer if the server disconnected the session mid-batch).
    CkptResponse {
        /// The framed response bytes.
        frames: Vec<u8>,
    },
}
