//! Machines: what owners contribute to the pool.

use classads::ClassAd;
use gridvm::config::Installation;

/// A machine as its owner configures it.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Display name.
    pub name: String,
    /// Physical memory (MB), advertised and enforced through matchmaking.
    pub memory: i64,
    /// Architecture string.
    pub arch: String,
    /// Operating system string.
    pub opsys: String,
    /// The owner's *assertion* that Java works here. §5: "Rather than
    /// blindly accept each owner's assertion regarding the Java
    /// installation…" — the assertion may be wrong.
    pub asserts_java: bool,
    /// The actual VM installation (the ground truth the assertion may
    /// misrepresent).
    pub installation: Installation,
    /// Owner policy expression for the machine's `Requirements`.
    pub owner_requirements: String,
}

impl MachineSpec {
    /// A healthy machine that correctly asserts Java.
    pub fn healthy(name: &str, memory: i64) -> MachineSpec {
        MachineSpec {
            name: name.to_string(),
            memory,
            arch: "INTEL".into(),
            opsys: "LINUX".into(),
            asserts_java: true,
            installation: Installation::healthy(),
            owner_requirements: "TARGET.ImageSize <= MY.Memory".into(),
        }
    }

    /// A machine whose owner asserts Java but whose installation is dead —
    /// §2.3's "the machine owner might give an incorrect path".
    pub fn misconfigured(name: &str, memory: i64) -> MachineSpec {
        MachineSpec {
            installation: Installation::bad_path(),
            ..MachineSpec::healthy(name, memory)
        }
    }

    /// The insidious variant: the VM starts but the standard library is
    /// missing, so only programs touching the stdlib die.
    pub fn partially_misconfigured(name: &str, memory: i64) -> MachineSpec {
        MachineSpec {
            installation: Installation::missing_stdlib(),
            ..MachineSpec::healthy(name, memory)
        }
    }

    /// Replace the installation (builder style).
    pub fn with_installation(mut self, install: Installation) -> MachineSpec {
        self.installation = install;
        self
    }

    /// The machine's ClassAd. `advertise_java` is the startd's decision
    /// after any self-test — it may differ from the owner's assertion.
    pub fn ad(&self, advertise_java: bool) -> ClassAd {
        let mut ad = ClassAd::new()
            .with_str("Name", &self.name)
            .with_int("Memory", self.memory)
            .with_str("Arch", &self.arch)
            .with_str("OpSys", &self.opsys)
            .with_expr("Requirements", &self.owner_requirements)
            .with_expr("Rank", "0");
        if advertise_java {
            ad = ad.with_bool("HasJava", true);
        }
        ad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classads::prelude::*;
    use gridvm::config::InstallHealth;

    #[test]
    fn healthy_machine_advertises_java_attr_only_when_told() {
        let m = MachineSpec::healthy("node1", 256);
        assert!(m.ad(true).has("HasJava"));
        assert!(!m.ad(false).has("HasJava"));
    }

    #[test]
    fn misconfigured_machines_keep_asserting() {
        let m = MachineSpec::misconfigured("liar", 256);
        assert!(m.asserts_java);
        assert_eq!(m.installation.health, InstallHealth::BadPath);
        let p = MachineSpec::partially_misconfigured("half", 256);
        assert_eq!(p.installation.health, InstallHealth::MissingStdlib);
    }

    #[test]
    fn owner_requirements_gate_big_jobs() {
        let m = MachineSpec::healthy("node1", 100);
        let mad = m.ad(true);
        let small_job = ClassAd::new()
            .with_int("ImageSize", 50)
            .with_expr("Requirements", "true");
        let big_job = ClassAd::new()
            .with_int("ImageSize", 500)
            .with_expr("Requirements", "true");
        assert!(requirements_met(&mad, &small_job));
        assert!(!requirements_met(&mad, &big_job));
    }
}
