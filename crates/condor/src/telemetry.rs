//! Span-journey plumbing shared by the startd and the schedd.
//!
//! An environment failure's [`ScopedError`] is born with a span id (in the
//! Chirp library, the wrapper, or the starter) and rides the execution
//! report back to the schedd. Each daemon advances the journey through the
//! Figure 3 layers *it* hosts — the startd embodies `jvm` and `starter`,
//! the schedd embodies `shadow`, `schedd`, and `user` — consulting the
//! [`LayerStack`] for who manages the error's scope, and emits one
//! [`obs::Event::SpanHop`] per trail hop it appends (or, for the execute
//! side, per hop accumulated in-process before the report). The result:
//! `errorscope::audit::audit_recorded_spans` over the collector agrees
//! with a trail-based audit of the same errors.

use desim::Context;
use errorscope::propagate::LayerStack;
use errorscope::ScopedError;

/// The Figure 3 layers hosted by the execution side (the startd's starter
/// process and the VM it launches), bottom first.
pub const EXECUTE_SIDE_LAYERS: &[&str] = &["jvm", "starter"];

/// The Figure 3 layers hosted by the submission side, bottom first.
pub const SUBMIT_SIDE_LAYERS: &[&str] = &["shadow", "schedd", "user"];

/// Advance a journey through `layers` (stack order, bottom first). At each
/// layer the error is handled if that layer manages its current scope per
/// `stack`, otherwise forwarded; the walk stops at the handling layer.
/// Returns the updated error and whether the journey terminated.
pub fn advance_journey(
    stack: &LayerStack,
    mut err: ScopedError,
    layers: &[&str],
) -> (ScopedError, bool) {
    if err.is_handled() {
        return (err, true);
    }
    for layer in layers {
        if stack.manager_of(err.scope) == Some(*layer) {
            err = err.handle(layer.to_string());
            return (err, true);
        }
        err = err.forwarded(layer.to_string());
    }
    (err, false)
}

/// Emit the journey's trail hops from index `from` onward as span events
/// attributed to the calling actor at the current virtual time.
pub fn emit_journey_hops<M>(ctx: &mut Context<'_, M>, err: &ScopedError, from: usize) {
    for ev in err.trail_events_from(from) {
        ctx.emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errorscope::error::codes;
    use errorscope::propagate::java_universe_stack;
    use errorscope::Scope;

    #[test]
    fn journeys_terminate_at_their_figure3_manager() {
        let stack = java_universe_stack();
        let cases = [
            (Scope::VirtualMachine, "jvm", true),
            (Scope::RemoteResource, "starter", true),
            (Scope::LocalResource, "shadow", false),
            (Scope::Job, "schedd", false),
            (Scope::Network, "schedd", false), // tightest container: pool
        ];
        for (scope, expected, execute_side) in cases {
            let e = ScopedError::escaping(codes::FILESYSTEM_OFFLINE, scope, "io-library", "t");
            let (e, done_exec) = advance_journey(&stack, e, EXECUTE_SIDE_LAYERS);
            assert_eq!(done_exec, execute_side, "{scope}");
            let (e, done) = if done_exec {
                (e, true)
            } else {
                advance_journey(&stack, e, SUBMIT_SIDE_LAYERS)
            };
            assert!(done, "{scope} journey must terminate");
            let last = e.trail.last().unwrap();
            assert_eq!(last.layer.as_ref(), expected, "{scope}");
            assert!(e.is_handled());
        }
    }

    #[test]
    fn advancing_a_handled_journey_is_a_no_op() {
        let stack = java_universe_stack();
        let e = ScopedError::escaping(codes::MISSING_INPUT, Scope::Job, "starter", "gone")
            .forwarded("shadow")
            .handle("schedd");
        let before = e.trail.len();
        let (e, done) = advance_journey(&stack, e, SUBMIT_SIDE_LAYERS);
        assert!(done);
        assert_eq!(e.trail.len(), before);
    }
}
