//! The fault plan: scheduled environmental failures.
//!
//! Experiments describe faults declaratively — "the submitter's file system
//! is offline from t=100s to t=300s", "machine 7 crashes at t=200s" — and
//! every daemon consults the shared plan deterministically. Static
//! misconfiguration lives in [`crate::machine::MachineSpec`]; the plan
//! holds the *timed* faults.

use crate::job::JobId;
use chirp::backend::EnvFault;
use desim::{SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

/// A half-open window of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start (inclusive).
    pub from: SimTime,
    /// End (exclusive); `SimTime::MAX` for "forever".
    pub to: SimTime,
}

impl Window {
    /// A window covering `[from, to)`.
    pub fn new(from: SimTime, to: SimTime) -> Window {
        assert!(from < to, "empty fault window");
        Window { from, to }
    }

    /// A window covering `[from, to)`, or `None` if it would be empty or
    /// inverted. Campaign generators that mass-produce plans use this to
    /// reject bad samples instead of panicking mid-sweep.
    pub fn checked(from: SimTime, to: SimTime) -> Option<Window> {
        (from < to).then_some(Window { from, to })
    }

    /// From `from` onward, forever.
    pub fn from(from: SimTime) -> Window {
        Window {
            from,
            to: SimTime::MAX,
        }
    }

    /// Does the window contain instant `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }

    /// Does the window intersect `[a, b]`?
    pub fn overlaps(&self, a: SimTime, b: SimTime) -> bool {
        self.from <= b && a < self.to
    }
}

#[derive(Debug, Clone)]
struct FsFault {
    schedd: usize,
    window: Window,
    fault: EnvFault,
}

#[derive(Debug, Clone)]
struct MachineCrash {
    machine: usize,
    window: Window,
}

#[derive(Debug, Clone)]
struct OwnerBusy {
    machine: usize,
    window: Window,
}

#[derive(Debug, Clone)]
struct FlockRevocation {
    machine: usize,
    window: Window,
}

/// What a timed network fault does to the fabric while its window is open.
/// Hosts are named by actor id ([`desim::net::HostId`]).
#[derive(Debug, Clone, PartialEq)]
pub enum NetFault {
    /// Every link between a host in `a` and a host in `b` is severed.
    Partition {
        /// One side of the cut.
        a: Vec<usize>,
        /// The other side.
        b: Vec<usize>,
    },
    /// The link `a`–`b` loses each message independently with probability
    /// `prob`.
    Loss {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Per-message loss probability in `[0, 1]`.
        prob: f64,
    },
    /// The link `a`–`b` delivers with `latency` instead of its usual one.
    LatencySpike {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// The spiked base latency.
        latency: SimDuration,
    },
    /// The link `a`–`b` duplicates each delivered message independently
    /// with probability `prob`.
    Duplication {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
}

impl NetFault {
    /// The fault's kind name, as used in `net-fault-applied` events.
    pub fn kind(&self) -> &'static str {
        match self {
            NetFault::Partition { .. } => "partition",
            NetFault::Loss { .. } => "loss",
            NetFault::LatencySpike { .. } => "latency",
            NetFault::Duplication { .. } => "duplication",
        }
    }
}

/// One scheduled network fault: what happens, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedNetFault {
    /// When the fault is in force.
    pub window: Window,
    /// What it does to the fabric.
    pub fault: NetFault,
}

/// Ground truth for one injected fault: what kind of failure it is, and
/// which culprit names a correct post-mortem localization may produce.
///
/// Culprit strings use the vocabulary the `obs-analyze` localizer emits —
/// `"machine:<actor id>"` for a faulty host, `"link:<actor id>"` for a
/// broken path to that host, and `"ckpt-server"` for corrupted checkpoint
/// storage. Network faults label every endpoint of the severed links, so
/// naming any one of them counts as correct: a partition has two ends and
/// the symptoms do not say which side moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultLabel {
    /// The fault's kind (`"partition"`, `"loss"`, `"black-hole"`,
    /// `"corrupt-checkpoint"`…).
    pub kind: String,
    /// Every culprit name an exact localization may report.
    pub culprits: Vec<String>,
}

/// The culprit name for a faulty machine (by actor id).
pub fn culprit_machine(id: usize) -> String {
    format!("machine:{id}")
}

/// The culprit name for a broken network path to host `id`.
pub fn culprit_link(id: usize) -> String {
    format!("link:{id}")
}

/// The culprit name for a faulty remote pool (by pool id).
pub fn culprit_pool(id: u64) -> String {
    format!("pool:{id}")
}

/// The culprit name for corrupted checkpoint storage.
pub const CULPRIT_CKPT_SERVER: &str = "ckpt-server";

fn link_label(kind: &str, hosts: impl IntoIterator<Item = usize>) -> FaultLabel {
    let mut culprits: Vec<String> = hosts.into_iter().map(culprit_link).collect();
    culprits.sort();
    culprits.dedup();
    FaultLabel {
        kind: kind.to_string(),
        culprits,
    }
}

/// Why a fault plan was rejected at build time.
///
/// `Window`'s fields are public (daemons pattern-match on them), so an
/// inverted or zero-length window is constructible by struct literal even
/// though [`Window::new`] asserts. [`FaultPlan::try_build`] is the last
/// line of defense: a campaign generator mass-producing plans fails fast
/// here instead of silently scheduling a fault that can never fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A fault's window is empty or inverted (`from >= to`).
    BadWindow {
        /// Which entry carries the bad window (e.g. `"crash of machine 3"`).
        what: String,
        /// The window's start.
        from: SimTime,
        /// The window's end.
        to: SimTime,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadWindow { what, from, to } => write!(
                f,
                "bad fault window on {what}: [{}us, {}us) is empty or inverted",
                from.as_micros(),
                to.as_micros()
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The label kind used for same-link overlap warnings. Warning labels are
/// advisory — they never widen [`FaultPlan::accepted_culprits`].
pub const OVERLAP_WARNING: &str = "overlap-warning";

/// The complete fault schedule for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    fs_faults: Vec<FsFault>,
    crashes: Vec<MachineCrash>,
    owner_busy: Vec<OwnerBusy>,
    flock_revocations: Vec<FlockRevocation>,
    net_faults: Vec<TimedNetFault>,
    heap_flips: Vec<(JobId, u64)>,
    ckpt_flips: Vec<JobId>,
    labels: Vec<FaultLabel>,
}

impl FaultPlan {
    /// An empty plan: nothing ever breaks.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The submitter file system served by `schedd` suffers `fault` during
    /// `window`.
    pub fn fs_fault(mut self, schedd: usize, window: Window, fault: EnvFault) -> FaultPlan {
        self.fs_faults.push(FsFault {
            schedd,
            window,
            fault,
        });
        self
    }

    /// `machine` is crashed (silent, unreachable) during `window`.
    pub fn crash(mut self, machine: usize, window: Window) -> FaultPlan {
        self.crashes.push(MachineCrash { machine, window });
        self
    }

    /// The owner of `machine` uses it during `window`: visiting jobs are
    /// evicted at the window's start and the machine is withdrawn from the
    /// pool until it ends. Not a fault at all — owner policy — but it
    /// flows through the same schedule. This is the condition Condor's
    /// checkpointing (§2.1, Standard Universe) exists to survive.
    pub fn owner_activity(mut self, machine: usize, window: Window) -> FaultPlan {
        self.owner_busy.push(OwnerBusy { machine, window });
        self
    }

    /// During `window`, `machine` (a remote pool's startd) revokes any
    /// flocked claim at activation time — the remote administrator
    /// reclaims the machine just as the visiting job arrives. The schedd
    /// must convert the revocation into an explicit pool-scope error and
    /// fall back to its home queue.
    pub fn flock_revocation(mut self, machine: usize, window: Window) -> FaultPlan {
        self.flock_revocations
            .push(FlockRevocation { machine, window });
        self
    }

    /// The links between the hosts in `a` and the hosts in `b` are severed
    /// during `window` — "schedd↔machines 3–5 partitioned from t=100s to
    /// t=250s", declaratively.
    pub fn net_partition(
        mut self,
        a: impl IntoIterator<Item = usize>,
        b: impl IntoIterator<Item = usize>,
        window: Window,
    ) -> FaultPlan {
        let a: Vec<usize> = a.into_iter().collect();
        let b: Vec<usize> = b.into_iter().collect();
        self.labels
            .push(link_label("partition", a.iter().chain(&b).copied()));
        self.net_faults.push(TimedNetFault {
            window,
            fault: NetFault::Partition { a, b },
        });
        self
    }

    /// The link `a`–`b` drops each message with probability `prob` during
    /// `window`.
    pub fn net_loss(mut self, a: usize, b: usize, prob: f64, window: Window) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob));
        self.labels.push(link_label("loss", [a, b]));
        self.net_faults.push(TimedNetFault {
            window,
            fault: NetFault::Loss { a, b, prob },
        });
        self
    }

    /// The link `a`–`b` delivers with `latency` during `window`.
    pub fn net_latency_spike(
        mut self,
        a: usize,
        b: usize,
        latency: SimDuration,
        window: Window,
    ) -> FaultPlan {
        self.labels.push(link_label("latency", [a, b]));
        self.net_faults.push(TimedNetFault {
            window,
            fault: NetFault::LatencySpike { a, b, latency },
        });
        self
    }

    /// The link `a`–`b` duplicates each delivered message with probability
    /// `prob` during `window`.
    pub fn net_duplication(mut self, a: usize, b: usize, prob: f64, window: Window) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob));
        self.labels.push(link_label("duplication", [a, b]));
        self.net_faults.push(TimedNetFault {
            window,
            fault: NetFault::Duplication { a, b, prob },
        });
        self
    }

    /// A memory bit-flip lands in `job`'s live heap the next time the job
    /// is restored from a checkpoint — *after* the image digest has been
    /// validated, so no checksum can see it. `bit` seeds the flip's
    /// placement (it is reduced modulo the heap's size when it lands).
    /// This is the silent-data-corruption class the FNV-1a digests cannot
    /// catch: the run completes and the answer is wrong.
    ///
    /// No ground-truth label is attached here: which machine performs the
    /// restore is not known at plan time, and the injector's own
    /// `mem-flip` event records the culprit at the instant of the flip.
    pub fn heap_flip(mut self, job: JobId, bit: u64) -> FaultPlan {
        self.heap_flips.push((job, bit));
        self
    }

    /// The checkpoint server flips one bit of every image stored for
    /// `job` — damage in storage, *before* the digest is rechecked, which
    /// the FNV-1a trailer must therefore catch on restore.
    pub fn ckpt_flip(mut self, job: JobId) -> FaultPlan {
        self.ckpt_flips.push(job);
        self.labels.push(FaultLabel {
            kind: "ckpt-flip".to_string(),
            culprits: vec![CULPRIT_CKPT_SERVER.to_string()],
        });
        self
    }

    /// The heap-flip bit seed scheduled for `job`, if any.
    pub fn heap_flip_for(&self, job: JobId) -> Option<u64> {
        self.heap_flips
            .iter()
            .find(|(j, _)| *j == job)
            .map(|(_, bit)| *bit)
    }

    /// Every job whose stored checkpoint images get a flipped bit.
    pub fn ckpt_flip_jobs(&self) -> &[JobId] {
        &self.ckpt_flips
    }

    /// Declare ground truth for a fault the plan cannot see — a statically
    /// misconfigured machine, a corrupting checkpoint server — so a
    /// campaign built from this plan is self-describing: the localizer's
    /// verdict can be checked against [`FaultPlan::ground_truth`] without
    /// the harness keeping a side table.
    pub fn expect(mut self, kind: &str, culprits: impl IntoIterator<Item = String>) -> FaultPlan {
        self.labels.push(FaultLabel {
            kind: kind.to_string(),
            culprits: culprits.into_iter().collect(),
        });
        self
    }

    /// Ground-truth labels for every declared fault: the timed network
    /// faults label themselves (any endpoint of a severed link is an
    /// acceptable culprit); machine-level and checkpoint faults are added
    /// via [`FaultPlan::expect`].
    pub fn ground_truth(&self) -> &[FaultLabel] {
        &self.labels
    }

    /// Every culprit name any declared fault accepts — the union of
    /// [`FaultPlan::ground_truth`]'s label sets. Advisory
    /// [`OVERLAP_WARNING`] labels are excluded: a warning is not a fault.
    pub fn accepted_culprits(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .labels
            .iter()
            .filter(|l| l.kind != OVERLAP_WARNING)
            .flat_map(|l| l.culprits.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Every window in the plan, paired with a description of what it
    /// schedules.
    fn windows(&self) -> Vec<(String, Window)> {
        let mut out = Vec::new();
        for f in &self.fs_faults {
            out.push((format!("fs fault at schedd {}", f.schedd), f.window));
        }
        for c in &self.crashes {
            out.push((format!("crash of machine {}", c.machine), c.window));
        }
        for o in &self.owner_busy {
            out.push((format!("owner activity on machine {}", o.machine), o.window));
        }
        for r in &self.flock_revocations {
            out.push((
                format!("flock revocation on machine {}", r.machine),
                r.window,
            ));
        }
        for n in &self.net_faults {
            out.push((format!("net {}", n.fault.kind()), n.window));
        }
        out
    }

    /// The undirected links a network fault touches, as normalized
    /// `(low, high)` host pairs.
    fn fault_links(fault: &NetFault) -> Vec<(usize, usize)> {
        let norm = |a: usize, b: usize| (a.min(b), a.max(b));
        match fault {
            NetFault::Partition { a, b } => a
                .iter()
                .flat_map(|&x| b.iter().map(move |&y| norm(x, y)))
                .collect(),
            NetFault::Loss { a, b, .. }
            | NetFault::LatencySpike { a, b, .. }
            | NetFault::Duplication { a, b, .. } => vec![norm(*a, *b)],
        }
    }

    /// Validate and freeze into a shareable handle.
    ///
    /// Rejects any entry whose window is empty or inverted. Two network
    /// faults whose windows overlap on the same link are legal (the later
    /// declaration wins while both are open) but usually a generator bug,
    /// so each such pair gets an advisory [`OVERLAP_WARNING`] label naming
    /// the shared link.
    pub fn try_build(mut self) -> Result<Arc<FaultPlan>, PlanError> {
        for (what, w) in self.windows() {
            if w.from >= w.to {
                return Err(PlanError::BadWindow {
                    what,
                    from: w.from,
                    to: w.to,
                });
            }
        }
        let mut warned: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.net_faults.len() {
            for j in i + 1..self.net_faults.len() {
                let (a, b) = (&self.net_faults[i], &self.net_faults[j]);
                // Half-open windows intersect iff each starts before the
                // other ends.
                if !(a.window.from < b.window.to && b.window.from < a.window.to) {
                    continue;
                }
                for link in FaultPlan::fault_links(&a.fault) {
                    if FaultPlan::fault_links(&b.fault).contains(&link) && !warned.contains(&link) {
                        warned.push(link);
                        self.labels.push(FaultLabel {
                            kind: OVERLAP_WARNING.to_string(),
                            culprits: vec![culprit_link(link.0), culprit_link(link.1)],
                        });
                    }
                }
            }
        }
        Ok(Arc::new(self))
    }

    /// Freeze into a shareable handle, panicking on a malformed plan.
    /// Hand-written plans use this; generators should prefer
    /// [`FaultPlan::try_build`].
    pub fn build(self) -> Arc<FaultPlan> {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"))
    }

    /// The scheduled network faults, in declaration order.
    pub fn net_faults(&self) -> &[TimedNetFault] {
        &self.net_faults
    }

    /// Every instant at which some network fault's window opens or closes —
    /// the moments the fabric must be reconfigured. Sorted, deduplicated,
    /// `SimTime::MAX` ("forever") excluded.
    pub fn net_fault_edges(&self) -> Vec<SimTime> {
        let mut edges: Vec<SimTime> = self
            .net_faults
            .iter()
            .flat_map(|f| [f.window.from, f.window.to])
            .filter(|t| *t != SimTime::MAX)
            .collect();
        edges.sort();
        edges.dedup();
        edges
    }

    /// The file-system fault (if any) affecting `schedd`'s home file system
    /// at any point in `[start, end]`. The earliest-declared overlapping
    /// fault wins.
    pub fn fs_fault_during(&self, schedd: usize, start: SimTime, end: SimTime) -> Option<EnvFault> {
        self.fs_faults
            .iter()
            .find(|f| f.schedd == schedd && f.window.overlaps(start, end))
            .map(|f| f.fault)
    }

    /// Is the file system faulty at exactly `t`?
    pub fn fs_fault_at(&self, schedd: usize, t: SimTime) -> Option<EnvFault> {
        self.fs_faults
            .iter()
            .find(|f| f.schedd == schedd && f.window.contains(t))
            .map(|f| f.fault)
    }

    /// Is `machine` crashed at instant `t`?
    pub fn crashed_at(&self, machine: usize, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.machine == machine && c.window.contains(t))
    }

    /// Does `machine` crash at any point during `[start, end]`?
    pub fn crashes_during(&self, machine: usize, start: SimTime, end: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.machine == machine && c.window.overlaps(start, end))
    }

    /// Does `machine` revoke flocked claims at instant `t`?
    pub fn flock_revoked_at(&self, machine: usize, t: SimTime) -> bool {
        self.flock_revocations
            .iter()
            .any(|r| r.machine == machine && r.window.contains(t))
    }

    /// Is the owner using `machine` at instant `t`?
    pub fn owner_busy_at(&self, machine: usize, t: SimTime) -> bool {
        self.owner_busy
            .iter()
            .any(|o| o.machine == machine && o.window.contains(t))
    }

    /// The first instant strictly after `start` and at or before `end` at
    /// which the owner reclaims `machine`, if any — the eviction moment
    /// for a job running over `[start, end]`.
    pub fn owner_returns_during(
        &self,
        machine: usize,
        start: SimTime,
        end: SimTime,
    ) -> Option<SimTime> {
        self.owner_busy
            .iter()
            .filter(|o| o.machine == machine && o.window.from > start && o.window.from <= end)
            .map(|o| o.window.from)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn window_membership() {
        let w = Window::new(t(10), t(20));
        assert!(!w.contains(t(9)));
        assert!(w.contains(t(10)));
        assert!(w.contains(t(19)));
        assert!(!w.contains(t(20)));
        assert!(Window::from(t(5)).contains(t(1_000_000)));
    }

    #[test]
    fn window_overlap() {
        let w = Window::new(t(10), t(20));
        assert!(w.overlaps(t(0), t(10)));
        assert!(w.overlaps(t(15), t(16)));
        assert!(w.overlaps(t(19), t(30)));
        assert!(!w.overlaps(t(20), t(30)));
        assert!(!w.overlaps(t(0), t(9)));
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        let _ = Window::new(t(5), t(5));
    }

    #[test]
    fn window_boundary_cases() {
        // Adjacent windows share an edge but no instant: [10,20) ends
        // exactly where [20,30) begins.
        let first = Window::new(t(10), t(20));
        let second = Window::new(t(20), t(30));
        assert!(!first.contains(t(20)));
        assert!(second.contains(t(20)));
        // A zero-length query interval [20,20] touches only the second.
        assert!(!first.overlaps(t(20), t(20)));
        assert!(second.overlaps(t(20), t(20)));
        // ...and [19,19] only the first.
        assert!(first.overlaps(t(19), t(19)));
        assert!(!second.overlaps(t(19), t(19)));

        // "Forever" windows: SimTime::MAX is *exclusive*, so even a
        // forever window does not contain the end of time itself, nor
        // overlap the zero-length query sitting exactly there...
        let forever = Window::from(t(5));
        assert!(!forever.contains(SimTime::MAX));
        assert!(!forever.overlaps(SimTime::MAX, SimTime::MAX));
        // ...but it overlaps any interval that starts before it.
        assert!(forever.overlaps(t(0), SimTime::MAX));
        assert!(forever.overlaps(t(5), t(5)));
        // A bounded window never overlaps a query starting at its end.
        let w = Window::new(t(10), t(20));
        assert!(!w.overlaps(t(20), SimTime::MAX));
        // A window reaching MAX contains every representable instant
        // before it.
        let to_max = Window::new(t(10), SimTime::MAX);
        assert!(to_max.contains(SimTime::from_micros(SimTime::MAX.as_micros() - 1)));
    }

    #[test]
    fn net_fault_plan_and_edges() {
        let plan = FaultPlan::none()
            .net_partition([1], [4, 5], Window::new(t(100), t(250)))
            .net_loss(1, 3, 0.2, Window::new(t(300), t(400)))
            .net_latency_spike(
                1,
                2,
                SimDuration::from_millis(80),
                Window::new(t(100), t(300)),
            )
            .net_duplication(1, 2, 0.3, Window::from(t(50)))
            .build();
        assert_eq!(plan.net_faults().len(), 4);
        assert_eq!(plan.net_faults()[0].fault.kind(), "partition");
        assert_eq!(plan.net_faults()[1].fault.kind(), "loss");
        assert_eq!(plan.net_faults()[2].fault.kind(), "latency");
        assert_eq!(plan.net_faults()[3].fault.kind(), "duplication");
        // Edges: sorted, deduplicated (100 appears twice), MAX excluded.
        assert_eq!(
            plan.net_fault_edges(),
            vec![t(50), t(100), t(250), t(300), t(400)]
        );
        assert!(FaultPlan::none().net_fault_edges().is_empty());
    }

    #[test]
    fn plans_are_self_describing() {
        let plan = FaultPlan::none()
            .net_partition([1], [4, 5], Window::new(t(100), t(250)))
            .net_loss(1, 3, 0.2, Window::new(t(300), t(400)))
            .expect("black-hole", [culprit_machine(2)])
            .expect("corrupt-checkpoint", [CULPRIT_CKPT_SERVER.to_string()])
            .build();
        let labels = plan.ground_truth();
        assert_eq!(labels.len(), 4);
        assert_eq!(labels[0].kind, "partition");
        assert_eq!(labels[0].culprits, vec!["link:1", "link:4", "link:5"]);
        assert_eq!(labels[1].culprits, vec!["link:1", "link:3"]);
        assert_eq!(labels[2].culprits, vec!["machine:2"]);
        assert_eq!(labels[3].culprits, vec!["ckpt-server"]);
        assert_eq!(
            plan.accepted_culprits(),
            vec![
                "ckpt-server",
                "link:1",
                "link:3",
                "link:4",
                "link:5",
                "machine:2"
            ]
        );
        // An unlabeled plan accepts nothing.
        assert!(FaultPlan::none().accepted_culprits().is_empty());
    }

    #[test]
    fn fs_faults_are_per_schedd() {
        let plan = FaultPlan::none()
            .fs_fault(1, Window::new(t(100), t(200)), EnvFault::FilesystemOffline)
            .build();
        assert_eq!(
            plan.fs_fault_at(1, t(150)),
            Some(EnvFault::FilesystemOffline)
        );
        assert_eq!(plan.fs_fault_at(2, t(150)), None);
        assert_eq!(plan.fs_fault_at(1, t(250)), None);
        assert_eq!(
            plan.fs_fault_during(1, t(0), t(100)),
            Some(EnvFault::FilesystemOffline)
        );
        assert_eq!(plan.fs_fault_during(1, t(0), t(99)), None);
    }

    #[test]
    fn crashes_are_per_machine() {
        let plan = FaultPlan::none().crash(3, Window::from(t(50))).build();
        assert!(!plan.crashed_at(3, t(49)));
        assert!(plan.crashed_at(3, t(50)));
        assert!(plan.crashed_at(3, t(1_000_000)));
        assert!(!plan.crashed_at(4, t(100)));
        assert!(plan.crashes_during(3, t(0), t(60)));
        assert!(!plan.crashes_during(3, t(0), t(49)));
    }

    #[test]
    fn empty_plan_is_quiet() {
        let plan = FaultPlan::none().build();
        assert_eq!(plan.fs_fault_at(0, t(100)), None);
        assert!(!plan.crashed_at(0, t(100)));
        assert!(!plan.owner_busy_at(0, t(100)));
        assert_eq!(plan.owner_returns_during(0, t(0), t(100)), None);
    }

    #[test]
    fn checked_window_rejects_empty_and_inverted() {
        assert_eq!(
            Window::checked(t(10), t(20)),
            Some(Window::new(t(10), t(20)))
        );
        assert_eq!(Window::checked(t(10), t(10)), None);
        assert_eq!(Window::checked(t(20), t(10)), None);
    }

    #[test]
    fn try_build_rejects_inverted_windows() {
        // Window's fields are pub, so an inverted window is constructible
        // by literal even though Window::new asserts.
        let bad = Window {
            from: t(20),
            to: t(10),
        };
        let err = FaultPlan::none().crash(3, bad).try_build().unwrap_err();
        match &err {
            PlanError::BadWindow { what, from, to } => {
                assert_eq!(what, "crash of machine 3");
                assert_eq!((*from, *to), (t(20), t(10)));
            }
        }
        assert!(err.to_string().contains("crash of machine 3"));

        let zero = Window {
            from: t(5),
            to: t(5),
        };
        assert!(FaultPlan::none()
            .owner_activity(1, zero)
            .try_build()
            .is_err());
        assert!(FaultPlan::none()
            .net_loss(1, 2, 0.1, bad)
            .try_build()
            .is_err());
        assert!(FaultPlan::none()
            .fs_fault(0, bad, EnvFault::FilesystemOffline)
            .try_build()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn build_panics_on_inverted_window() {
        let bad = Window {
            from: t(20),
            to: t(10),
        };
        let _ = FaultPlan::none().crash(3, bad).build();
    }

    #[test]
    fn overlapping_same_link_faults_get_warning_labels() {
        // Loss and a partition covering link 1–4 at once: warn-labeled.
        let plan = FaultPlan::none()
            .net_loss(1, 4, 0.2, Window::new(t(100), t(300)))
            .net_partition([1], [4, 5], Window::new(t(200), t(400)))
            .build();
        let warnings: Vec<_> = plan
            .ground_truth()
            .iter()
            .filter(|l| l.kind == OVERLAP_WARNING)
            .collect();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].culprits, vec!["link:1", "link:4"]);
        // Advisory only: the warning never widens the accepted culprits.
        assert_eq!(plan.accepted_culprits(), vec!["link:1", "link:4", "link:5"]);

        // Disjoint windows on the same link: no warning.
        let quiet = FaultPlan::none()
            .net_loss(1, 4, 0.2, Window::new(t(100), t(200)))
            .net_loss(4, 1, 0.5, Window::new(t(200), t(300)))
            .build();
        assert!(quiet
            .ground_truth()
            .iter()
            .all(|l| l.kind != OVERLAP_WARNING));

        // Overlapping windows on *different* links: no warning either.
        let other = FaultPlan::none()
            .net_loss(1, 4, 0.2, Window::new(t(100), t(300)))
            .net_loss(1, 5, 0.2, Window::new(t(100), t(300)))
            .build();
        assert!(other
            .ground_truth()
            .iter()
            .all(|l| l.kind != OVERLAP_WARNING));
    }

    #[test]
    fn flip_schedules_are_queryable() {
        let plan = FaultPlan::none()
            .heap_flip(7, 0xDEAD_BEEF)
            .ckpt_flip(3)
            .ckpt_flip(9)
            .build();
        assert_eq!(plan.heap_flip_for(7), Some(0xDEAD_BEEF));
        assert_eq!(plan.heap_flip_for(8), None);
        assert_eq!(plan.ckpt_flip_jobs(), &[3, 9]);
        // ckpt flips are self-describing (the server is the culprit);
        // heap flips are not labeled — the mem-flip event names the
        // machine at the instant of injection.
        let kinds: Vec<_> = plan
            .ground_truth()
            .iter()
            .map(|l| l.kind.as_str())
            .collect();
        assert_eq!(kinds, vec!["ckpt-flip", "ckpt-flip"]);
        assert_eq!(plan.accepted_culprits(), vec![CULPRIT_CKPT_SERVER]);
    }

    #[test]
    fn flock_revocation_windows() {
        let plan = FaultPlan::none()
            .flock_revocation(7, Window::new(t(100), t(200)))
            .build();
        assert!(!plan.flock_revoked_at(7, t(99)));
        assert!(plan.flock_revoked_at(7, t(100)));
        assert!(plan.flock_revoked_at(7, t(199)));
        assert!(!plan.flock_revoked_at(7, t(200)));
        assert!(!plan.flock_revoked_at(8, t(150)));
        assert_eq!(culprit_pool(3), "pool:3");
        // Revocation windows are validated like every other entry.
        let bad = Window {
            from: t(20),
            to: t(10),
        };
        assert!(FaultPlan::none()
            .flock_revocation(7, bad)
            .try_build()
            .is_err());
    }

    #[test]
    fn owner_activity_windows() {
        let plan = FaultPlan::none()
            .owner_activity(2, Window::new(t(100), t(200)))
            .owner_activity(2, Window::new(t(500), t(600)))
            .build();
        assert!(!plan.owner_busy_at(2, t(99)));
        assert!(plan.owner_busy_at(2, t(150)));
        assert!(!plan.owner_busy_at(2, t(200)));
        assert!(!plan.owner_busy_at(3, t(150)));
        // A job running [50, 300] is evicted at 100.
        assert_eq!(plan.owner_returns_during(2, t(50), t(300)), Some(t(100)));
        // A job running [300, 550] is evicted at 500 (earliest onset).
        assert_eq!(plan.owner_returns_during(2, t(300), t(550)), Some(t(500)));
        // A job starting exactly at an onset is not "interrupted" by it.
        assert_eq!(plan.owner_returns_during(2, t(100), t(150)), None);
        // A job elsewhere is untouched.
        assert_eq!(plan.owner_returns_during(1, t(0), t(1000)), None);
    }
}
