//! The network-fault driver: applies the plan's timed network faults to
//! the simulated fabric as the clock crosses window edges.
//!
//! Filesystem faults and crashes are *consulted* by the affected daemons,
//! but network faults must reconfigure the shared fabric itself — so one
//! dedicated actor walks [`crate::faults::FaultPlan::net_fault_edges`],
//! wakes at every edge, and applies or clears each fault whose window
//! opened or closed. Everything is scheduled up front from the declarative
//! plan, so a run with the same seed and plan reconfigures the fabric at
//! identical instants: chaos, deterministically.

use crate::faults::{FaultPlan, NetFault};
use crate::msg::Msg;
use desim::prelude::*;
use std::sync::Arc;

/// The actor. Registered by the pool builder when the plan schedules any
/// network faults; harmless (and never woken) otherwise.
pub struct NetFaultDriver {
    plan: Arc<FaultPlan>,
    /// Which faults are currently applied (parallel to `plan.net_faults()`).
    active: Vec<bool>,
}

impl NetFaultDriver {
    /// A driver for `plan`.
    pub fn new(plan: Arc<FaultPlan>) -> NetFaultDriver {
        let n = plan.net_faults().len();
        NetFaultDriver {
            plan,
            active: vec![false; n],
        }
    }

    fn apply(fault: &NetFault, net: &mut Network) {
        match fault {
            NetFault::Partition { a, b } => {
                for &x in a {
                    for &y in b {
                        net.partition(x, y);
                    }
                }
            }
            NetFault::Loss { a, b, prob } => net.set_link_loss(*a, *b, *prob),
            NetFault::LatencySpike { a, b, latency } => net.set_link_latency(*a, *b, *latency),
            NetFault::Duplication { a, b, prob } => net.set_link_duplication(*a, *b, *prob),
        }
    }

    fn clear(fault: &NetFault, net: &mut Network) {
        match fault {
            NetFault::Partition { a, b } => {
                for &x in a {
                    for &y in b {
                        net.heal(x, y);
                    }
                }
            }
            NetFault::Loss { a, b, .. } => net.clear_link_loss(*a, *b),
            NetFault::LatencySpike { a, b, .. } => net.clear_link_latency(*a, *b),
            NetFault::Duplication { a, b, .. } => net.clear_link_duplication(*a, *b),
        }
    }

    fn link_label(fault: &NetFault) -> String {
        match fault {
            NetFault::Partition { a, b } => {
                let fmt = |v: &[usize]| {
                    v.iter()
                        .map(|h| h.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!("{}|{}", fmt(a), fmt(b))
            }
            NetFault::Loss { a, b, .. }
            | NetFault::LatencySpike { a, b, .. }
            | NetFault::Duplication { a, b, .. } => {
                format!("{}-{}", a.min(b), a.max(b))
            }
        }
    }

    /// Bring the fabric in line with the plan at `ctx.now`, emitting one
    /// `net-fault-applied` event per fault whose state flipped.
    fn reconcile(&mut self, ctx: &mut Context<'_, Msg>) {
        let plan = Arc::clone(&self.plan);
        for (i, tf) in plan.net_faults().iter().enumerate() {
            let should = tf.window.contains(ctx.now);
            if should == self.active[i] {
                continue;
            }
            if should {
                Self::apply(&tf.fault, ctx.net);
            } else {
                Self::clear(&tf.fault, ctx.net);
            }
            self.active[i] = should;
            ctx.emit(obs::Event::NetFaultApplied {
                kind: tf.fault.kind().to_string(),
                link: Self::link_label(&tf.fault),
                active: should,
            });
            ctx.trace_with(|| {
                format!(
                    "net fault {} {} on {}",
                    tf.fault.kind(),
                    if should { "applied" } else { "cleared" },
                    Self::link_label(&tf.fault),
                )
            });
        }
    }
}

impl Actor<Msg> for NetFaultDriver {
    fn name(&self) -> String {
        "netfaults".into()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // Wake at every window edge. Edges at t=0 still get a tick (1µs in,
        // before any network message can be in flight past it).
        let plan = Arc::clone(&self.plan);
        for edge in plan.net_fault_edges() {
            ctx.send_self_after(edge.since(ctx.now), Msg::NetFaultTick);
        }
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if let Msg::NetFaultTick = msg {
            self.reconcile(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Window;
    use desim::{SimDuration, SimTime, World};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn driver_applies_and_clears_at_window_edges() {
        let plan = FaultPlan::none()
            .net_partition([1], [2], Window::new(t(100), t(200)))
            .net_loss(1, 3, 1.0, Window::new(t(150), t(250)))
            .build();
        let mut w: World<Msg> = World::new(1);
        // Actors 0..3 exist only as host ids.
        let d = w.add_actor(Box::new(NetFaultDriver::new(Arc::clone(&plan))));
        assert_eq!(d, 0);
        let mut rng = desim::SimRng::seed_from_u64(9);

        w.run_until(t(50));
        assert!(!w.net_mut().is_partitioned(1, 2));
        w.run_until(t(100));
        assert!(w.net_mut().is_partitioned(1, 2), "partition applied at 100");
        assert!(
            w.net_mut().transit(&mut rng, 1, 3).is_some(),
            "loss not yet active"
        );
        w.run_until(t(150));
        assert!(
            w.net_mut().transit(&mut rng, 1, 3).is_none(),
            "total loss active from 150"
        );
        w.run_until(t(200));
        assert!(!w.net_mut().is_partitioned(1, 2), "healed at 200");
        assert!(
            w.net_mut().transit(&mut rng, 1, 3).is_none(),
            "loss still on"
        );
        w.run_until(t(250));
        assert!(
            w.net_mut().transit(&mut rng, 1, 3).is_some(),
            "loss cleared"
        );

        // Four transitions → four events, in time order.
        let kinds: Vec<(u64, String, bool)> = w
            .telemetry()
            .iter()
            .filter_map(|r| match &r.event {
                obs::Event::NetFaultApplied { kind, active, .. } => {
                    Some((r.at_us, kind.clone(), *active))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                (t(100).as_micros(), "partition".into(), true),
                (t(150).as_micros(), "loss".into(), true),
                (t(200).as_micros(), "partition".into(), false),
                (t(250).as_micros(), "loss".into(), false),
            ]
        );
    }

    #[test]
    fn latency_spike_and_duplication_windows() {
        let plan = FaultPlan::none()
            .net_latency_spike(
                0,
                2,
                SimDuration::from_millis(500),
                Window::new(t(10), t(20)),
            )
            .net_duplication(0, 2, 1.0, Window::new(t(10), t(20)))
            .build();
        let mut w: World<Msg> = World::new(1);
        w.add_actor(Box::new(NetFaultDriver::new(plan)));
        let mut rng = desim::SimRng::seed_from_u64(9);
        w.run_until(t(15));
        assert_eq!(
            w.net_mut().transit(&mut rng, 0, 2),
            Some(SimDuration::from_millis(500))
        );
        assert!(matches!(
            w.net_mut().fate(&mut rng, 0, 2),
            desim::Fate::Duplicate(_, _)
        ));
        w.run_until(t(25));
        assert_eq!(
            w.net_mut().transit(&mut rng, 0, 2),
            Some(SimDuration::from_millis(1)),
            "spike cleared, default restored"
        );
        assert!(matches!(
            w.net_mut().fate(&mut rng, 0, 2),
            desim::Fate::Deliver(_)
        ));
    }
}
