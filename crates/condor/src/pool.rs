//! Pool assembly: build a whole simulated grid in a few lines.
//!
//! [`PoolBuilder`] wires a matchmaker, one schedd, and any number of
//! startds into a [`desim::World`], submits jobs, and runs to quiescence,
//! returning a [`RunReport`] with the schedd's metrics, the user log, each
//! job's attempt history, and per-machine statistics.

use crate::ckptserver::{CkptServer, CkptServerStats};
use crate::faults::FaultPlan;
use crate::job::{JobRecord, JobSpec};
use crate::machine::MachineSpec;
use crate::matchmaker::{Matchmaker, MatchmakerStats};
use crate::metrics::{MachineStats, Metrics};
use crate::msg::Msg;
use crate::schedd::{Schedd, ScheddPolicy, UserEvent};
use crate::startd::{Startd, StartdPolicy};
use chirp::cookie::Cookie;
use desim::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One schedd's share of a finished run (for pools with extra schedds).
#[derive(Debug)]
pub struct ScheddSummary {
    /// The actor id of this schedd.
    pub id: usize,
    /// Its counters.
    pub metrics: Metrics,
    /// Its users' view.
    pub user_log: Vec<UserEvent>,
    /// Its job records.
    pub jobs: BTreeMap<u32, JobRecord>,
}

/// Everything a finished run yields.
#[derive(Debug)]
pub struct RunReport {
    /// The primary schedd's counters.
    pub metrics: Metrics,
    /// The primary schedd users' view of the queue.
    pub user_log: Vec<UserEvent>,
    /// The primary schedd's final job records (attempt histories included).
    pub jobs: BTreeMap<u32, JobRecord>,
    /// Additional schedds (submitters), in registration order.
    pub extra_schedds: Vec<ScheddSummary>,
    /// Per-machine statistics, keyed by actor id.
    pub machines: BTreeMap<usize, MachineStats>,
    /// The checkpoint server's traffic counters, when the pool ran one.
    pub ckpt_server: Option<CkptServerStats>,
    /// The matchmaker's negotiation counters (pairs evaluated, cache hits,
    /// cycles, …).
    pub matchmaker: MatchmakerStats,
    /// The run's typed event stream: protocol events, remote I/O
    /// operations, and error-journey spans. Survives `without_trace()`.
    pub telemetry: obs::Collector,
    /// What the simulated fabric did to messages: per-link drop and
    /// duplication counts.
    pub net: desim::NetStats,
    /// Virtual time when the run stopped.
    pub finished_at: SimTime,
    /// Did every job reach a terminal state?
    pub quiescent: bool,
    /// Events processed by the simulator.
    pub events: u64,
}

impl RunReport {
    /// Project the run's counters into a metrics registry: the primary
    /// schedd's metrics plus per-machine statistics, ready for
    /// [`obs::Registry::snapshot_json`].
    pub fn registry(&self) -> obs::Registry {
        let mut reg = self.metrics.registry();
        for stats in self.machines.values() {
            stats.register_into(&mut reg);
        }
        // Deterministic matchmaker counters only: the wall-clock cycle
        // histogram stays out so same-seed snapshots remain byte-identical.
        self.matchmaker.register_into(&mut reg);
        // Stream completeness: a non-zero drop count means the event ring
        // evicted old records and the exported stream is only a suffix.
        reg.counter_add("events_dropped", &[], self.telemetry.evicted());
        reg.counter_add(
            "events_recorded",
            &[],
            self.telemetry.len() as u64 + self.telemetry.evicted(),
        );
        for (&(a, b), &n) in &self.net.dropped {
            let link = format!("{a}-{b}");
            reg.counter_add("net_msgs_dropped", &[("link", &link)], n);
        }
        for (&(a, b), &n) in &self.net.duplicated {
            let link = format!("{a}-{b}");
            reg.counter_add("net_msgs_duplicated", &[("link", &link)], n);
        }
        reg
    }

    /// Wall-clock (virtual) completion time of the latest-finishing job.
    pub fn makespan(&self) -> Option<SimTime> {
        self.jobs.values().filter_map(|j| j.finished).max()
    }

    /// Render the queue the way `condor_q` would: one line per job with
    /// owner, state, attempts, and turnaround.
    pub fn render_queue(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<10} {:<22} {:>8} {:>12}",
            "ID", "OWNER", "STATE", "ATTEMPTS", "TURNAROUND"
        );
        for rec in self.jobs.values() {
            let state = match &rec.state {
                crate::job::JobState::Idle => "idle".to_string(),
                crate::job::JobState::Claiming { machine } => format!("claiming m{machine}"),
                crate::job::JobState::Running { machine } => format!("running on m{machine}"),
                crate::job::JobState::Waiting => "waiting (retry)".to_string(),
                crate::job::JobState::Completed { result } => format!("done: {result}"),
                crate::job::JobState::Unexecutable { .. } => "unexecutable".to_string(),
                crate::job::JobState::AwaitingPostmortem { .. } => {
                    "awaiting postmortem".to_string()
                }
                crate::job::JobState::Held { .. } => "held".to_string(),
            };
            let turnaround = rec
                .turnaround()
                .map(|d| format!("{:.0}s", d.as_secs_f64()))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:>4}  {:<10} {:<22} {:>8} {:>12}",
                rec.spec.id,
                rec.spec.owner,
                state,
                rec.attempts.len(),
                turnaround
            );
        }
        out
    }

    /// Render one job's attempt history — Figure 3's "Summary of All
    /// Execution Attempts + Program Result (If Any)".
    pub fn render_history(&self, job: u32) -> String {
        use std::fmt::Write;
        let Some(rec) = self.jobs.get(&job) else {
            return format!("no such job {job}\n");
        };
        let mut out = String::new();
        let _ = writeln!(out, "job {} ({}):", rec.spec.id, rec.spec.owner);
        for (i, a) in rec.attempts.iter().enumerate() {
            let _ = writeln!(
                out,
                "  attempt {}: machine {} [{} .. {}] -> {} ({})",
                i + 1,
                a.machine,
                a.started,
                a.ended,
                a.scope.map(|s| s.name()).unwrap_or("vanished"),
                a.note
            );
        }
        let _ = writeln!(out, "  state: {:?}", rec.state);
        out
    }
}

/// Builder for a simulated pool.
pub struct PoolBuilder {
    seed: u64,
    machines: Vec<MachineSpec>,
    jobs: Vec<JobSpec>,
    home_files: Vec<(String, Vec<u8>)>,
    extra_schedd_jobs: Vec<Vec<JobSpec>>,
    schedd_policy: ScheddPolicy,
    startd_policy: StartdPolicy,
    plan: FaultPlan,
    trace: bool,
    ckpt_server: bool,
    ckpt_corrupt_prefixes: Vec<String>,
}

impl PoolBuilder {
    /// A new pool with the given random seed.
    pub fn new(seed: u64) -> PoolBuilder {
        PoolBuilder {
            seed,
            machines: Vec::new(),
            jobs: Vec::new(),
            home_files: Vec::new(),
            extra_schedd_jobs: Vec::new(),
            schedd_policy: ScheddPolicy::default(),
            startd_policy: StartdPolicy::default(),
            plan: FaultPlan::none(),
            trace: true,
            ckpt_server: false,
            ckpt_corrupt_prefixes: Vec::new(),
        }
    }

    /// Add one machine.
    pub fn machine(mut self, spec: MachineSpec) -> PoolBuilder {
        self.machines.push(spec);
        self
    }

    /// Add several machines.
    pub fn machines(mut self, specs: impl IntoIterator<Item = MachineSpec>) -> PoolBuilder {
        self.machines.extend(specs);
        self
    }

    /// Submit one job.
    pub fn job(mut self, spec: JobSpec) -> PoolBuilder {
        self.jobs.push(spec);
        self
    }

    /// Submit several jobs.
    pub fn jobs(mut self, specs: impl IntoIterator<Item = JobSpec>) -> PoolBuilder {
        self.jobs.extend(specs);
        self
    }

    /// Place a file in the submitter's home file system.
    pub fn home_file(mut self, path: &str, data: &[u8]) -> PoolBuilder {
        self.home_files.push((path.to_string(), data.to_vec()));
        self
    }

    /// Add another submitter: a second (third, …) schedd with its own job
    /// queue, competing for the same pool through the one matchmaker —
    /// "each participant of the system is represented by a daemon process
    /// that represents its interests" (§2.1). Extra schedds are registered
    /// *after* the machines, so machine actor ids are unaffected.
    pub fn extra_schedd(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> PoolBuilder {
        self.extra_schedd_jobs.push(jobs.into_iter().collect());
        self
    }

    /// Set the schedd policy.
    pub fn schedd_policy(mut self, p: ScheddPolicy) -> PoolBuilder {
        self.schedd_policy = p;
        self
    }

    /// Set the startd policy (applies to every machine).
    pub fn startd_policy(mut self, p: StartdPolicy) -> PoolBuilder {
        self.startd_policy = p;
        self
    }

    /// Install a fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> PoolBuilder {
        self.plan = plan;
        self
    }

    /// Run a checkpoint server: Standard-universe evictions ship a real
    /// checkpoint image there, and later attempts resume from it instead
    /// of merely trusting the schedd's progress ledger.
    pub fn with_checkpoint_server(mut self) -> PoolBuilder {
        self.ckpt_server = true;
        self
    }

    /// Fault injection: corrupt every checkpoint image the server stores
    /// for `job` (primary-schedd job ids). The corruption surfaces as an
    /// explicit discard at resume time, never as a crash in the program.
    pub fn corrupt_checkpoints_for(mut self, job: u32) -> PoolBuilder {
        self.ckpt_corrupt_prefixes
            .push(format!("ckpt/job{}/", u64::from(job)));
        self
    }

    /// Disable tracing (large sweeps).
    pub fn without_trace(mut self) -> PoolBuilder {
        self.trace = false;
        self
    }

    /// Actor ids are assigned in order: matchmaker = 0, schedd = 1,
    /// machines = 2.. — use this to aim fault-plan entries at machines.
    pub const MATCHMAKER_ID: usize = 0;
    /// See [`PoolBuilder::MATCHMAKER_ID`].
    pub const SCHEDD_ID: usize = 1;
    /// First machine actor id.
    pub const FIRST_MACHINE_ID: usize = 2;

    /// Build the world and run until every job is terminal or `deadline`
    /// passes.
    pub fn run(self, deadline: SimTime) -> RunReport {
        let (mut world, schedd_id, machine_ids) = self.build();
        let n_machines = machine_ids.len();
        let extra_ids: Vec<usize> = {
            // Extra schedds follow the machines.
            let first_extra = Self::FIRST_MACHINE_ID + n_machines;
            (first_extra..)
                .take_while(|id| world.get::<Schedd>(*id).is_some())
                .collect()
        };
        let all_done = |world: &World<Msg>| {
            world.get::<Schedd>(schedd_id).expect("schedd").all_done()
                && extra_ids
                    .iter()
                    .all(|id| world.get::<Schedd>(*id).unwrap().all_done())
        };
        // Drive in slices so we can stop as soon as the queues quiesce.
        let slice = SimDuration::from_secs(30);
        let mut now = SimTime::ZERO;
        loop {
            now = SimTime::from_micros((now + slice).as_micros().min(deadline.as_micros()));
            world.run_until(now);
            if all_done(&world) || now >= deadline {
                break;
            }
        }
        let quiescent = all_done(&world);
        let schedd = world.get::<Schedd>(schedd_id).unwrap();
        let mut machines = BTreeMap::new();
        for id in machine_ids {
            let s = world.get::<Startd>(id).expect("startd present");
            machines.insert(id, s.stats.clone());
        }
        let extra_schedds: Vec<ScheddSummary> = extra_ids
            .iter()
            .map(|id| {
                let s = world.get::<Schedd>(*id).unwrap();
                ScheddSummary {
                    id: *id,
                    metrics: s.metrics.clone(),
                    user_log: s.user_log.clone(),
                    jobs: s.jobs.clone(),
                }
            })
            .collect();
        let ckpt_server = world
            .get::<CkptServer>(Self::FIRST_MACHINE_ID + n_machines + extra_schedds.len())
            .map(|s| s.stats.clone());
        let matchmaker = world
            .get::<Matchmaker>(Self::MATCHMAKER_ID)
            .map(|m| m.stats().clone())
            .unwrap_or_default();
        RunReport {
            metrics: schedd.metrics.clone(),
            user_log: schedd.user_log.clone(),
            jobs: schedd.jobs.clone(),
            extra_schedds,
            machines,
            ckpt_server,
            matchmaker,
            telemetry: world.telemetry().clone(),
            net: world.net().stats().clone(),
            finished_at: world.now(),
            quiescent,
            events: world.events_processed(),
        }
    }

    /// Build the world without running it (for tests that need to poke at
    /// the network or inspect mid-flight state).
    pub fn build(self) -> (World<Msg>, usize, Vec<usize>) {
        let mut world: World<Msg> = World::new(self.seed);
        if !self.trace {
            world = world.without_trace();
        }
        let plan = self.plan.build();

        let mm = world.add_actor(Box::new(Matchmaker::new()));
        assert_eq!(mm, Self::MATCHMAKER_ID);

        let mut schedd = Schedd::new(mm, self.schedd_policy, Arc::clone(&plan));
        for (path, data) in &self.home_files {
            schedd.put_home_file(path, data);
        }
        for job in self.jobs {
            schedd.submit(job);
        }
        let schedd_id = world.add_actor(Box::new(schedd));
        assert_eq!(schedd_id, Self::SCHEDD_ID);

        // The checkpoint server (if any) registers after machines and
        // extra schedds, so its actor id is known before the startds that
        // must talk to it are built.
        let ckpt = self.ckpt_server.then(|| {
            let id = Self::FIRST_MACHINE_ID + self.machines.len() + self.extra_schedd_jobs.len();
            (id, Cookie::generate(self.seed ^ 0xCB0B))
        });
        let mut machine_ids = Vec::new();
        for spec in self.machines {
            let mut startd = Startd::new(spec, self.startd_policy, mm, Arc::clone(&plan));
            if let Some((id, cookie)) = &ckpt {
                startd = startd.with_ckpt_server(*id, cookie.clone());
            }
            machine_ids.push(world.add_actor(Box::new(startd)));
        }
        for jobs in self.extra_schedd_jobs {
            let mut extra = Schedd::new(mm, self.schedd_policy, Arc::clone(&plan));
            for job in jobs {
                extra.submit(job);
            }
            world.add_actor(Box::new(extra));
        }
        if let Some((id, cookie)) = ckpt {
            let mut server = CkptServer::new(cookie);
            for prefix in &self.ckpt_corrupt_prefixes {
                server = server.corrupt_key_prefix(prefix);
            }
            // The plan's scheduled image flips arm the server here: one
            // logged bit-flip per stored image of each targeted job.
            for &job in plan.ckpt_flip_jobs() {
                server = server.flip_bit_key_prefix(&format!("ckpt/job{job}/"), u64::from(job));
            }
            let got = world.add_actor(Box::new(server));
            assert_eq!(got, id, "checkpoint server id precomputed wrong");
        }
        // The network-fault driver registers last: nothing addresses it, so
        // its id never perturbs the ids the fault plan aims at.
        if !plan.net_faults().is_empty() {
            world.add_actor(Box::new(crate::netdriver::NetFaultDriver::new(Arc::clone(
                &plan,
            ))));
        }
        (world, schedd_id, machine_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Window;
    use crate::job::{JavaMode, JobState, Universe};
    use chirp::backend::EnvFault;
    use errorscope::resultfile::Outcome;
    use errorscope::Scope;
    use gridvm::config::SelfTestDepth;
    use gridvm::programs;

    fn deadline() -> SimTime {
        SimTime::from_secs(3600)
    }

    #[test]
    fn healthy_pool_completes_a_job() {
        let report = PoolBuilder::new(1)
            .machine(MachineSpec::healthy("m1", 256))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30)),
            )
            .run(deadline());
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        let rec = &report.jobs[&1];
        let JobState::Completed { result } = &rec.state else {
            panic!("{:?}", rec.state)
        };
        assert_eq!(result.outcome, Outcome::Completed { exit_code: 0 });
        assert_eq!(rec.attempts.len(), 1);
        assert_eq!(rec.attempts[0].scope, Some(Scope::Program));
        // User saw exactly one line, the completion.
        assert_eq!(report.user_log.len(), 1);
        assert!(report.user_log[0].text.contains("exit code 0"));
    }

    #[test]
    fn program_exception_reaches_user_in_scoped_mode() {
        let report = PoolBuilder::new(2)
            .machine(MachineSpec::healthy("m1", 256))
            .job(
                JobSpec::java(1, "ada", programs::index_out_of_bounds(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(10)),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.user_log[0]
            .text
            .contains("ArrayIndexOutOfBoundsException"));
        // Program-scope: NOT an incidental error.
        assert_eq!(report.metrics.incidental_errors_shown_to_user, 0);
    }

    #[test]
    fn corrupt_image_is_unexecutable_in_scoped_mode() {
        let report = PoolBuilder::new(3)
            .machine(MachineSpec::healthy("m1", 256))
            .job(JobSpec::java(
                1,
                "ada",
                programs::corrupt_image(),
                JavaMode::Scoped,
            ))
            .run(deadline());
        assert_eq!(report.metrics.jobs_unexecutable, 1);
        let JobState::Unexecutable { reason } = &report.jobs[&1].state else {
            panic!()
        };
        assert!(reason.contains("CorruptImage"), "{reason}");
        // Crucially: ONE attempt, no futile retries elsewhere.
        assert_eq!(report.jobs[&1].attempts.len(), 1);
    }

    #[test]
    fn misconfigured_machine_triggers_reschedule_in_scoped_mode() {
        // Two machines: the broken one has more memory, so the job ranks it
        // first. Scoped routing reschedules; with chronic-host avoidance on
        // (§5's complementary approach) the healthy machine finishes the
        // job. Without avoidance the black hole would attract the job
        // forever — exactly the waste §5 describes.
        let report = PoolBuilder::new(4)
            .machine(MachineSpec::misconfigured("broken", 1024))
            .machine(MachineSpec::healthy("ok", 128))
            .schedd_policy(ScheddPolicy {
                avoid_chronic_hosts: true,
                avoid_threshold: 2,
                ..ScheddPolicy::default()
            })
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(10)),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.metrics.reschedules >= 1);
        let rec = &report.jobs[&1];
        assert!(rec.attempts.len() >= 2);
        assert_eq!(
            rec.attempts[0].scope,
            Some(Scope::RemoteResource),
            "first attempt hits the misconfigured host"
        );
        assert_eq!(rec.attempts.last().unwrap().scope, Some(Scope::Program));
        // The user never saw the environmental error.
        assert_eq!(report.metrics.incidental_errors_shown_to_user, 0);
        assert_eq!(report.user_log.len(), 1);
    }

    #[test]
    fn naive_mode_shows_environment_errors_to_user() {
        // Equal-memory machines so the tie-break gives both a chance; the
        // job first lands on the broken one often enough (seeded) to show
        // the incidental error to the user.
        let report = PoolBuilder::new(5)
            .machine(MachineSpec::misconfigured("broken", 256))
            .machine(MachineSpec::healthy("ok", 256))
            .schedd_policy(ScheddPolicy {
                postmortem_delay: SimDuration::from_secs(60),
                ..ScheddPolicy::default()
            })
            .jobs((1..=4).map(|i| {
                JobSpec::java(i, "ada", programs::completes_main(), JavaMode::Naive)
                    .with_exec_time(SimDuration::from_secs(10))
            }))
            .run(deadline());
        // Jobs eventually complete (after human postmortems + resubmits)…
        assert!(report.metrics.jobs_completed >= 3);
        // …but the user was shown incidental errors and paid for them.
        assert!(report.metrics.incidental_errors_shown_to_user >= 1);
        assert!(report.metrics.postmortems >= 1);
    }

    #[test]
    fn self_test_prevents_matches_to_broken_machines() {
        let report = PoolBuilder::new(6)
            .machine(MachineSpec::misconfigured("broken", 1024))
            .machine(MachineSpec::healthy("ok", 128))
            .startd_policy(StartdPolicy {
                self_test: SelfTestDepth::Trivial,
                learn_from_failures: false,
                ..StartdPolicy::default()
            })
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(10)),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        // The broken machine never advertised Java, so the single attempt
        // went straight to the healthy machine.
        assert_eq!(report.jobs[&1].attempts.len(), 1);
        assert_eq!(report.metrics.reschedules, 0);
        let broken = &report.machines[&PoolBuilder::FIRST_MACHINE_ID];
        assert!(!broken.advertising_java);
        assert_eq!(broken.executions, 0);
    }

    #[test]
    fn fs_offline_window_delays_but_does_not_kill_job() {
        // Home FS offline for the first 200s; the job needs an input file.
        let report = PoolBuilder::new(7)
            .machine(MachineSpec::healthy("m1", 256))
            .home_file("input.txt", b"hello")
            .faults(FaultPlan::none().fs_fault(
                PoolBuilder::SCHEDD_ID,
                Window::new(SimTime::ZERO, SimTime::from_secs(200)),
                EnvFault::FilesystemOffline,
            ))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_inputs(&["input.txt"])
                    .with_exec_time(SimDuration::from_secs(10)),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        // Completion had to wait out the outage.
        let done = report.jobs[&1].finished.unwrap();
        assert!(done >= SimTime::from_secs(200), "finished at {done}");
    }

    #[test]
    fn missing_input_is_job_scope_unexecutable() {
        let report = PoolBuilder::new(8)
            .machine(MachineSpec::healthy("m1", 256))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_inputs(&["never-created.dat"]),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_unexecutable, 1);
        let JobState::Unexecutable { reason } = &report.jobs[&1].state else {
            panic!()
        };
        assert!(reason.contains("MissingInput"), "{reason}");
    }

    #[test]
    fn machine_crash_vanishes_report_and_job_recovers() {
        let report = PoolBuilder::new(9)
            .machine(MachineSpec::healthy("doomed", 1024))
            .machine(MachineSpec::healthy("ok", 128))
            .faults(FaultPlan::none().crash(
                PoolBuilder::FIRST_MACHINE_ID,
                Window::from(SimTime::from_secs(20)),
            ))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(60)),
            )
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        assert_eq!(report.metrics.vanished_attempts, 1);
        let rec = &report.jobs[&1];
        assert!(rec.attempts.iter().any(|a| a.scope.is_none()));
        assert_eq!(rec.attempts.last().unwrap().scope, Some(Scope::Program));
    }

    #[test]
    fn vanilla_universe_runs_without_java() {
        let report = PoolBuilder::new(10)
            .machine(MachineSpec {
                asserts_java: false,
                ..MachineSpec::healthy("plain", 256)
            })
            .job(JobSpec {
                universe: Universe::Vanilla,
                ..JobSpec::java(1, "ada", programs::calls_exit(3), JavaMode::Scoped)
            })
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 1);
        let JobState::Completed { result } = &report.jobs[&1].state else {
            panic!()
        };
        assert_eq!(result.outcome, Outcome::Completed { exit_code: 3 });
    }

    #[test]
    fn all_machines_broken_eventually_holds_job() {
        let report = PoolBuilder::new(11)
            .machine(MachineSpec::misconfigured("b1", 256))
            .machine(MachineSpec::misconfigured("b2", 256))
            .schedd_policy(ScheddPolicy {
                max_attempts: 4,
                ..ScheddPolicy::default()
            })
            .job(JobSpec::java(
                1,
                "ada",
                programs::completes_main(),
                JavaMode::Scoped,
            ))
            .run(deadline());
        assert_eq!(report.metrics.jobs_held, 1);
        assert!(matches!(report.jobs[&1].state, JobState::Held { .. }));
        assert_eq!(report.jobs[&1].attempts.len(), 4);
    }

    #[test]
    fn job_parks_exactly_at_the_attempt_budget() {
        // The reschedule_or_hold boundary: with a budget of N, the job runs
        // exactly N attempts — not N-1 (parked early) and not N+1 (budget
        // overrun) — and the hold reason states the count.
        for max_attempts in [1u32, 3] {
            let report = PoolBuilder::new(13)
                .machine(MachineSpec::misconfigured("b1", 256))
                .schedd_policy(ScheddPolicy {
                    max_attempts,
                    ..ScheddPolicy::default()
                })
                .job(JobSpec::java(
                    1,
                    "ada",
                    programs::completes_main(),
                    JavaMode::Scoped,
                ))
                .run(deadline());
            let rec = &report.jobs[&1];
            assert_eq!(
                rec.attempts.len(),
                max_attempts as usize,
                "budget {max_attempts}: attempts must equal the budget"
            );
            let JobState::Held { reason } = &rec.state else {
                panic!("budget {max_attempts}: job must be held, got {rec:?}");
            };
            assert!(reason.contains(&format!("{max_attempts} failed attempts")));
        }
    }

    #[test]
    fn chronic_host_avoidance_reduces_repeat_failures() {
        // One black hole and one healthy machine, many jobs. With
        // avoidance on, the black hole is consulted at most `threshold`
        // times overall.
        let mk_jobs = |mode| {
            (1..=6)
                .map(move |i| {
                    JobSpec::java(i, "ada", programs::completes_main(), mode)
                        .with_exec_time(SimDuration::from_secs(20))
                })
                .collect::<Vec<_>>()
        };
        let base = |avoid: bool| {
            PoolBuilder::new(12)
                .machine(MachineSpec::misconfigured("hole", 4096))
                .machine(MachineSpec::healthy("ok", 128))
                .schedd_policy(ScheddPolicy {
                    avoid_chronic_hosts: avoid,
                    avoid_threshold: 2,
                    ..ScheddPolicy::default()
                })
                .jobs(mk_jobs(JavaMode::Scoped))
                .run(deadline())
        };
        let with_avoid = base(true);
        let without = base(false);
        // With avoidance every job completes; without it the black hole
        // (which outranks the healthy machine) keeps attracting work and
        // some jobs may exhaust their attempt budget.
        assert_eq!(with_avoid.metrics.jobs_completed, 6);
        assert_eq!(without.metrics.jobs_finished(), 6);
        let hole_execs_with = with_avoid.machines[&PoolBuilder::FIRST_MACHINE_ID].executions;
        let hole_execs_without = without.machines[&PoolBuilder::FIRST_MACHINE_ID].executions;
        assert!(
            hole_execs_with < hole_execs_without,
            "avoidance should cut black-hole executions: {hole_execs_with} vs {hole_execs_without}"
        );
        assert!(with_avoid.metrics.wasted_cpu < without.metrics.wasted_cpu);
    }

    #[test]
    fn learning_startd_stops_advertising_after_failure() {
        let report = PoolBuilder::new(13)
            .machine(MachineSpec::partially_misconfigured("half", 4096))
            .machine(MachineSpec::healthy("ok", 128))
            .startd_policy(StartdPolicy {
                // Trivial self-test passes on the partial break…
                self_test: SelfTestDepth::Trivial,
                // …but the starter learns from the remote-resource failure.
                learn_from_failures: true,
                ..StartdPolicy::default()
            })
            .jobs((1..=3).map(|i| {
                JobSpec::java(i, "ada", programs::uses_stdlib(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(10))
            }))
            .run(deadline());
        assert_eq!(report.metrics.jobs_completed, 3);
        let half = &report.machines[&PoolBuilder::FIRST_MACHINE_ID];
        // It failed at most once with remote-resource scope, then revoked
        // its own capability.
        assert!(half.remote_resource_failures >= 1);
        assert!(!half.advertising_java);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run =
            || {
                PoolBuilder::new(99)
                    .machine(MachineSpec::misconfigured("b", 512))
                    .machine(MachineSpec::healthy("ok", 256))
                    .jobs((1..=4).map(|i| {
                        JobSpec::java(i, "ada", programs::completes_main(), JavaMode::Scoped)
                    }))
                    .run(deadline())
            };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.jobs_completed, b.metrics.jobs_completed);
        assert_eq!(a.metrics.reschedules, b.metrics.reschedules);
        assert_eq!(a.events, b.events);
        assert_eq!(a.finished_at, b.finished_at);
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;
    use crate::faults::Window;
    use crate::job::{JavaMode, JobSpec, JobState, Universe};
    use gridvm::programs;

    fn long_job(universe: Universe) -> JobSpec {
        JobSpec {
            universe,
            ..JobSpec::java(1, "ada", programs::calls_exit(0), JavaMode::Scoped)
                .with_exec_time(SimDuration::from_secs(600))
        }
    }

    /// One machine with a mid-run owner-activity window plus a backup
    /// machine: the job is evicted and finishes elsewhere.
    fn evicting_pool(universe: Universe, seed: u64) -> RunReport {
        PoolBuilder::new(seed)
            .machine(MachineSpec::healthy("interrupted", 1024))
            .machine(MachineSpec::healthy("backup", 128))
            .faults(FaultPlan::none().owner_activity(
                PoolBuilder::FIRST_MACHINE_ID,
                Window::new(SimTime::from_secs(300), SimTime::from_secs(4000)),
            ))
            .job(long_job(universe))
            .run(SimTime::from_secs(24 * 3600))
    }

    #[test]
    fn vanilla_eviction_loses_progress() {
        let report = evicting_pool(Universe::Vanilla, 21);
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.metrics.evictions >= 1);
        assert!(report.metrics.work_lost_to_eviction > SimDuration::ZERO);
        assert_eq!(report.metrics.checkpointed_work, SimDuration::ZERO);
        // The restarted run had to do the full 600s again.
        let rec = &report.jobs[&1];
        assert!(rec.attempts.len() >= 2);
        assert!(matches!(rec.state, JobState::Completed { .. }));
    }

    #[test]
    fn standard_eviction_checkpoints_progress() {
        let report = evicting_pool(Universe::Standard, 21);
        assert_eq!(report.metrics.jobs_completed, 1);
        assert!(report.metrics.evictions >= 1);
        assert!(report.metrics.checkpointed_work > SimDuration::ZERO);
        assert_eq!(report.metrics.work_lost_to_eviction, SimDuration::ZERO);
        let rec = &report.jobs[&1];
        assert!(rec.attempts[0].note.contains("checkpointed"));
    }

    #[test]
    fn checkpointing_beats_restarting() {
        let vanilla = evicting_pool(Universe::Vanilla, 21);
        let standard = evicting_pool(Universe::Standard, 21);
        let tv = vanilla.jobs[&1].finished.unwrap();
        let ts = standard.jobs[&1].finished.unwrap();
        assert!(
            ts < tv,
            "standard ({ts}) should finish before vanilla ({tv})"
        );
    }

    #[test]
    fn owner_busy_machine_does_not_advertise() {
        // The machine is owner-busy from the start: the job must land on
        // the backup machine immediately.
        let report = PoolBuilder::new(22)
            .machine(MachineSpec::healthy("busy", 1024))
            .machine(MachineSpec::healthy("backup", 128))
            .faults(
                FaultPlan::none()
                    .owner_activity(PoolBuilder::FIRST_MACHINE_ID, Window::from(SimTime::ZERO)),
            )
            .job(long_job(Universe::Vanilla))
            .run(SimTime::from_secs(24 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1);
        assert_eq!(report.metrics.evictions, 0);
        assert_eq!(
            report.machines[&PoolBuilder::FIRST_MACHINE_ID].executions,
            0
        );
        assert_eq!(
            report.jobs[&1].attempts[0].machine,
            PoolBuilder::FIRST_MACHINE_ID + 1
        );
    }

    #[test]
    fn repeated_evictions_still_converge_with_checkpoints() {
        // Owner activity every 200s on the only fast machine; a 500s
        // Standard job needs three slices but gets there.
        let mut plan = FaultPlan::none();
        for k in 0..20 {
            let start = 200 + k * 400;
            plan = plan.owner_activity(
                PoolBuilder::FIRST_MACHINE_ID,
                Window::new(SimTime::from_secs(start), SimTime::from_secs(start + 200)),
            );
        }
        let report = PoolBuilder::new(23)
            .machine(MachineSpec::healthy("flaky-owner", 1024))
            .faults(plan)
            .job(JobSpec {
                universe: Universe::Standard,
                ..JobSpec::java(1, "ada", programs::calls_exit(0), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(500))
            })
            .run(SimTime::from_secs(48 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.evictions >= 2);
        assert!(report.metrics.checkpointed_work >= SimDuration::from_secs(300));
    }
}

#[cfg(test)]
mod ckpt_server_tests {
    use super::*;
    use crate::faults::Window;
    use crate::job::{JavaMode, JobSpec, JobState, Universe};
    use gridvm::programs;

    fn standard_job(secs: u64) -> JobSpec {
        JobSpec {
            universe: Universe::Standard,
            ..JobSpec::java(1, "ada", programs::calls_exit(0), JavaMode::Scoped)
                .with_exec_time(SimDuration::from_secs(secs))
        }
    }

    /// One machine with a mid-run owner-activity window plus a backup
    /// machine, and a real checkpoint server in the pool.
    fn server_pool(seed: u64) -> PoolBuilder {
        PoolBuilder::new(seed)
            .machine(MachineSpec::healthy("interrupted", 1024))
            .machine(MachineSpec::healthy("backup", 128))
            .with_checkpoint_server()
            .faults(FaultPlan::none().owner_activity(
                PoolBuilder::FIRST_MACHINE_ID,
                Window::new(SimTime::from_secs(300), SimTime::from_secs(4000)),
            ))
            .job(standard_job(600))
    }

    #[test]
    fn server_eviction_stores_and_resumes_checkpoint() {
        let report = server_pool(31).run(SimTime::from_secs(24 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.evictions >= 1);
        // A real image went over the wire and came back.
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.metrics.checkpoints_restored >= 1);
        assert!(report.metrics.checkpoint_bytes > 0);
        assert!(report.metrics.work_saved_by_checkpoint > SimDuration::ZERO);
        // Exact checkpointing (no period) banks everything at eviction.
        assert_eq!(report.metrics.work_lost_to_eviction, SimDuration::ZERO);
        let stats = report.ckpt_server.as_ref().expect("server stats");
        assert!(stats.puts >= 1 && stats.gets >= 1);
        assert!(stats.bytes_stored > 0);
        assert_eq!(stats.rejected_frames, 0);
        // The typed event stream saw the whole journey.
        let counts = report.telemetry.counts_by_kind();
        assert!(counts.get("ckpt-taken").copied().unwrap_or(0) >= 1);
        assert!(counts.get("ckpt-restored").copied().unwrap_or(0) >= 1);
        assert!(!counts.contains_key("ckpt-discarded"));
    }

    #[test]
    fn corrupt_checkpoint_is_discarded_and_job_cold_restarts() {
        // The server flips bits in every image stored for job 1: the resume
        // must fail as an *explicit* checkpoint-scope error (discard event),
        // never an implicit crash, and the job must still complete from a
        // cold restart.
        let report = server_pool(32)
            .corrupt_checkpoints_for(1)
            .run(SimTime::from_secs(48 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.metrics.checkpoints_discarded >= 1);
        assert_eq!(report.metrics.checkpoints_restored, 0);
        // The banked progress evaporated with the discarded image.
        assert!(report.metrics.work_lost_to_eviction > SimDuration::ZERO);
        let counts = report.telemetry.counts_by_kind();
        assert!(counts.get("ckpt-discarded").copied().unwrap_or(0) >= 1);
        // The discard is recorded in the job history, and the job finished.
        let rec = &report.jobs[&1];
        assert!(matches!(rec.state, JobState::Completed { .. }));
        assert!(rec.attempts.iter().any(|a| a.note.contains("discarded")));
    }

    #[test]
    fn scheduled_ckpt_flip_is_logged_and_detected_on_restore() {
        // The plan's ckpt_flip arms the server: every stored image for
        // job 1 gets one flipped bit plus a mem-flip scrubber record. The
        // FNV-1a trailer must catch the damage at restore — an explicit
        // discard, a cold restart, and still a completed job.
        let report = PoolBuilder::new(36)
            .machine(MachineSpec::healthy("interrupted", 1024))
            .machine(MachineSpec::healthy("backup", 128))
            .with_checkpoint_server()
            .faults(
                FaultPlan::none()
                    .owner_activity(
                        PoolBuilder::FIRST_MACHINE_ID,
                        Window::new(SimTime::from_secs(300), SimTime::from_secs(4000)),
                    )
                    .ckpt_flip(1),
            )
            .job(standard_job(600))
            .run(SimTime::from_secs(48 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.metrics.checkpoints_discarded >= 1);
        assert_eq!(report.metrics.checkpoints_restored, 0);
        let counts = report.telemetry.counts_by_kind();
        assert!(counts.get("mem-flip").copied().unwrap_or(0) >= 1);
        assert!(counts.get("ckpt-discarded").copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn scheduled_heap_flip_escapes_detection() {
        // The heap flip lands *after* digest validation: the restore
        // succeeds, nothing is discarded, and the job runs to normal
        // completion with silently corrupted state — an escape, visible
        // only in the scrubber's mem-flip record.
        let report = PoolBuilder::new(37)
            .machine(MachineSpec::healthy("interrupted", 1024))
            .machine(MachineSpec::healthy("backup", 128))
            .with_checkpoint_server()
            .faults(
                FaultPlan::none()
                    .owner_activity(
                        PoolBuilder::FIRST_MACHINE_ID,
                        Window::new(SimTime::from_secs(300), SimTime::from_secs(4000)),
                    )
                    .heap_flip(1, 0x1234_5678),
            )
            .job(JobSpec {
                universe: Universe::Standard,
                ..JobSpec::java(1, "ada", programs::heap_sum(64), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(600))
            })
            .run(SimTime::from_secs(48 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.checkpoints_restored >= 1);
        assert_eq!(report.metrics.checkpoints_discarded, 0);
        let counts = report.telemetry.counts_by_kind();
        assert!(counts.get("mem-flip").copied().unwrap_or(0) >= 1);
        // Completed normally: the corruption produced no error at all.
        assert!(matches!(report.jobs[&1].state, JobState::Completed { .. }));
    }

    #[test]
    fn periodic_checkpointing_loses_only_the_tail() {
        // With a 240s checkpoint period and eviction at 300s, only the
        // floored 240s is in the image; the 60s tail is honestly lost.
        let report = server_pool(33)
            .startd_policy(StartdPolicy {
                ckpt_period: Some(SimDuration::from_secs(240)),
                ..StartdPolicy::default()
            })
            .run(SimTime::from_secs(24 * 3600));
        assert_eq!(report.metrics.jobs_completed, 1, "{:?}", report.jobs[&1]);
        assert!(report.metrics.checkpoints_taken >= 1);
        assert!(report.metrics.checkpoints_restored >= 1);
        assert!(
            report.metrics.work_lost_to_eviction > SimDuration::ZERO,
            "period flooring must lose the tail past the last checkpoint"
        );
        assert_eq!(
            report.metrics.checkpointed_work.as_micros() % SimDuration::from_secs(240).as_micros(),
            0,
            "banked progress is a multiple of the checkpoint period"
        );
    }

    #[test]
    fn checkpoint_resumes_count_toward_the_attempt_budget() {
        // Resuming from a checkpoint is still a fresh attempt against the
        // budget: a job that keeps getting evicted parks at max_attempts
        // even though later attempts resumed banked progress.
        let mut plan = FaultPlan::none();
        for k in 0..30 {
            let start = 200 + k * 400;
            plan = plan.owner_activity(
                PoolBuilder::FIRST_MACHINE_ID,
                Window::new(SimTime::from_secs(start), SimTime::from_secs(start + 200)),
            );
        }
        let report = PoolBuilder::new(35)
            .machine(MachineSpec::healthy("flaky-owner", 1024))
            .with_checkpoint_server()
            .schedd_policy(ScheddPolicy {
                max_attempts: 3,
                ..ScheddPolicy::default()
            })
            .faults(plan)
            .job(standard_job(5000))
            .run(SimTime::from_secs(48 * 3600));
        let rec = &report.jobs[&1];
        assert!(
            matches!(rec.state, JobState::Held { .. }),
            "a 5000s job cannot fit in 3 eviction-bounded attempts: {rec:?}"
        );
        assert_eq!(rec.attempts.len(), 3, "parks exactly at the budget");
        assert!(
            report.metrics.checkpoints_restored >= 1,
            "later attempts resumed from checkpoints yet still counted"
        );
        assert!(report.metrics.work_saved_by_checkpoint > SimDuration::ZERO);
    }

    #[test]
    fn server_mode_is_deterministic() {
        let run = || server_pool(34).run(SimTime::from_secs(24 * 3600));
        let a = run();
        let b = run();
        assert_eq!(a.metrics.checkpoints_taken, b.metrics.checkpoints_taken);
        assert_eq!(a.metrics.checkpoint_bytes, b.metrics.checkpoint_bytes);
        assert_eq!(a.events, b.events);
        assert_eq!(a.finished_at, b.finished_at);
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use crate::faults::Window;
    use crate::health::{BreakerPolicy, RetryPolicy};
    use crate::job::{JavaMode, JobSpec};
    use crate::msg::LeaseInfo;
    use gridvm::programs;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn lease() -> Option<LeaseInfo> {
        Some(LeaseInfo {
            interval: SimDuration::from_secs(10),
            timeout: SimDuration::from_secs(30),
        })
    }

    /// A mid-run partition between the schedd and the only machine, with
    /// leasing on: both sides turn the silence into an explicit error, the
    /// startd frees itself, and the job completes exactly once after the
    /// partition heals.
    #[test]
    fn lease_converts_partition_into_explicit_error_on_both_sides() {
        let report = PoolBuilder::new(81)
            .machine(MachineSpec::healthy("m1", 256))
            .schedd_policy(ScheddPolicy {
                lease: lease(),
                ..ScheddPolicy::default()
            })
            .faults(FaultPlan::none().net_partition(
                [PoolBuilder::SCHEDD_ID],
                [PoolBuilder::FIRST_MACHINE_ID],
                Window::new(t(30), t(600)),
            ))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(120)),
            )
            .run(SimTime::from_secs(3600));
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        // The schedd expired the lease instead of waiting out the (much
        // longer) report timeout…
        assert!(report.metrics.leases_expired >= 1, "{:?}", report.metrics);
        assert!(report.metrics.vanished_attempts >= 1);
        // …and the startd abandoned the orphaned claim from its side.
        let m = &report.machines[&PoolBuilder::FIRST_MACHINE_ID];
        assert!(m.leases_expired >= 1, "{m:?}");
        // Both sides' expirations are in the event stream.
        let sides: Vec<String> = report
            .telemetry
            .iter()
            .filter_map(|r| match &r.event {
                obs::Event::LeaseExpired { side, .. } => Some(side.clone()),
                _ => None,
            })
            .collect();
        assert!(sides.iter().any(|s| s == "schedd"), "{sides:?}");
        assert!(sides.iter().any(|s| s == "startd"), "{sides:?}");
        // Exactly one attempt actually produced the program result.
        let rec = &report.jobs[&1];
        let programs_run = rec
            .attempts
            .iter()
            .filter(|a| a.scope == Some(errorscope::Scope::Program))
            .count();
        assert_eq!(programs_run, 1, "{:?}", rec.attempts);
        assert!(rec.finished.unwrap() >= t(600), "completes after the heal");
    }

    /// The same partition without leasing recovers only via the report
    /// timeout: the lease strictly tightens detection.
    #[test]
    fn lease_detects_partition_before_report_timeout_would() {
        let run = |lease: Option<LeaseInfo>| {
            PoolBuilder::new(82)
                .machine(MachineSpec::healthy("m1", 256))
                .machine(MachineSpec::healthy("m2", 256))
                .schedd_policy(ScheddPolicy {
                    lease,
                    ..ScheddPolicy::default()
                })
                .faults(FaultPlan::none().net_partition(
                    [PoolBuilder::SCHEDD_ID],
                    [
                        PoolBuilder::FIRST_MACHINE_ID,
                        PoolBuilder::FIRST_MACHINE_ID + 1,
                    ],
                    Window::new(t(30), t(700)),
                ))
                .job(
                    JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                        .with_exec_time(SimDuration::from_secs(120)),
                )
                .run(SimTime::from_secs(7200))
        };
        let leased = run(lease());
        let unleased = run(None);
        assert_eq!(leased.metrics.jobs_completed, 1);
        assert_eq!(unleased.metrics.jobs_completed, 1);
        assert!(leased.metrics.leases_expired >= 1);
        assert_eq!(unleased.metrics.leases_expired, 0);
        // The leased schedd learned of the dead claim while the partition
        // was still up; the unleased one needed the report timeout.
        let first_detect = |r: &RunReport| {
            r.telemetry
                .iter()
                .filter_map(|rec| match &rec.event {
                    obs::Event::Reschedule { .. } => Some(rec.at_us),
                    _ => None,
                })
                .next()
        };
        let (a, b) = (first_detect(&leased), first_detect(&unleased));
        assert!(
            a.unwrap() < b.unwrap(),
            "lease must detect first: {a:?} vs {b:?}"
        );
    }

    /// Total duplication on the schedd↔machine link: every frame arrives
    /// twice, yet epoch fencing keeps execution exactly-once — duplicates
    /// are counted, never acted on.
    #[test]
    fn duplicated_frames_are_fenced_not_replayed() {
        let report = PoolBuilder::new(83)
            .machine(MachineSpec::healthy("m1", 256))
            .schedd_policy(ScheddPolicy {
                lease: lease(),
                ..ScheddPolicy::default()
            })
            .faults(FaultPlan::none().net_duplication(
                PoolBuilder::SCHEDD_ID,
                PoolBuilder::FIRST_MACHINE_ID,
                1.0,
                Window::from(SimTime::ZERO),
            ))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(60)),
            )
            .run(SimTime::from_secs(3600));
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        let rec = &report.jobs[&1];
        assert_eq!(rec.attempts.len(), 1, "exactly one execution: {rec:?}");
        assert_eq!(
            report.machines[&PoolBuilder::FIRST_MACHINE_ID].executions,
            1
        );
        // The duplicate report (and any duplicate heartbeats racing the
        // close) were fenced and counted.
        assert!(
            report.metrics.stale_epochs_dropped >= 1,
            "{:?}",
            report.metrics
        );
        assert!(report.net.duplicated_total() >= 1);
        // The per-link counter is projected into the registry.
        let reg = report.registry();
        let link = format!(
            "{}-{}",
            PoolBuilder::SCHEDD_ID,
            PoolBuilder::FIRST_MACHINE_ID
        );
        assert!(reg.counter("net_msgs_duplicated", &[("link", &link)]) >= 1);
    }

    /// During an outage, exponential backoff plus a circuit breaker sends
    /// strictly fewer claim requests than the fixed-delay kernel — the
    /// retry traffic thins out instead of hammering the dead link.
    #[test]
    fn backoff_and_breaker_quiet_the_outage() {
        let outage = (t(20), t(800));
        let run = |retry: RetryPolicy, breaker: Option<BreakerPolicy>| {
            PoolBuilder::new(84)
                .machine(MachineSpec::healthy("m1", 256))
                .schedd_policy(ScheddPolicy {
                    retry,
                    breaker,
                    ..ScheddPolicy::default()
                })
                .faults(FaultPlan::none().net_partition(
                    [PoolBuilder::SCHEDD_ID],
                    [PoolBuilder::FIRST_MACHINE_ID],
                    Window::new(outage.0, outage.1),
                ))
                .job(
                    JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                        .with_exec_time(SimDuration::from_secs(60)),
                )
                .run(SimTime::from_secs(7200))
        };
        let requests_during_outage = |r: &RunReport| {
            r.telemetry
                .iter()
                .filter(|rec| {
                    matches!(
                        rec.event,
                        obs::Event::Claim {
                            outcome: obs::ClaimOutcome::Requested,
                            ..
                        }
                    ) && rec.at_us >= outage.0.as_micros()
                        && rec.at_us < outage.1.as_micros()
                })
                .count()
        };
        let fixed = run(RetryPolicy::Fixed(SimDuration::from_secs(10)), None);
        let adaptive = run(
            RetryPolicy::Backoff {
                base: SimDuration::from_secs(10),
                max: SimDuration::from_secs(60),
                jitter: 0.1,
            },
            Some(BreakerPolicy::default()),
        );
        // Both recover once the partition heals.
        assert_eq!(fixed.metrics.jobs_completed, 1);
        assert_eq!(adaptive.metrics.jobs_completed, 1);
        let (n_fixed, n_adaptive) = (
            requests_during_outage(&fixed),
            requests_during_outage(&adaptive),
        );
        assert!(
            n_adaptive < n_fixed,
            "backoff+breaker must send fewer claims during the outage: \
             {n_adaptive} vs {n_fixed}"
        );
        assert!(adaptive.metrics.breaker_opens >= 1);
        assert!(adaptive.telemetry.iter().any(
            |rec| matches!(&rec.event, obs::Event::BreakerStateChange { to, .. } if to == "open")
        ));
    }

    /// A mixed plan — partition, loss, and duplication windows — is fully
    /// deterministic: two same-seed runs yield bit-identical snapshots.
    #[test]
    fn mixed_net_fault_plan_is_deterministic() {
        let run = || {
            PoolBuilder::new(85)
                .machine(MachineSpec::healthy("m1", 256))
                .machine(MachineSpec::healthy("m2", 256))
                .schedd_policy(ScheddPolicy {
                    lease: lease(),
                    breaker: Some(BreakerPolicy::default()),
                    ..ScheddPolicy::default()
                })
                .faults(
                    FaultPlan::none()
                        .net_partition(
                            [PoolBuilder::SCHEDD_ID],
                            [PoolBuilder::FIRST_MACHINE_ID],
                            Window::new(t(40), t(300)),
                        )
                        .net_loss(
                            PoolBuilder::SCHEDD_ID,
                            PoolBuilder::FIRST_MACHINE_ID + 1,
                            0.5,
                            Window::new(t(10), t(200)),
                        )
                        .net_duplication(
                            PoolBuilder::SCHEDD_ID,
                            PoolBuilder::FIRST_MACHINE_ID + 1,
                            1.0,
                            Window::new(t(200), t(500)),
                        ),
                )
                .jobs((1..=3).map(|i| {
                    JobSpec::java(i, "ada", programs::completes_main(), JavaMode::Scoped)
                        .with_exec_time(SimDuration::from_secs(60))
                }))
                .run(SimTime::from_secs(7200))
        };
        let a = run();
        let b = run();
        assert_eq!(a.registry().snapshot_json(), b.registry().snapshot_json());
        assert_eq!(a.events, b.events);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.net, b.net);
        assert_eq!(a.metrics.jobs_completed, 3);
        // The loss window actually ate something, and the drop counter is
        // projected per-link.
        assert!(a.net.dropped_total() >= 1);
        let reg = a.registry();
        let link = format!(
            "{}-{}",
            PoolBuilder::SCHEDD_ID,
            PoolBuilder::FIRST_MACHINE_ID + 1
        );
        assert!(reg.counter("net_msgs_dropped", &[("link", &link)]) >= 1);
    }
}

#[cfg(test)]
mod multi_schedd_tests {
    use super::*;
    use crate::job::{JavaMode, JobSpec};
    use gridvm::programs;

    #[test]
    fn two_submitters_share_the_pool() {
        let report = PoolBuilder::new(41)
            .machine(MachineSpec::healthy("a", 256))
            .machine(MachineSpec::healthy("b", 256))
            .jobs((1..=3).map(|i| {
                JobSpec::java(i, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30))
            }))
            .extra_schedd((1..=3).map(|i| {
                JobSpec::java(i, "bob", programs::calls_exit(1), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30))
            }))
            .run(SimTime::from_secs(3600));
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 3, "ada's jobs all finish");
        assert_eq!(report.extra_schedds.len(), 1);
        let bob = &report.extra_schedds[0];
        assert_eq!(bob.metrics.jobs_completed, 3, "bob's jobs all finish");
        // Job ids are per-schedd namespaces: both queues have ids 1..=3.
        assert!(bob.jobs.contains_key(&1));
        // Both submitters actually used the machines.
        let total_execs: u64 = report.machines.values().map(|m| m.executions).sum();
        assert_eq!(total_execs, 6);
    }

    #[test]
    fn submitters_compete_for_one_machine() {
        // One machine, two schedds with one job each: they serialise.
        let report = PoolBuilder::new(42)
            .machine(MachineSpec::healthy("only", 256))
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(100)),
            )
            .extra_schedd(vec![JobSpec::java(
                1,
                "bob",
                programs::completes_main(),
                JavaMode::Scoped,
            )
            .with_exec_time(SimDuration::from_secs(100))])
            .run(SimTime::from_secs(3600));
        assert!(report.quiescent);
        assert_eq!(report.metrics.jobs_completed, 1);
        assert_eq!(report.extra_schedds[0].metrics.jobs_completed, 1);
        // Serialised: the second job finished at least ~100s after the
        // first.
        let t1 = report.jobs[&1].finished.unwrap();
        let t2 = report.extra_schedds[0].jobs[&1].finished.unwrap();
        let gap = if t2 > t1 { t2 - t1 } else { t1 - t2 };
        assert!(gap >= SimDuration::from_secs(90), "gap {gap}");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::job::{JavaMode, JobSpec, JobState};
    use gridvm::programs;

    /// Machine owners express admission policy in ClassAds: a machine that
    /// only accepts jobs from one owner rejects everyone else at both the
    /// matchmaking and the claim-verification layers.
    #[test]
    fn owner_policy_gates_by_submitter() {
        let mut exclusive = MachineSpec::healthy("adas-box", 1024);
        exclusive.owner_requirements =
            "TARGET.ImageSize <= MY.Memory && TARGET.Owner == \"ada\"".into();
        let report = PoolBuilder::new(61)
            .machine(exclusive)
            .machine(MachineSpec::healthy("shared", 128))
            .jobs(vec![
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30)),
                JobSpec::java(2, "bob", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30)),
            ])
            .run(SimTime::from_secs(3600));
        assert_eq!(report.metrics.jobs_completed, 2);
        // Ada's job ranks the big exclusive machine highest and gets it;
        // Bob's job can only ever run on the shared machine.
        assert_eq!(
            report.jobs[&1].attempts[0].machine,
            PoolBuilder::FIRST_MACHINE_ID
        );
        assert_eq!(
            report.jobs[&2].attempts[0].machine,
            PoolBuilder::FIRST_MACHINE_ID + 1
        );
    }

    /// A machine too small for every job leaves the queue idle forever —
    /// no match, no error, exactly Condor's semantics for unsatisfiable
    /// requirements.
    #[test]
    fn unsatisfiable_requirements_idle_forever() {
        let mut big_job = JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped);
        big_job.image_size = 4096;
        let report = PoolBuilder::new(62)
            .machine(MachineSpec::healthy("small", 128))
            .job(big_job)
            .run(SimTime::from_secs(600));
        assert!(!report.quiescent);
        assert_eq!(report.jobs[&1].state, JobState::Idle);
        assert!(report.jobs[&1].attempts.is_empty());
        assert_eq!(report.metrics.jobs_finished(), 0);
    }

    /// Attempt histories carry machine, scope, and timing for every try —
    /// Figure 3's "Summary of All Execution Attempts".
    #[test]
    fn attempt_summary_is_complete() {
        let report = PoolBuilder::new(63)
            .machine(MachineSpec::misconfigured("bad", 1024))
            .machine(MachineSpec::healthy("good", 128))
            .schedd_policy(ScheddPolicy {
                avoid_chronic_hosts: true,
                avoid_threshold: 1,
                ..ScheddPolicy::default()
            })
            .job(
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(30)),
            )
            .run(SimTime::from_secs(3600));
        let rec = &report.jobs[&1];
        assert!(rec.attempts.len() >= 2);
        for (i, a) in rec.attempts.iter().enumerate() {
            assert!(a.ended >= a.started, "attempt {i} times ordered");
            assert!(!a.note.is_empty(), "attempt {i} has a note");
        }
        // Ends with the program result; earlier entries are environmental.
        assert_eq!(
            rec.attempts.last().unwrap().scope,
            Some(errorscope::Scope::Program)
        );
        assert!(rec
            .attempts
            .iter()
            .take(rec.attempts.len() - 1)
            .all(|a| a.scope != Some(errorscope::Scope::Program)));
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::job::{JavaMode, JobSpec};
    use gridvm::programs;

    #[test]
    fn queue_and_history_render() {
        let report = PoolBuilder::new(71)
            .machine(MachineSpec::healthy("m", 256))
            .jobs(vec![
                JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                    .with_exec_time(SimDuration::from_secs(10)),
                JobSpec::java(2, "bob", programs::corrupt_image(), JavaMode::Scoped),
            ])
            .run(SimTime::from_secs(3600));
        let q = report.render_queue();
        assert!(q.contains("OWNER"), "{q}");
        assert!(q.contains("ada"));
        assert!(q.contains("done: completed(exit=0)"), "{q}");
        assert!(q.contains("unexecutable"), "{q}");

        let h = report.render_history(1);
        assert!(h.contains("attempt 1"), "{h}");
        assert!(h.contains("program"), "{h}");
        assert!(report.render_history(99).contains("no such job"));
    }
}
