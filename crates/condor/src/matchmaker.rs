//! The matchmaker daemon.
//!
//! "This process collects information about all participants, and notifies
//! schedds and startds of compatible partners. Matched processes are
//! individually responsible for communicating with each other and verifying
//! that their needs are met" (§2.1). The matchmaker holds soft state only:
//! ads expire, and a lost notification merely delays a job until the next
//! negotiation cycle.
//!
//! # Negotiation at scale
//!
//! The naive kernel is O(jobs × machines) AST walks per cycle. The
//! [`MatchEngine`] keeps the same greedy, RNG-tie-broken semantics
//! bit-identical (gated in-process by `exp_matchmaker` against the frozen
//! `bench::legacy::naive_negotiate`) while doing asymptotically less work:
//!
//! * ads are [compiled](classads::compile) once per *content change*, not
//!   re-walked per pair;
//! * machine ads are indexed by their discrete gating attributes (literal
//!   `HasJava`) and sorted literal `Memory`, so a job only probes machines
//!   that could possibly satisfy its extracted `Requirements` conjuncts —
//!   pruning is conservative: any conjunct we cannot prove False (or
//!   never-True) for a machine keeps that machine in the probe set;
//! * jobs whose `Rank` is recognizably `TARGET.Memory` descend the sorted
//!   index from the top and stop as soon as no lower memory tier can beat
//!   the best candidate found;
//! * per-(job, machine) verdicts are cached keyed by ad *generation*
//!   counters, so unchanged ad pairs are never re-evaluated across cycles.
//!
//! The index holds the paper's soft-state bargain: expired ads are removed
//! from every bucket, and consumed ads leave the index the moment a match
//! notification fires.

use crate::faults::FaultPlan;
use crate::msg::Msg;
use classads::ast::{AttrScope, BinOp, Expr};
use classads::compile::{symmetric_match_compiled, CompiledAd, Scratch};
use classads::ClassAd;
use classads::Value;
use desim::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// How often the matchmaker runs a negotiation cycle.
pub const NEGOTIATE_PERIOD: SimDuration = SimDuration::from_secs(10);
/// Machine ads older than this are discarded (the startd re-advertises
/// every few seconds while alive).
pub const AD_LIFETIME: SimDuration = SimDuration::from_secs(30);

/// Counters the matchmaker accumulates, projected into registries as
/// `mm_*` metrics.
#[derive(Debug, Clone, Default)]
pub struct MatchmakerStats {
    /// Ad pairs actually evaluated (cache misses).
    pub pairs_evaluated: u64,
    /// Pair verdicts served from the generation-keyed cache.
    pub cache_hits: u64,
    /// Matches produced.
    pub matches_made: u64,
    /// Negotiation cycles run.
    pub cycles: u64,
    /// Machine + job ads live at the start of the last cycle.
    pub ads_active: u64,
    /// Wall-clock microseconds per negotiation cycle. **Nondeterministic**:
    /// kept out of [`MatchmakerStats::register_into`] so registry snapshots
    /// stay bit-identical across same-seed runs; export it explicitly via
    /// [`MatchmakerStats::register_timing_into`] when wall-clock data is
    /// wanted.
    pub cycle_us: obs::Histogram,
}

impl MatchmakerStats {
    /// Project the deterministic counters into a registry.
    pub fn register_into(&self, reg: &mut obs::Registry) {
        reg.counter_add("mm_pairs_evaluated", &[], self.pairs_evaluated);
        reg.counter_add("mm_cache_hits", &[], self.cache_hits);
        reg.counter_add("mm_matches_made", &[], self.matches_made);
        reg.counter_add("mm_cycles", &[], self.cycles);
        reg.gauge_set("mm_ads_active", &[], self.ads_active as f64);
    }

    /// Merge the wall-clock cycle histogram into a registry. Separate from
    /// [`MatchmakerStats::register_into`] because wall-clock durations are
    /// not reproducible and would break byte-identical snapshot gates.
    pub fn register_timing_into(&self, reg: &mut obs::Registry) {
        reg.histogram_merge("mm_cycle_us", &[], &self.cycle_us);
    }
}

// ---------------------------------------------------------------------
// Conservative constraint extraction
// ---------------------------------------------------------------------

/// Discrete java-capability gate of a machine ad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JavaClass {
    /// `HasJava` is the literal `true`: satisfies `TARGET.HasJava =?= true`.
    Yes,
    /// `HasJava` is absent or a non-`true` literal: that conjunct can never
    /// be True, so java-requiring jobs can skip this machine.
    No,
    /// `HasJava` is a non-literal expression: unknown until evaluated, so
    /// the machine is always probed.
    Unknown,
}

impl JavaClass {
    fn idx(self) -> usize {
        match self {
            JavaClass::Yes => 0,
            JavaClass::No => 1,
            JavaClass::Unknown => 2,
        }
    }
}

/// What the index knows about a machine's `Memory`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MemClass {
    /// A literal integer: the machine sorts into the memory index.
    Known(i64),
    /// The attribute is absent. A job conjunct comparing `TARGET.Memory`
    /// then evaluates Undefined, which can never make `Requirements` True —
    /// so memory-bounded jobs skip these machines entirely.
    Missing,
    /// Present but not a literal integer: value unknown until evaluation,
    /// always probed.
    Opaque,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct MachineGate {
    java: JavaClass,
    mem: MemClass,
}

fn machine_gate(ad: &ClassAd) -> MachineGate {
    let java = match ad.get("HasJava") {
        Some(Expr::Lit(Value::Bool(true))) => JavaClass::Yes,
        Some(Expr::Lit(_)) | None => JavaClass::No,
        Some(_) => JavaClass::Unknown,
    };
    let mem = match ad.get("Memory") {
        Some(Expr::Lit(Value::Int(m))) => MemClass::Known(*m),
        None => MemClass::Missing,
        Some(_) => MemClass::Opaque,
    };
    MachineGate { java, mem }
}

/// Constraints extracted from the top-level `&&` conjuncts of a job's
/// `Requirements`. Extraction is *conservative*: a conjunct is only used
/// for pruning when its failure provably prevents `Requirements` from
/// evaluating to exactly True (False dominates `&&`, and an Undefined or
/// Error conjunct can never conjoin to True either).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct JobNeeds {
    /// The job carries a `TARGET.HasJava =?= true` conjunct.
    requires_java: bool,
    /// Minimum literal machine memory implied by a
    /// `TARGET.Memory >= <job-constant>` (or flipped/strict) conjunct.
    min_memory: Option<i64>,
}

fn job_needs(ad: &ClassAd) -> JobNeeds {
    let mut needs = JobNeeds::default();
    if let Some(req) = ad.get("Requirements") {
        collect_conjuncts(ad, req, &mut needs);
    }
    needs
}

fn collect_conjuncts(ad: &ClassAd, e: &Expr, needs: &mut JobNeeds) {
    match e {
        Expr::Binary(BinOp::And, a, b) => {
            collect_conjuncts(ad, a, needs);
            collect_conjuncts(ad, b, needs);
        }
        Expr::Binary(BinOp::MetaEq, a, b) => {
            let lit_true = |x: &Expr| matches!(x, Expr::Lit(Value::Bool(true)));
            if (refers_to_target(ad, a, "hasjava") && lit_true(b))
                || (refers_to_target(ad, b, "hasjava") && lit_true(a))
            {
                needs.requires_java = true;
            }
        }
        // TARGET.Memory >= c  /  c <= TARGET.Memory: inclusive bound.
        Expr::Binary(BinOp::Ge, a, b) if refers_to_target(ad, a, "memory") => {
            if let Some(c) = job_constant(ad, b) {
                raise_min(needs, c.ceil());
            }
        }
        Expr::Binary(BinOp::Le, a, b) if refers_to_target(ad, b, "memory") => {
            if let Some(c) = job_constant(ad, a) {
                raise_min(needs, c.ceil());
            }
        }
        // TARGET.Memory > c  /  c < TARGET.Memory: exclusive bound.
        Expr::Binary(BinOp::Gt, a, b) if refers_to_target(ad, a, "memory") => {
            if let Some(c) = job_constant(ad, b) {
                raise_min(needs, c.floor() + 1.0);
            }
        }
        Expr::Binary(BinOp::Lt, a, b) if refers_to_target(ad, b, "memory") => {
            if let Some(c) = job_constant(ad, a) {
                raise_min(needs, c.floor() + 1.0);
            }
        }
        _ => {}
    }
}

fn raise_min(needs: &mut JobNeeds, bound: f64) {
    if !bound.is_finite() || bound > i64::MAX as f64 {
        return; // don't prune on a bound we can't represent
    }
    let b = bound as i64;
    needs.min_memory = Some(needs.min_memory.map_or(b, |cur| cur.max(b)));
}

/// Does `e` reference `attr` *of the machine ad* when evaluated in the job
/// ad's frame? True for `TARGET.attr`, and for a bare `attr` the job ad
/// itself does not define (bare references try the evaluating frame first).
fn refers_to_target(ad: &ClassAd, e: &Expr, attr: &str) -> bool {
    match e {
        Expr::Attr {
            scope: AttrScope::Target,
            name,
            ..
        } => name == attr,
        Expr::Attr {
            scope: AttrScope::Either,
            name,
            ..
        } => name == attr && ad.get(name).is_none(),
        _ => false,
    }
}

/// A value that is constant from the job's side of the evaluation: a
/// numeric literal, or a job attribute holding a numeric literal.
fn job_constant(ad: &ClassAd, e: &Expr) -> Option<f64> {
    let lit_num = |x: &Expr| match x {
        Expr::Lit(Value::Int(i)) => Some(*i as f64),
        Expr::Lit(Value::Real(r)) if r.is_finite() => Some(*r),
        _ => None,
    };
    match e {
        Expr::Lit(_) => lit_num(e),
        Expr::Attr {
            scope: AttrScope::My | AttrScope::Either,
            name,
            ..
        } => ad.get(name).and_then(lit_num),
        _ => None,
    }
}

/// Is the job's `Rank` expression recognizably "the machine's memory"?
/// When it is — and the machine's `Memory` is a literal integer — the rank
/// a match would produce equals the index key, and negotiation can walk
/// memory tiers top-down instead of evaluating every candidate.
fn rank_is_target_memory(ad: &ClassAd) -> bool {
    match ad.get("Rank") {
        Some(Expr::Attr {
            scope: AttrScope::Target,
            name,
            ..
        }) => name == "memory",
        Some(Expr::Attr {
            scope: AttrScope::Either,
            name,
            ..
        }) => name == "memory" && ad.get("memory").is_none(),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// The incremental index
// ---------------------------------------------------------------------

/// Machine ads bucketed by java class, with literal memories sorted for
/// range probes. Sets are `BTreeSet` so insert/remove are O(log n) and
/// iteration order is deterministic.
#[derive(Debug, Default)]
struct MatchIndex {
    /// Literal-memory machines per java class, keyed `(memory, id)`.
    by_mem: [BTreeSet<(i64, ActorId)>; 3],
    /// Machines with no `Memory` attribute per java class — skipped
    /// whenever a job carries a memory bound.
    no_mem: [BTreeSet<ActorId>; 3],
    /// Machines whose `Memory` is a non-literal expression — always probed.
    opaque_mem: [BTreeSet<ActorId>; 3],
}

impl MatchIndex {
    fn insert(&mut self, id: ActorId, gate: MachineGate) {
        let j = gate.java.idx();
        match gate.mem {
            MemClass::Known(m) => {
                self.by_mem[j].insert((m, id));
            }
            MemClass::Missing => {
                self.no_mem[j].insert(id);
            }
            MemClass::Opaque => {
                self.opaque_mem[j].insert(id);
            }
        }
    }

    fn remove(&mut self, id: ActorId, gate: MachineGate) {
        let j = gate.java.idx();
        match gate.mem {
            MemClass::Known(m) => {
                self.by_mem[j].remove(&(m, id));
            }
            MemClass::Missing => {
                self.no_mem[j].remove(&id);
            }
            MemClass::Opaque => {
                self.opaque_mem[j].remove(&id);
            }
        }
    }

    fn classes(requires_java: bool) -> &'static [usize] {
        if requires_java {
            &[0, 2] // Yes + Unknown; No can never satisfy =?= true
        } else {
            &[0, 1, 2]
        }
    }

    /// Collect `(memory, id)` of plausible machines with literal memory.
    fn probe_known(&self, needs: JobNeeds, out: &mut Vec<(i64, ActorId)>) {
        for &j in Self::classes(needs.requires_java) {
            match needs.min_memory {
                Some(b) => out.extend(self.by_mem[j].range((b, 0)..).copied()),
                None => out.extend(self.by_mem[j].iter().copied()),
            }
        }
    }

    /// Collect plausible machines whose rank/memory is unknown until
    /// evaluated.
    fn probe_unknown(&self, needs: JobNeeds, out: &mut Vec<ActorId>) {
        for &j in Self::classes(needs.requires_java) {
            out.extend(self.opaque_mem[j].iter().copied());
            if needs.min_memory.is_none() {
                out.extend(self.no_mem[j].iter().copied());
            }
        }
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

struct MachineEntry {
    compiled: CompiledAd,
    fresh_at: SimTime,
    generation: u64,
    gate: MachineGate,
}

struct JobEntry {
    compiled: CompiledAd,
    generation: u64,
    needs: JobNeeds,
    rank_is_memory: bool,
}

/// A cached pair verdict: everything the greedy cycle needs from a
/// `symmetric_match`.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    matched: bool,
    left_rank: f64,
}

/// The negotiation engine: ad storage, the incremental match index, the
/// generation-keyed verdict cache, and reusable scan buffers. Drivable
/// directly (as the scale benchmarks do) or through the [`Matchmaker`]
/// actor.
///
/// Matching semantics — including which machine wins each job, and the
/// single RNG tie-break draw per matched job — are bit-identical to the
/// naive O(jobs × machines) kernel preserved as
/// `bench::legacy::naive_negotiate`.
pub struct MatchEngine {
    machines: BTreeMap<ActorId, MachineEntry>,
    // Keyed by (schedd, job) so several schedds can coexist.
    jobs: BTreeMap<(ActorId, u32), JobEntry>,
    index: MatchIndex,
    // (schedd, job, machine) -> (job generation, machine generation,
    // verdict). Lookup-only (never iterated), so a HashMap cannot leak
    // nondeterminism.
    cache: HashMap<(ActorId, u32, ActorId), (u64, u64, Verdict)>,
    next_generation: u64,
    scratch: Scratch,
    // Reused scan buffers.
    known_buf: Vec<(i64, ActorId)>,
    unknown_buf: Vec<ActorId>,
    candidate_buf: Vec<ActorId>,
    /// Counters.
    pub stats: MatchmakerStats,
}

impl Default for MatchEngine {
    fn default() -> Self {
        MatchEngine::new()
    }
}

impl MatchEngine {
    /// An empty engine.
    pub fn new() -> MatchEngine {
        MatchEngine {
            machines: BTreeMap::new(),
            jobs: BTreeMap::new(),
            index: MatchIndex::default(),
            cache: HashMap::new(),
            next_generation: 0,
            scratch: Scratch::new(),
            known_buf: Vec::new(),
            unknown_buf: Vec::new(),
            candidate_buf: Vec::new(),
            stats: MatchmakerStats::default(),
        }
    }

    /// Insert or refresh a machine ad. An ad identical to the stored one
    /// only refreshes the expiry clock — generation (and therefore every
    /// cached verdict involving this machine) is preserved.
    pub fn insert_machine(&mut self, id: ActorId, ad: ClassAd, now: SimTime) {
        if let Some(existing) = self.machines.get_mut(&id) {
            if *existing.compiled.ad() == ad {
                existing.fresh_at = now;
                return;
            }
        }
        self.remove_machine(id);
        self.next_generation += 1;
        let gate = machine_gate(&ad);
        self.index.insert(id, gate);
        self.machines.insert(
            id,
            MachineEntry {
                compiled: CompiledAd::compile(&ad),
                fresh_at: now,
                generation: self.next_generation,
                gate,
            },
        );
    }

    /// Insert or replace a job ad. Identical resubmissions keep their
    /// generation (and cached verdicts).
    pub fn insert_job(&mut self, schedd: ActorId, job: u32, ad: ClassAd) {
        if let Some(existing) = self.jobs.get(&(schedd, job)) {
            if *existing.compiled.ad() == ad {
                return;
            }
        }
        self.next_generation += 1;
        self.jobs.insert(
            (schedd, job),
            JobEntry {
                needs: job_needs(&ad),
                rank_is_memory: rank_is_target_memory(&ad),
                compiled: CompiledAd::compile(&ad),
                generation: self.next_generation,
            },
        );
    }

    /// Drop a machine ad (consumed or expired): it leaves every index
    /// bucket immediately — the index holds no state the pool has not
    /// recently asserted.
    pub fn remove_machine(&mut self, id: ActorId) {
        if let Some(e) = self.machines.remove(&id) {
            self.index.remove(id, e.gate);
        }
    }

    /// Drop a job ad.
    pub fn remove_job(&mut self, schedd: ActorId, job: u32) {
        self.jobs.remove(&(schedd, job));
    }

    /// Live machine ads.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Live job ads.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Run one negotiation cycle: expire stale machine ads, then greedily
    /// match jobs in (schedd, id) order, each taking its best-ranked
    /// compatible machine, rank ties broken by one uniform RNG draw per
    /// matched job. Returns `(schedd, job, machine)` notifications;
    /// consumed ads are already removed when this returns.
    pub fn negotiate(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<(ActorId, u32, ActorId)> {
        // Expire stale machine ads — a crashed startd stops advertising
        // and silently falls out of the pool.
        let expired: Vec<ActorId> = self
            .machines
            .iter()
            .filter(|(_, m)| now - m.fresh_at > AD_LIFETIME)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.remove_machine(id);
        }

        self.stats.ads_active = (self.machines.len() + self.jobs.len()) as u64;

        // A machine serves at most one match per cycle. The set is
        // membership-only (never iterated), so HashSet is deterministic.
        let mut taken: HashSet<ActorId> = HashSet::new();
        let mut notifications: Vec<(ActorId, u32, ActorId)> = Vec::new();

        let jobs = std::mem::take(&mut self.jobs);
        for ((schedd, job), entry) in &jobs {
            if let Some(mid) = self.best_machine_for(*schedd, *job, entry, &taken, rng) {
                taken.insert(mid);
                notifications.push((*schedd, *job, mid));
            }
        }
        self.jobs = jobs;

        // Consume matched ads: the schedd re-advertises if the claim falls
        // through, the startd re-advertises while alive.
        for &(schedd, job, machine) in &notifications {
            self.remove_job(schedd, job);
            self.remove_machine(machine);
        }
        self.stats.matches_made += notifications.len() as u64;

        // Evict cache entries whose ads died or changed generation, so the
        // cache tracks the live pair set instead of growing monotonically.
        let (jobs, machines) = (&self.jobs, &self.machines);
        self.cache.retain(|&(s, j, m), &mut (jg, mg, _)| {
            jobs.get(&(s, j)).is_some_and(|e| e.generation == jg)
                && machines.get(&m).is_some_and(|e| e.generation == mg)
        });

        notifications
    }

    // Find the job's best machine: all compatible machines at the highest
    // job-assigned rank, one chosen uniformly. "Ties must not always
    // favour the same host, or a free fast-failing machine becomes a
    // deterministic magnet."
    //
    // Equivalence contract with the naive kernel: the candidate list below
    // must equal (as a sorted set) the naive scan's list, and exactly one
    // `rng.index` draw happens iff it is non-empty.
    fn best_machine_for(
        &mut self,
        schedd: ActorId,
        job: u32,
        entry: &JobEntry,
        taken: &HashSet<ActorId>,
        rng: &mut SimRng,
    ) -> Option<ActorId> {
        let mut known = std::mem::take(&mut self.known_buf);
        let mut unknown = std::mem::take(&mut self.unknown_buf);
        let mut candidates = std::mem::take(&mut self.candidate_buf);
        known.clear();
        unknown.clear();
        candidates.clear();

        self.index.probe_known(entry.needs, &mut known);
        self.index.probe_unknown(entry.needs, &mut unknown);

        let mut best_rank = f64::NEG_INFINITY;
        // The naive accumulation step, shared by every probe order: the
        // final candidate set is the argmax by rank regardless of the
        // order machines are considered in.
        macro_rules! consider {
            ($mid:expr) => {
                let mid: ActorId = $mid;
                if !taken.contains(&mid) {
                    let v = self.verdict(schedd, job, entry, mid);
                    if v.matched {
                        if v.left_rank > best_rank {
                            best_rank = v.left_rank;
                            candidates.clear();
                        }
                        if v.left_rank == best_rank {
                            candidates.push(mid);
                        }
                    }
                }
            };
        }

        // Machines whose rank contribution is unknowable from the index
        // are always evaluated.
        unknown.sort_unstable();
        for &mid in &unknown {
            consider!(mid);
        }

        if entry.rank_is_memory {
            // Rank == TARGET.Memory and these machines carry literal
            // memory: a matched candidate's rank *is* its index key. Walk
            // memory tiers top-down and stop once no remaining tier can
            // reach the best rank already found.
            known.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut i = 0;
            while i < known.len() {
                let tier = known[i].0;
                if (tier as f64) < best_rank {
                    break; // every remaining tier ranks strictly lower
                }
                while i < known.len() && known[i].0 == tier {
                    consider!(known[i].1);
                    i += 1;
                }
            }
        } else {
            // Generic rank: evaluate every plausible machine.
            known.sort_unstable_by_key(|&(_, id)| id);
            for &(_, mid) in &known {
                consider!(mid);
            }
        }

        // The naive kernel builds its candidate list in ascending machine
        // order; restore that order before the tie-break draw so the
        // chosen index selects the same machine.
        candidates.sort_unstable();
        let pick = if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.index(candidates.len())])
        };

        self.known_buf = known;
        self.unknown_buf = unknown;
        self.candidate_buf = candidates;
        pick
    }

    fn verdict(&mut self, schedd: ActorId, job: u32, entry: &JobEntry, mid: ActorId) -> Verdict {
        let m = &self.machines[&mid];
        let key = (schedd, job, mid);
        if let Some(&(jg, mg, v)) = self.cache.get(&key) {
            if jg == entry.generation && mg == m.generation {
                self.stats.cache_hits += 1;
                return v;
            }
        }
        self.stats.pairs_evaluated += 1;
        let r = symmetric_match_compiled(&entry.compiled, &m.compiled, &mut self.scratch);
        let v = Verdict {
            matched: r.matched,
            left_rank: r.left_rank,
        };
        self.cache.insert(key, (entry.generation, m.generation, v));
        v
    }
}

// ---------------------------------------------------------------------
// The actor
// ---------------------------------------------------------------------

/// The matchmaker actor: wraps a [`MatchEngine`] behind the pool's message
/// protocol.
pub struct Matchmaker {
    engine: MatchEngine,
    /// The pool this matchmaker serves; stamped on every match
    /// notification and flock grant. Defaults to 0 (the home pool).
    pool_id: u64,
    /// The fault plan, consulted for matchmaker-down windows (the
    /// matchmaker is an actor; [`FaultPlan::crash`] on its id silences
    /// it). `None` means never down.
    plan: Option<Arc<FaultPlan>>,
    /// Total matches produced.
    pub matches_made: u64,
    /// Negotiation cycles run.
    pub cycles: u64,
    /// Flock requests granted.
    pub flock_grants: u64,
}

impl Matchmaker {
    /// A new matchmaker.
    pub fn new() -> Matchmaker {
        Matchmaker {
            engine: MatchEngine::new(),
            pool_id: 0,
            plan: None,
            matches_made: 0,
            cycles: 0,
            flock_grants: 0,
        }
    }

    /// Serve pool `pool_id` instead of the default pool 0.
    pub fn with_pool(mut self, pool_id: u64) -> Matchmaker {
        self.pool_id = pool_id;
        self
    }

    /// Consult `plan` for crash windows scheduled against this
    /// matchmaker's actor id: while crashed, every inbound ad and flock
    /// request is dropped silently.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Matchmaker {
        self.plan = Some(plan);
        self
    }

    /// The engine's counters.
    pub fn stats(&self) -> &MatchmakerStats {
        &self.engine.stats
    }

    fn down(&self, self_id: ActorId, now: SimTime) -> bool {
        self.plan
            .as_ref()
            .is_some_and(|p| p.crashed_at(self_id, now))
    }
}

impl Default for Matchmaker {
    fn default() -> Self {
        Matchmaker::new()
    }
}

impl Actor<Msg> for Matchmaker {
    fn name(&self) -> String {
        "matchmaker".into()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.send_self_after(NEGOTIATE_PERIOD, Msg::NegotiateTick);
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        // A crashed matchmaker is silent: ads and flock requests vanish
        // into it, and negotiation halts until the window closes. The
        // timer keeps re-arming so it wakes up when the crash ends.
        if self.down(ctx.self_id, ctx.now) {
            if let Msg::NegotiateTick = msg {
                ctx.send_self_after(NEGOTIATE_PERIOD, Msg::NegotiateTick);
            }
            return;
        }
        match msg {
            Msg::MachineAd { ad } => {
                self.engine.insert_machine(from, *ad, ctx.now);
            }
            Msg::JobAd { job, ad } => {
                self.engine.insert_job(from, job, *ad);
            }
            Msg::FlockRequest { .. } => {
                // Grant with the current machine-ad count: zero is an
                // explicit saturation denial, never silence.
                self.flock_grants += 1;
                ctx.send_net(
                    from,
                    Msg::FlockGrant {
                        pool: self.pool_id,
                        free: self.engine.machine_count() as u64,
                    },
                );
            }
            Msg::NegotiateTick => {
                self.cycles += 1;
                self.engine.stats.cycles += 1;
                let t0 = std::time::Instant::now();
                let notifications = self.engine.negotiate(ctx.now, ctx.rng);
                self.engine
                    .stats
                    .cycle_us
                    .record(t0.elapsed().as_micros() as u64);
                for (schedd, job, machine) in notifications {
                    self.matches_made += 1;
                    ctx.trace_with(|| format!("match job {job} -> machine {machine}"));
                    ctx.emit(obs::Event::Match {
                        job: u64::from(job),
                        machine: machine as u64,
                    });
                    ctx.send_net(
                        schedd,
                        Msg::MatchNotify {
                            job,
                            machine,
                            pool: self.pool_id,
                        },
                    );
                }
                ctx.send_self_after(NEGOTIATE_PERIOD, Msg::NegotiateTick);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JavaMode, JobSpec};
    use crate::machine::MachineSpec;
    use classads::matchmaking::symmetric_match;

    /// An actor that sends a fixed ad once at startup (so `from` is its own
    /// id, as with a real startd or schedd), optionally delayed.
    struct AdSender {
        mm: ActorId,
        ad: ClassAd,
        as_job: Option<u32>,
        delay: SimDuration,
        notified: Vec<(u32, usize)>,
    }

    impl AdSender {
        fn machine(mm: ActorId, ad: ClassAd) -> AdSender {
            AdSender {
                mm,
                ad,
                as_job: None,
                delay: SimDuration::ZERO,
                notified: vec![],
            }
        }
        fn job(mm: ActorId, job: u32, ad: ClassAd) -> AdSender {
            AdSender {
                mm,
                ad,
                as_job: Some(job),
                delay: SimDuration::ZERO,
                notified: vec![],
            }
        }
    }

    impl Actor<Msg> for AdSender {
        fn name(&self) -> String {
            "adsender".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let msg = match self.as_job {
                Some(job) => Msg::JobAd {
                    job,
                    ad: Box::new(self.ad.clone()),
                },
                None => Msg::MachineAd {
                    ad: Box::new(self.ad.clone()),
                },
            };
            ctx.send_after(self.delay, self.mm, msg);
        }
        fn on_message(&mut self, _f: ActorId, msg: Msg, _c: &mut Context<'_, Msg>) {
            if let Msg::MatchNotify { job, machine, .. } = msg {
                self.notified.push((job, machine));
            }
        }
    }

    #[test]
    fn two_way_match_prefers_highest_rank() {
        let mut w: World<Msg> = World::new(2);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let job = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        let schedd = w.add_actor(Box::new(AdSender::job(mm, 1, job.ad())));
        let _small = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("small", 128).ad(true),
        )));
        let big = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("big", 512).ad(true),
        )));
        let _nojava = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("nojava", 1024).ad(false),
        )));
        w.run_until(SimTime::from_secs(15));
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 1);
        // The big Java machine wins (ranked by memory); the bigger
        // machine without Java fails the job's requirements.
        assert_eq!(w.get::<AdSender>(schedd).unwrap().notified, vec![(1, big)]);
    }

    #[test]
    fn consumed_ads_are_not_rematched() {
        let mut w: World<Msg> = World::new(4);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let j1 = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        let j2 = JobSpec::java(2, "bob", vec![], JavaMode::Scoped);
        let s1 = w.add_actor(Box::new(AdSender::job(mm, 1, j1.ad())));
        let s2 = w.add_actor(Box::new(AdSender::job(mm, 2, j2.ad())));
        let m = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("only", 512).ad(true),
        )));
        w.run_until(SimTime::from_secs(60));
        // One machine, two jobs, ads never refreshed: exactly one match.
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 1);
        let total = w.get::<AdSender>(s1).unwrap().notified.len()
            + w.get::<AdSender>(s2).unwrap().notified.len();
        assert_eq!(total, 1);
        let _ = m;
    }

    #[test]
    fn stale_machine_ads_expire() {
        let mut w: World<Msg> = World::new(3);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let _m = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("m", 512).ad(true),
        )));
        // The job ad arrives long after the machine ad has gone stale.
        let mut late = AdSender::job(
            mm,
            1,
            JobSpec::java(1, "ada", vec![], JavaMode::Scoped).ad(),
        );
        late.delay = SimDuration::from_secs(60);
        let _s = w.add_actor(Box::new(late));
        w.run_until(SimTime::from_secs(120));
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 0);
    }

    // -----------------------------------------------------------------
    // Engine-level tests
    // -----------------------------------------------------------------

    /// The naive kernel, replicated locally for differential testing (the
    /// frozen benchmark copy lives in `bench::legacy`, which this crate
    /// cannot depend on without a cycle).
    fn naive_cycle(
        jobs: &BTreeMap<(ActorId, u32), ClassAd>,
        machines: &BTreeMap<ActorId, ClassAd>,
        rng: &mut SimRng,
    ) -> Vec<(ActorId, u32, ActorId)> {
        let mut taken: Vec<ActorId> = Vec::new();
        let mut notifications = Vec::new();
        for ((schedd, job), ad) in jobs {
            let mut best_rank = f64::NEG_INFINITY;
            let mut candidates: Vec<ActorId> = Vec::new();
            for (mid, m) in machines {
                if taken.contains(mid) {
                    continue;
                }
                let r = symmetric_match(ad, m);
                if !r.matched {
                    continue;
                }
                if r.left_rank > best_rank {
                    best_rank = r.left_rank;
                    candidates.clear();
                }
                if r.left_rank == best_rank {
                    candidates.push(*mid);
                }
            }
            if !candidates.is_empty() {
                let mid = candidates[rng.index(candidates.len())];
                taken.push(mid);
                notifications.push((*schedd, *job, mid));
            }
        }
        notifications
    }

    fn pool_machine(rng: &mut SimRng, quirky: bool) -> ClassAd {
        let mems = [64, 128, 128, 256, 512, 1024, 2048];
        let mut ad = ClassAd::new()
            .with_int("Memory", mems[rng.index(mems.len())])
            .with_expr("Requirements", "TARGET.ImageSize <= MY.Memory")
            .with_expr("Rank", "0");
        if rng.chance(0.6) {
            ad.insert("HasJava", Value::Bool(true));
        }
        if quirky && rng.chance(0.3) {
            // Non-literal memory: lands in the opaque bucket.
            ad = ad.with_expr("Memory", "256 + Slack").with_int("Slack", 64);
        }
        if quirky && rng.chance(0.2) {
            ad.remove("Memory");
        }
        ad
    }

    fn pool_job(rng: &mut SimRng, quirky: bool) -> ClassAd {
        let sizes = [32, 96, 200, 400, 900];
        let mut ad = ClassAd::new()
            .with_int("ImageSize", sizes[rng.index(sizes.len())])
            .with_expr("Rank", "TARGET.Memory");
        let req = if rng.chance(0.5) {
            "TARGET.Memory >= MY.ImageSize && TARGET.HasJava =?= true"
        } else {
            "TARGET.Memory >= MY.ImageSize"
        };
        let ad2 = ad.with_expr("Requirements", req);
        ad = ad2;
        if quirky && rng.chance(0.3) {
            // Generic rank: forces the full-scan path.
            ad = ad.with_expr("Rank", "TARGET.Memory / 2 + 1");
        }
        if quirky && rng.chance(0.2) {
            // Unindexable requirements clause: pruning must stay sound.
            ad = ad.with_expr(
                "Requirements",
                "TARGET.Memory >= MY.ImageSize || TARGET.HasJava =?= true",
            );
        }
        ad
    }

    /// Multi-cycle differential test against the naive kernel: same ads,
    /// same seed, expiry + consumption + re-advertisement churn, indexable
    /// and quirky (opaque/generic/disjunctive) ads alike.
    #[test]
    fn engine_is_bit_identical_to_naive_kernel() {
        for seed in [1u64, 7, 42] {
            for quirky in [false, true] {
                let mut gen_rng = SimRng::seed_from_u64(seed);
                let mut rng_a = SimRng::seed_from_u64(seed ^ 0xabcd);
                let mut rng_b = SimRng::seed_from_u64(seed ^ 0xabcd);

                let mut engine = MatchEngine::new();
                let mut naive_jobs: BTreeMap<(ActorId, u32), ClassAd> = BTreeMap::new();
                let mut naive_machines: BTreeMap<ActorId, ClassAd> = BTreeMap::new();

                let machine_ads: Vec<ClassAd> = (0..40)
                    .map(|_| pool_machine(&mut gen_rng, quirky))
                    .collect();
                let job_ads: Vec<ClassAd> =
                    (0..25).map(|_| pool_job(&mut gen_rng, quirky)).collect();

                let mut now = SimTime::ZERO;
                for cycle in 0..6 {
                    now += NEGOTIATE_PERIOD;
                    // Re-advertise everything still unmatched, plus
                    // machines consumed earlier (startds re-advertise).
                    for (i, ad) in machine_ads.iter().enumerate() {
                        // A rotating subset goes silent to exercise expiry.
                        if (i + cycle) % 9 == 0 {
                            continue;
                        }
                        engine.insert_machine(100 + i, ad.clone(), now);
                        naive_machines.insert(100 + i, ad.clone());
                    }
                    for (j, ad) in job_ads.iter().enumerate() {
                        engine.insert_job(1, j as u32, ad.clone());
                        naive_jobs.insert((1, j as u32), ad.clone());
                    }

                    let fast = engine.negotiate(now, &mut rng_a);
                    // Naive expiry: the driver re-inserts every cycle, so
                    // only the skipped machines can be stale; mirror the
                    // engine by dropping machines absent for 3+ cycles.
                    // (With re-insertion every cycle nothing ever expires;
                    // consumption is the real churn.)
                    let slow = naive_cycle(&naive_jobs, &naive_machines, &mut rng_b);
                    assert_eq!(fast, slow, "seed {seed} quirky {quirky} cycle {cycle}");
                    for &(s, j, m) in &slow {
                        naive_jobs.remove(&(s, j));
                        naive_machines.remove(&m);
                    }
                }
            }
        }
    }

    #[test]
    fn identical_readvertisements_hit_the_cache() {
        let mut engine = MatchEngine::new();
        let mut rng = SimRng::seed_from_u64(5);
        let m_ad = ClassAd::new()
            .with_int("Memory", 256)
            .with_expr("Requirements", "TARGET.ImageSize <= MY.Memory")
            .with_expr("Rank", "0");
        // The `+ 0` defeats constraint extraction, so the pair is probed —
        // and evaluated, then cached — every cycle despite never matching.
        let j_ad = ClassAd::new()
            .with_int("ImageSize", 4096) // never matches: stays queued
            .with_expr("Requirements", "TARGET.Memory + 0 >= MY.ImageSize")
            .with_expr("Rank", "TARGET.Memory");
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            now += NEGOTIATE_PERIOD;
            engine.insert_machine(10, m_ad.clone(), now);
            engine.insert_job(1, 1, j_ad.clone());
            let out = engine.negotiate(now, &mut rng);
            assert!(out.is_empty());
        }
        // First cycle evaluates the pair; the rest are cache hits.
        assert_eq!(engine.stats.pairs_evaluated, 1);
        assert_eq!(engine.stats.cache_hits, 3);

        // A changed ad bumps the generation and forces re-evaluation.
        engine.insert_machine(10, m_ad.clone().with_int("Memory", 8192), now);
        let out = engine.negotiate(now, &mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(engine.stats.pairs_evaluated, 2);
    }

    #[test]
    fn index_prunes_without_changing_results() {
        // A memory-bounded java job probes only plausible machines: the
        // pairs-evaluated counter must reflect real pruning.
        let mut engine = MatchEngine::new();
        let mut rng = SimRng::seed_from_u64(9);
        let now = SimTime::from_secs(10);
        for i in 0..20 {
            let mem = 64 * (1 + (i as i64 % 8));
            let mut ad = ClassAd::new()
                .with_int("Memory", mem)
                .with_expr("Requirements", "TARGET.ImageSize <= MY.Memory")
                .with_expr("Rank", "0");
            if i % 2 == 0 {
                ad.insert("HasJava", Value::Bool(true));
            }
            engine.insert_machine(100 + i, ad, now);
        }
        let job = ClassAd::new()
            .with_int("ImageSize", 300)
            .with_expr(
                "Requirements",
                "TARGET.Memory >= MY.ImageSize && TARGET.HasJava =?= true",
            )
            .with_expr("Rank", "TARGET.Memory");
        engine.insert_job(1, 1, job);
        let out = engine.negotiate(now, &mut rng);
        assert_eq!(out.len(), 1);
        // 20 machines, but only java ones with Memory >= 300 are plausible,
        // and the rank descent stops at the top tier.
        assert!(
            engine.stats.pairs_evaluated < 6,
            "evaluated {} pairs",
            engine.stats.pairs_evaluated
        );
    }

    #[test]
    fn needs_extraction_is_conservative() {
        let java_job = ClassAd::new().with_int("ImageSize", 64).with_expr(
            "Requirements",
            "TARGET.Memory >= MY.ImageSize && TARGET.HasJava =?= true",
        );
        let needs = job_needs(&java_job);
        assert!(needs.requires_java);
        assert_eq!(needs.min_memory, Some(64));

        // Disjunctions must not prune: the || can rescue a failed branch.
        let either = ClassAd::new().with_expr(
            "Requirements",
            "TARGET.Memory >= 100 || TARGET.HasJava =?= true",
        );
        assert_eq!(job_needs(&either), JobNeeds::default());

        // A bare Memory reference counts as a target bound only when the
        // job ad itself does not define Memory.
        let bare = ClassAd::new().with_expr("Requirements", "Memory >= 128");
        assert_eq!(job_needs(&bare).min_memory, Some(128));
        let shadowed = ClassAd::new()
            .with_int("Memory", 999)
            .with_expr("Requirements", "Memory >= 128");
        assert_eq!(job_needs(&shadowed).min_memory, None);

        // Strict and flipped comparisons.
        let strict = ClassAd::new().with_expr("Requirements", "TARGET.Memory > 100");
        assert_eq!(job_needs(&strict).min_memory, Some(101));
        let flipped = ClassAd::new().with_expr("Requirements", "100 <= TARGET.Memory");
        assert_eq!(job_needs(&flipped).min_memory, Some(100));
        // Real-valued bounds round safely.
        let real = ClassAd::new().with_expr("Requirements", "TARGET.Memory >= 99.5");
        assert_eq!(job_needs(&real).min_memory, Some(100));
    }

    #[test]
    fn machine_gates_classify_literals_only() {
        let yes = ClassAd::new()
            .with_bool("HasJava", true)
            .with_int("Memory", 64);
        assert_eq!(
            machine_gate(&yes),
            MachineGate {
                java: JavaClass::Yes,
                mem: MemClass::Known(64)
            }
        );
        let none = ClassAd::new();
        assert_eq!(
            machine_gate(&none),
            MachineGate {
                java: JavaClass::No,
                mem: MemClass::Missing
            }
        );
        let weird = ClassAd::new()
            .with_expr("HasJava", "1 == 1 && SelfTest")
            .with_bool("SelfTest", true)
            .with_expr("Memory", "Base * 2")
            .with_int("Base", 128);
        let g = machine_gate(&weird);
        assert_eq!(g.java, JavaClass::Unknown);
        assert_eq!(g.mem, MemClass::Opaque);
    }
}
