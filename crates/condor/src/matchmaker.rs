//! The matchmaker daemon.
//!
//! "This process collects information about all participants, and notifies
//! schedds and startds of compatible partners. Matched processes are
//! individually responsible for communicating with each other and verifying
//! that their needs are met" (§2.1). The matchmaker holds soft state only:
//! ads expire, and a lost notification merely delays a job until the next
//! negotiation cycle.

use crate::msg::Msg;
use classads::matchmaking::symmetric_match;
use classads::ClassAd;
use desim::prelude::*;
use std::collections::BTreeMap;

/// How often the matchmaker runs a negotiation cycle.
pub const NEGOTIATE_PERIOD: SimDuration = SimDuration::from_secs(10);
/// Machine ads older than this are discarded (the startd re-advertises
/// every few seconds while alive).
pub const AD_LIFETIME: SimDuration = SimDuration::from_secs(30);

struct MachineEntry {
    ad: ClassAd,
    fresh_at: SimTime,
}

struct JobEntry {
    ad: ClassAd,
}

/// The matchmaker actor.
pub struct Matchmaker {
    machines: BTreeMap<ActorId, MachineEntry>,
    // Keyed by (schedd, job) so several schedds could coexist.
    jobs: BTreeMap<(ActorId, u32), JobEntry>,
    /// Total matches produced.
    pub matches_made: u64,
    /// Negotiation cycles run.
    pub cycles: u64,
}

impl Matchmaker {
    /// A new matchmaker.
    pub fn new() -> Matchmaker {
        Matchmaker {
            machines: BTreeMap::new(),
            jobs: BTreeMap::new(),
            matches_made: 0,
            cycles: 0,
        }
    }
}

impl Default for Matchmaker {
    fn default() -> Self {
        Matchmaker::new()
    }
}

impl Actor<Msg> for Matchmaker {
    fn name(&self) -> String {
        "matchmaker".into()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.send_self_after(NEGOTIATE_PERIOD, Msg::NegotiateTick);
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::MachineAd { ad } => {
                self.machines.insert(
                    from,
                    MachineEntry {
                        ad: *ad,
                        fresh_at: ctx.now,
                    },
                );
            }
            Msg::JobAd { job, ad } => {
                self.jobs.insert((from, job), JobEntry { ad: *ad });
            }
            Msg::NegotiateTick => {
                self.cycles += 1;
                self.negotiate(ctx);
                ctx.send_self_after(NEGOTIATE_PERIOD, Msg::NegotiateTick);
            }
            _ => {}
        }
    }
}

impl Matchmaker {
    fn negotiate(&mut self, ctx: &mut Context<'_, Msg>) {
        // Expire stale machine ads — a crashed startd stops advertising and
        // silently falls out of the pool.
        let now = ctx.now;
        self.machines.retain(|_, m| now - m.fresh_at <= AD_LIFETIME);

        // Greedy cycle: jobs in (schedd, id) order, each takes its
        // best-ranked compatible machine; a machine serves at most one
        // match per cycle.
        let mut taken: Vec<ActorId> = Vec::new();
        let mut notifications: Vec<(ActorId, u32, ActorId)> = Vec::new();

        for ((schedd, job), entry) in &self.jobs {
            // Collect every compatible machine at the best rank, then pick
            // one uniformly — ties must not always favour the same host, or
            // a free fast-failing machine becomes a deterministic magnet.
            let mut best_rank = f64::NEG_INFINITY;
            let mut candidates: Vec<ActorId> = Vec::new();
            for (mid, m) in &self.machines {
                if taken.contains(mid) {
                    continue;
                }
                let r = symmetric_match(&entry.ad, &m.ad);
                if !r.matched {
                    continue;
                }
                if r.left_rank > best_rank {
                    best_rank = r.left_rank;
                    candidates.clear();
                }
                if r.left_rank == best_rank {
                    candidates.push(*mid);
                }
            }
            if !candidates.is_empty() {
                let mid = candidates[ctx.rng.index(candidates.len())];
                taken.push(mid);
                notifications.push((*schedd, *job, mid));
            }
        }

        for (schedd, job, machine) in notifications {
            self.matches_made += 1;
            ctx.trace(format!("match job {job} -> machine {machine}"));
            ctx.send_net(schedd, Msg::MatchNotify { job, machine });
            // The job ad is consumed; the schedd re-advertises if the claim
            // falls through. The machine ad is consumed likewise.
            self.jobs.remove(&(schedd, job));
            self.machines.remove(&machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JavaMode, JobSpec};
    use crate::machine::MachineSpec;

    /// An actor that sends a fixed ad once at startup (so `from` is its own
    /// id, as with a real startd or schedd), optionally delayed.
    struct AdSender {
        mm: ActorId,
        ad: ClassAd,
        as_job: Option<u32>,
        delay: SimDuration,
        notified: Vec<(u32, usize)>,
    }

    impl AdSender {
        fn machine(mm: ActorId, ad: ClassAd) -> AdSender {
            AdSender {
                mm,
                ad,
                as_job: None,
                delay: SimDuration::ZERO,
                notified: vec![],
            }
        }
        fn job(mm: ActorId, job: u32, ad: ClassAd) -> AdSender {
            AdSender {
                mm,
                ad,
                as_job: Some(job),
                delay: SimDuration::ZERO,
                notified: vec![],
            }
        }
    }

    impl Actor<Msg> for AdSender {
        fn name(&self) -> String {
            "adsender".into()
        }
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let msg = match self.as_job {
                Some(job) => Msg::JobAd {
                    job,
                    ad: Box::new(self.ad.clone()),
                },
                None => Msg::MachineAd {
                    ad: Box::new(self.ad.clone()),
                },
            };
            ctx.send_after(self.delay, self.mm, msg);
        }
        fn on_message(&mut self, _f: ActorId, msg: Msg, _c: &mut Context<'_, Msg>) {
            if let Msg::MatchNotify { job, machine } = msg {
                self.notified.push((job, machine));
            }
        }
    }

    #[test]
    fn two_way_match_prefers_highest_rank() {
        let mut w: World<Msg> = World::new(2);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let job = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        let schedd = w.add_actor(Box::new(AdSender::job(mm, 1, job.ad())));
        let _small = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("small", 128).ad(true),
        )));
        let big = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("big", 512).ad(true),
        )));
        let _nojava = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("nojava", 1024).ad(false),
        )));
        w.run_until(SimTime::from_secs(15));
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 1);
        // The big Java machine wins (ranked by memory); the bigger
        // machine without Java fails the job's requirements.
        assert_eq!(w.get::<AdSender>(schedd).unwrap().notified, vec![(1, big)]);
    }

    #[test]
    fn consumed_ads_are_not_rematched() {
        let mut w: World<Msg> = World::new(4);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let j1 = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        let j2 = JobSpec::java(2, "bob", vec![], JavaMode::Scoped);
        let s1 = w.add_actor(Box::new(AdSender::job(mm, 1, j1.ad())));
        let s2 = w.add_actor(Box::new(AdSender::job(mm, 2, j2.ad())));
        let m = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("only", 512).ad(true),
        )));
        w.run_until(SimTime::from_secs(60));
        // One machine, two jobs, ads never refreshed: exactly one match.
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 1);
        let total = w.get::<AdSender>(s1).unwrap().notified.len()
            + w.get::<AdSender>(s2).unwrap().notified.len();
        assert_eq!(total, 1);
        let _ = m;
    }

    #[test]
    fn stale_machine_ads_expire() {
        let mut w: World<Msg> = World::new(3);
        let mm = w.add_actor(Box::new(Matchmaker::new()));
        let _m = w.add_actor(Box::new(AdSender::machine(
            mm,
            MachineSpec::healthy("m", 512).ad(true),
        )));
        // The job ad arrives long after the machine ad has gone stale.
        let mut late = AdSender::job(
            mm,
            1,
            JobSpec::java(1, "ada", vec![], JavaMode::Scoped).ad(),
        );
        late.delay = SimDuration::from_secs(60);
        let _s = w.add_actor(Box::new(late));
        w.run_until(SimTime::from_secs(120));
        assert_eq!(w.get::<Matchmaker>(mm).unwrap().matches_made, 0);
    }
}
