//! Jobs: what users submit to the schedd.

use classads::ClassAd;
use desim::{SimDuration, SimTime};
use errorscope::resultfile::ResultFile;
use errorscope::Scope;
use std::collections::BTreeMap;

/// Identifies a job within one schedd's queue.
pub type JobId = u32;

/// Which error discipline the Java Universe applies to this job — the
/// paper's before/after systems, selectable per run for the E1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JavaMode {
    /// §2.3: trust the JVM exit code; convert every proxy failure into a
    /// program-visible exception.
    Naive,
    /// §4: the wrapper + result file + scope routing.
    Scoped,
}

/// The execution universe of a job. Only the Java Universe carries the
/// error-discipline distinction; the Vanilla Universe runs the image
/// directly with no remote I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Universe {
    /// Unmodified program, no remote I/O, no wrapper. Eviction loses all
    /// progress.
    Vanilla,
    /// Re-linked with the Condor library: transparent checkpointing (§2.1).
    /// Eviction checkpoints the job; it resumes elsewhere with its progress
    /// intact.
    Standard,
    /// The Java Universe of Figure 2.
    Java(JavaMode),
}

/// A job as submitted.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Queue id.
    pub id: JobId,
    /// Owner (user) name.
    pub owner: String,
    /// Universe.
    pub universe: Universe,
    /// The serialised program image.
    pub image: Vec<u8>,
    /// Input files the job needs transferred (paths in the submitter's
    /// home file system).
    pub inputs: Vec<String>,
    /// Nominal execution time on a healthy machine.
    pub exec_time: SimDuration,
    /// Memory the job claims to need (drives matchmaking).
    pub image_size: i64,
    /// Whether the program performs remote I/O during execution.
    pub does_remote_io: bool,
}

impl JobSpec {
    /// A reasonable default Java-universe job around an image.
    pub fn java(id: JobId, owner: &str, image: Vec<u8>, mode: JavaMode) -> JobSpec {
        JobSpec {
            id,
            owner: owner.to_string(),
            universe: Universe::Java(mode),
            image,
            inputs: Vec::new(),
            exec_time: SimDuration::from_secs(60),
            image_size: 64,
            does_remote_io: false,
        }
    }

    /// Declare input files (builder style).
    pub fn with_inputs(mut self, inputs: &[&str]) -> JobSpec {
        self.inputs = inputs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the nominal execution time (builder style).
    pub fn with_exec_time(mut self, t: SimDuration) -> JobSpec {
        self.exec_time = t;
        self
    }

    /// Mark the job as doing remote I/O (builder style).
    pub fn with_remote_io(mut self) -> JobSpec {
        self.does_remote_io = true;
        self
    }

    /// The job's ClassAd, as the schedd advertises it.
    pub fn ad(&self) -> ClassAd {
        let universe = match self.universe {
            Universe::Vanilla => "vanilla",
            Universe::Standard => "standard",
            Universe::Java(_) => "java",
        };
        let mut ad = ClassAd::new()
            .with_str("Owner", &self.owner)
            .with_int("ClusterId", i64::from(self.id))
            .with_str("Universe", universe)
            .with_int("ImageSize", self.image_size);
        let requirements = match self.universe {
            Universe::Vanilla | Universe::Standard => "TARGET.Memory >= MY.ImageSize".to_string(),
            Universe::Java(_) => {
                "TARGET.Memory >= MY.ImageSize && TARGET.HasJava =?= true".to_string()
            }
        };
        ad = ad.with_expr("Requirements", &requirements);
        ad = ad.with_expr("Rank", "TARGET.Memory");
        ad
    }
}

/// One execution attempt, for the "Summary of All Execution Attempts"
/// returned to the owner in Figure 3.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Which machine (startd actor id).
    pub machine: usize,
    /// When the claim was activated.
    pub started: SimTime,
    /// When the schedd learned the outcome.
    pub ended: SimTime,
    /// The outcome scope the schedd observed (program, job, or an
    /// environmental scope), or `None` when the attempt vanished (machine
    /// crash — the report timeout fired).
    pub scope: Option<Scope>,
    /// Human-readable note.
    pub note: String,
}

/// Where a job stands in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting to be matched.
    Idle,
    /// The matchmaker produced a partner; claiming is in flight.
    Claiming {
        /// The machine being claimed.
        machine: usize,
    },
    /// Executing under a shadow/starter pair.
    Running {
        /// The machine executing it.
        machine: usize,
    },
    /// Waiting out a retry delay before returning to the idle queue (the
    /// schedd logged an environmental error and will try another site).
    Waiting,
    /// Finished with a program result, returned to the user.
    Completed {
        /// The program's result file.
        result: ResultFile,
    },
    /// The schedd determined the job can never run (job scope).
    Unexecutable {
        /// Why.
        reason: String,
    },
    /// In the naive system only: an incidental (environment) error was
    /// returned to the user as if it were a result; a human must perform a
    /// postmortem before resubmitting.
    AwaitingPostmortem {
        /// What the user was shown.
        shown: String,
    },
    /// Too many failed attempts; parked for the administrator.
    Held {
        /// Why.
        reason: String,
    },
}

impl JobState {
    /// Has the job left the queue for good (from the schedd's view)?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. } | JobState::Unexecutable { .. } | JobState::Held { .. }
        )
    }
}

/// The schedd's full record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The submission.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Every execution attempt so far.
    pub attempts: Vec<Attempt>,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (entering a terminal state).
    pub finished: Option<SimTime>,
    /// Machines this job should avoid (chronic-failure policy).
    pub avoid: BTreeMap<usize, u32>,
    /// Checkpointed work (Standard universe): execution time already
    /// banked from evicted attempts. Vanilla/Java evictions reset to the
    /// full execution time.
    pub progress: SimDuration,
    /// Key of the checkpoint image stored on the checkpoint server by the
    /// most recent evicted attempt, if one exists. `None` when no server is
    /// configured or when the last checkpoint was discarded.
    pub ckpt_key: Option<String>,
    /// The current claim epoch: bumped every time the schedd opens a new
    /// claim for this job. Messages stamped with an older epoch (late
    /// reports, duplicated frames, resurrected partitions) are fenced.
    pub epoch: u64,
    /// Consecutive environmental failures since the last success — the
    /// exponent of the retry backoff. Evictions (owner policy) do not
    /// count.
    pub backoff_level: u32,
    /// When the schedd last heard from the running claim (activation or
    /// heartbeat); drives the lease check.
    pub last_heartbeat: SimTime,
}

impl JobRecord {
    /// A fresh record for a submission at `now`.
    pub fn new(spec: JobSpec, now: SimTime) -> JobRecord {
        JobRecord {
            spec,
            state: JobState::Idle,
            attempts: Vec::new(),
            submitted: now,
            finished: None,
            avoid: BTreeMap::new(),
            progress: SimDuration::ZERO,
            ckpt_key: None,
            epoch: 0,
            backoff_level: 0,
            last_heartbeat: SimTime::ZERO,
        }
    }

    /// Total time the job spent in the queue, if finished.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.finished.map(|f| f - self.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classads::prelude::*;

    #[test]
    fn java_job_ad_requires_java() {
        let spec = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        let jad = spec.ad();
        let machine_no_java = ClassAd::new()
            .with_int("Memory", 512)
            .with_expr("Requirements", "true");
        let machine_java = ClassAd::new()
            .with_int("Memory", 512)
            .with_bool("HasJava", true)
            .with_expr("Requirements", "true");
        assert!(!requirements_met(&jad, &machine_no_java));
        assert!(requirements_met(&jad, &machine_java));
    }

    #[test]
    fn vanilla_job_ad_ignores_java() {
        let mut spec = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        spec.universe = Universe::Vanilla;
        let jad = spec.ad();
        let machine = ClassAd::new()
            .with_int("Memory", 512)
            .with_expr("Requirements", "true");
        assert!(requirements_met(&jad, &machine));
    }

    #[test]
    fn memory_requirement_enforced() {
        let mut spec = JobSpec::java(1, "ada", vec![], JavaMode::Scoped);
        spec.image_size = 256;
        let jad = spec.ad();
        let small = ClassAd::new()
            .with_int("Memory", 128)
            .with_bool("HasJava", true)
            .with_expr("Requirements", "true");
        assert!(!requirements_met(&jad, &small));
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Idle.is_terminal());
        assert!(!JobState::Running { machine: 0 }.is_terminal());
        assert!(!JobState::AwaitingPostmortem { shown: "x".into() }.is_terminal());
        assert!(JobState::Completed {
            result: ResultFile::completed(0)
        }
        .is_terminal());
        assert!(JobState::Unexecutable {
            reason: "corrupt".into()
        }
        .is_terminal());
        assert!(JobState::Held { reason: "".into() }.is_terminal());
    }

    #[test]
    fn turnaround_needs_finish() {
        let spec = JobSpec::java(1, "a", vec![], JavaMode::Scoped);
        let mut rec = JobRecord::new(spec, SimTime::from_secs(10));
        assert_eq!(rec.turnaround(), None);
        rec.finished = Some(SimTime::from_secs(70));
        assert_eq!(rec.turnaround(), Some(SimDuration::from_secs(60)));
    }

    #[test]
    fn builders() {
        let spec = JobSpec::java(1, "a", vec![], JavaMode::Naive)
            .with_inputs(&["in.txt"])
            .with_exec_time(SimDuration::from_secs(5))
            .with_remote_io();
        assert_eq!(spec.inputs, vec!["in.txt"]);
        assert_eq!(spec.exec_time, SimDuration::from_secs(5));
        assert!(spec.does_remote_io);
    }
}
