//! The startd and its starter.
//!
//! "Each execution site is managed by a startd that enforces the machine
//! owner's policy … The startd creates a starter, which is responsible for
//! the execution environment, such as creating a scratch directory, loading
//! the executable, and moving input and output files" (§2.1). Here the
//! starter is the startd's execution arm: it builds the scratch sandbox,
//! hosts the Chirp proxy, invokes the VM (bare in the naive mode, wrapped
//! in the scoped mode), and reports to the shadow.
//!
//! Two §5 mechanisms live here:
//! * the **startup self-test** ("rather than blindly accept each owner's
//!   assertion regarding the Java installation, we modified the startd to
//!   test the installation at startup"), and
//! * optional **learning from failures**: a remote-resource-scope failure
//!   is the starter's to handle (Figure 3), and the startd reacts by
//!   ceasing to advertise the capability.

use crate::faults::FaultPlan;
use crate::job::Universe;
use crate::machine::MachineSpec;
use crate::metrics::MachineStats;
use crate::msg::{Activation, CkptAttempt, ExecutionReport, Msg, StoredCkpt};
use chirp::backend::MemFs;
use chirp::client::{ChirpClient, ClientDiscipline};
use chirp::cookie::Cookie;
use chirp::server::{ChirpServer, ErrorDiscipline};
use chirp::transport::DirectTransport;
use chirp::wire;
use chirp::{Request, Response};
use classads::matchmaking::requirements_met;
use desim::prelude::*;
use errorscope::error::codes;
use errorscope::resultfile::ResultFile;
use errorscope::Scope;
use gridvm::config::SelfTestDepth;
use gridvm::jvmio::{ChirpJobIo, NoIo};
use gridvm::wrapper::{run_naive, run_wrapped};
use gridvm::{self_test, Termination};
use std::sync::Arc;

/// How often the startd advertises while free.
pub const ADVERTISE_PERIOD: SimDuration = SimDuration::from_secs(5);
/// How long a failed startup (misconfiguration, corrupt image) occupies the
/// machine before the error surfaces — fast, but not free. This is what
/// makes §5's black holes attractive: they "fail fast" and come right back
/// for more jobs.
pub const FAIL_FAST_TIME: SimDuration = SimDuration::from_secs(2);
/// How long an accepted claim may sit unactivated before the startd frees
/// itself. Without this, a partition between acceptance and activation
/// wedges the machine forever — the claim itself needs a scope in time.
pub const CLAIM_ACTIVATION_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// The startd's configuration knobs.
#[derive(Debug, Clone, Copy)]
pub struct StartdPolicy {
    /// Depth of the startup installation test (§5).
    pub self_test: SelfTestDepth,
    /// Whether a remote-resource-scope failure revokes the advertised
    /// capability (the "complementary approach" applied at the execution
    /// side).
    pub learn_from_failures: bool,
    /// Periodic-checkpoint interval for Standard-universe jobs when a
    /// checkpoint server is configured: banked progress is floored to the
    /// last period boundary (the work since the last periodic checkpoint
    /// is lost at eviction). `None` checkpoints exactly at the eviction
    /// instant.
    pub ckpt_period: Option<SimDuration>,
}

impl Default for StartdPolicy {
    fn default() -> Self {
        StartdPolicy {
            self_test: SelfTestDepth::None,
            learn_from_failures: false,
            ckpt_period: None,
        }
    }
}

/// A checkpoint image built at eviction time, awaiting shipment to the
/// checkpoint server when the starter winds down.
struct PendingPut {
    key: String,
    image: Vec<u8>,
    banked: SimDuration,
}

enum State {
    Free,
    Claimed {
        schedd: ActorId,
        job: u32,
        epoch: u64,
    },
    /// Fetching a stored checkpoint from the checkpoint server before
    /// starting a resumed activation.
    AwaitCkpt {
        schedd: ActorId,
        act: Box<Activation>,
        since: SimTime,
    },
    Running {
        schedd: ActorId,
        job: u32,
        epoch: u64,
        lease: Option<crate::msg::LeaseInfo>,
        /// When the schedd last acknowledged a heartbeat (or the claim was
        /// activated) — the execute-side half of the lease.
        last_ack: SimTime,
        started: SimTime,
        report: Box<ExecutionReport>,
        cpu: SimDuration,
        ckpt: CkptAttempt,
        pending_put: Option<PendingPut>,
    },
}

/// The startd actor.
pub struct Startd {
    spec: MachineSpec,
    policy: StartdPolicy,
    matchmaker: ActorId,
    plan: Arc<FaultPlan>,
    state: State,
    advertising_java: bool,
    /// The pool this machine belongs to. Claims stamped with a different
    /// pool are rejected; activations are revoked. Defaults to 0.
    pool_id: u64,
    /// The checkpoint server to migrate Standard-universe jobs through,
    /// if the pool runs one.
    ckpt_server: Option<(ActorId, Cookie)>,
    /// This actor's id, learned from the context (used as the fault-plan
    /// key).
    stats_id: usize,
    /// Accumulated statistics.
    pub stats: MachineStats,
}

impl Startd {
    /// A startd for `spec`, reporting to `matchmaker`, under `plan`.
    pub fn new(
        spec: MachineSpec,
        policy: StartdPolicy,
        matchmaker: ActorId,
        plan: Arc<FaultPlan>,
    ) -> Startd {
        let stats = MachineStats {
            name: spec.name.clone(),
            ..MachineStats::default()
        };
        Startd {
            spec,
            policy,
            matchmaker,
            plan,
            state: State::Free,
            advertising_java: false,
            pool_id: 0,
            ckpt_server: None,
            stats_id: usize::MAX,
            stats,
        }
    }

    /// Point this startd at the pool's checkpoint server (builder style).
    pub fn with_ckpt_server(mut self, server: ActorId, cookie: Cookie) -> Startd {
        self.ckpt_server = Some((server, cookie));
        self
    }

    /// Place this machine in pool `pool_id` (builder style).
    pub fn with_pool(mut self, pool_id: u64) -> Startd {
        self.pool_id = pool_id;
        self
    }

    /// Is the machine currently advertising Java capability?
    pub fn advertising_java(&self) -> bool {
        self.advertising_java
    }

    fn crashed(&self, now: SimTime) -> bool {
        self.plan.crashed_at(self.stats_id, now)
    }
}

impl Actor<Msg> for Startd {
    fn name(&self) -> String {
        format!("startd:{}", self.spec.name)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.stats_id = ctx.self_id;
        // §5: test the installation before advertising the capability.
        self.advertising_java =
            self.spec.asserts_java && self_test(&self.spec.installation, self.policy.self_test);
        self.stats.advertising_java = self.advertising_java;
        ctx.trace_with(|| {
            format!(
                "self-test depth {:?}: advertising_java={}",
                self.policy.self_test, self.advertising_java
            )
        });
        ctx.send_self_after(ADVERTISE_PERIOD, Msg::AdvertiseTick);
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        self.stats_id = ctx.self_id;
        match msg {
            Msg::AdvertiseTick => {
                if self.crashed(ctx.now) {
                    // Crash wipes any in-flight work; the shadow's timeout
                    // is what notices.
                    self.state = State::Free;
                } else if matches!(&self.state, State::AwaitCkpt { since, .. }
                    if ctx.now.since(*since) >= ADVERTISE_PERIOD)
                {
                    // The checkpoint fetch never answered (lost on the
                    // network, or the server is gone). An unreachable
                    // checkpoint is the same explicit error as a corrupt
                    // one: discard and cold-restart.
                    let State::AwaitCkpt { schedd, act, .. } =
                        std::mem::replace(&mut self.state, State::Free)
                    else {
                        unreachable!()
                    };
                    self.discard_and_restart(
                        schedd,
                        act,
                        "checkpoint server unreachable".to_string(),
                        ctx,
                    );
                } else if self.plan.owner_busy_at(ctx.self_id, ctx.now) {
                    // The owner is using the machine: withdraw from the
                    // pool (an already-running job was evicted at the
                    // window onset by the ExecutionComplete path).
                } else if matches!(self.state, State::Free) {
                    let mut ad = self.spec.ad(self.advertising_java);
                    ad.insert("MachineId", classads::Value::Int(ctx.self_id as i64));
                    ctx.send_net(self.matchmaker, Msg::MachineAd { ad: Box::new(ad) });
                }
                ctx.send_self_after(ADVERTISE_PERIOD, Msg::AdvertiseTick);
            }
            Msg::ClaimRequest {
                job,
                ad,
                epoch,
                pool,
            } => {
                if self.crashed(ctx.now) {
                    return; // silence; the schedd's claim timeout fires
                }
                if pool != self.pool_id {
                    // A claim fenced to the wrong pool (a stale flock
                    // target, or a schedd with an outdated map): explicit
                    // rejection, never a cross-pool activation.
                    self.stats.claims_rejected += 1;
                    self.emit_claim(
                        ctx,
                        job,
                        obs::ClaimOutcome::Rejected {
                            reason: "pool mismatch".into(),
                        },
                    );
                    ctx.send_net(
                        from,
                        Msg::ClaimReject {
                            job,
                            reason: "pool mismatch".into(),
                            epoch,
                        },
                    );
                    return;
                }
                if !matches!(self.state, State::Free) {
                    self.stats.claims_rejected += 1;
                    self.emit_claim(
                        ctx,
                        job,
                        obs::ClaimOutcome::Rejected {
                            reason: "busy".into(),
                        },
                    );
                    ctx.send_net(
                        from,
                        Msg::ClaimReject {
                            job,
                            reason: "busy".into(),
                            epoch,
                        },
                    );
                    return;
                }
                // "Matched processes are individually responsible for …
                // verifying that their needs are met."
                let my_ad = self.spec.ad(self.advertising_java);
                if !requirements_met(&my_ad, &ad) || !requirements_met(&ad, &my_ad) {
                    self.stats.claims_rejected += 1;
                    self.emit_claim(
                        ctx,
                        job,
                        obs::ClaimOutcome::Rejected {
                            reason: "requirements no longer met".into(),
                        },
                    );
                    ctx.send_net(
                        from,
                        Msg::ClaimReject {
                            job,
                            reason: "requirements no longer met".into(),
                            epoch,
                        },
                    );
                    return;
                }
                self.stats.claims_accepted += 1;
                self.emit_claim(ctx, job, obs::ClaimOutcome::Accepted);
                self.state = State::Claimed {
                    schedd: from,
                    job,
                    epoch,
                };
                ctx.trace_with(|| format!("claim accepted for job {job}"));
                ctx.send_net(from, Msg::ClaimAccept { job, epoch });
                // If the activation never arrives (lost, or the schedd gave
                // up), free the machine instead of wedging on a dead claim.
                ctx.send_self_after(CLAIM_ACTIVATION_TIMEOUT, Msg::ClaimExpire { job, epoch });
            }
            Msg::ClaimExpire { job, epoch } => {
                if let State::Claimed {
                    job: claimed,
                    epoch: current,
                    ..
                } = self.state
                {
                    if claimed == job && current == epoch {
                        ctx.trace_with(|| format!("claim for job {job} never activated; freeing"));
                        self.state = State::Free;
                    }
                }
            }
            Msg::ActivateClaim(act) => {
                let State::Claimed { schedd, job, epoch } = self.state else {
                    return; // stale activation
                };
                if schedd != from || act.job != job || self.crashed(ctx.now) {
                    return;
                }
                if act.epoch != epoch {
                    // An activation from a claim this startd no longer
                    // holds (a late frame from a healed partition).
                    self.stats.stale_epochs_dropped += 1;
                    ctx.emit(obs::Event::StaleEpochDropped {
                        job: u64::from(job),
                        kind: "activation".to_string(),
                        got: act.epoch,
                        current: epoch,
                    });
                    return;
                }
                if act.pool != self.pool_id || self.plan.flock_revoked_at(ctx.self_id, ctx.now) {
                    // The remote administrator reclaims the machine at the
                    // worst moment (or the activation is fenced to the
                    // wrong pool): revoke explicitly — the visiting schedd
                    // hears a claim-scope error, never silence.
                    ctx.trace_with(|| format!("revoking flocked claim for job {job}"));
                    self.state = State::Free;
                    ctx.send_net(from, Msg::ClaimRevoked { job, epoch });
                    return;
                }
                if let (Universe::Standard, Some(resume), Some((server, cookie))) =
                    (&act.universe, &act.resume, &self.ckpt_server)
                {
                    // A previous attempt left a checkpoint: fetch it
                    // before deciding how the run starts.
                    let server = *server;
                    let mut frames = wire::frame(&wire::encode_request(&Request::Auth {
                        cookie: cookie.as_bytes().to_vec(),
                    }));
                    frames.extend_from_slice(&wire::frame(&wire::encode_request(
                        &Request::GetCkpt {
                            key: resume.key.clone(),
                        },
                    )));
                    ctx.trace_with(|| format!("fetching checkpoint for job {job}"));
                    self.state = State::AwaitCkpt {
                        schedd,
                        act,
                        since: ctx.now,
                    };
                    ctx.send_net(server, Msg::CkptRequest { frames });
                    return;
                }
                self.activate(schedd, act, None, CkptAttempt::None, SimDuration::ZERO, ctx);
            }
            Msg::CkptResponse { frames } => {
                if !matches!(self.state, State::AwaitCkpt { .. }) {
                    return; // stale response (e.g. the ack of a PUT)
                }
                if self.crashed(ctx.now) {
                    self.state = State::Free;
                    return;
                }
                let State::AwaitCkpt { schedd, act, .. } =
                    std::mem::replace(&mut self.state, State::Free)
                else {
                    unreachable!()
                };
                let banked = act
                    .resume
                    .as_ref()
                    .map(|r| r.banked)
                    .unwrap_or(SimDuration::ZERO);
                match self.validate_ckpt(&frames, &act) {
                    Ok(mut machine) => {
                        // SDC injection window: the image digest has just
                        // been validated, the machine is about to run. A
                        // bit flipped into the live heap *here* is exactly
                        // the damage no checksum can see — the scrubber
                        // logs it, and the run completes with a silently
                        // wrong answer (an escape, not a crash).
                        if let Some(seed) = self.plan.heap_flip_for(act.job) {
                            if let Some(bit) = machine.flip_heap_bit(seed) {
                                ctx.emit(obs::Event::MemFlip {
                                    job: u64::from(act.job),
                                    machine: ctx.self_id as u64,
                                    target: "heap-word".to_string(),
                                    bit,
                                });
                            }
                        }
                        ctx.emit(obs::Event::CheckpointRestored {
                            job: u64::from(act.job),
                            machine: ctx.self_id as u64,
                            saved_us: banked.as_micros(),
                        });
                        ctx.trace_with(|| {
                            format!("job {} resumed from checkpoint ({banked} banked)", act.job)
                        });
                        self.activate(
                            schedd,
                            act,
                            Some(machine),
                            CkptAttempt::Resumed { saved: banked },
                            banked,
                            ctx,
                        );
                    }
                    Err(reason) => self.discard_and_restart(schedd, act, reason, ctx),
                }
            }
            Msg::ExecutionComplete { job } => {
                let State::Running {
                    job: running,
                    started,
                    ..
                } = self.state
                else {
                    return;
                };
                if running != job {
                    return;
                }
                if self.plan.crashes_during(ctx.self_id, started, ctx.now) {
                    // The machine died mid-run: no report, ever. The claim
                    // evaporates; the shadow's timeout is the escaping
                    // error's only witness.
                    ctx.trace_with(|| format!("crashed during job {job}; report lost"));
                    self.state = State::Free;
                    return;
                }
                let State::Running {
                    schedd,
                    epoch,
                    report,
                    cpu,
                    started,
                    ckpt,
                    pending_put,
                    ..
                } = std::mem::replace(&mut self.state, State::Free)
                else {
                    unreachable!()
                };
                if let Some(put) = pending_put {
                    if let Some((server, cookie)) = self.ckpt_server.clone() {
                        ctx.emit(obs::Event::CheckpointTaken {
                            job: u64::from(job),
                            machine: ctx.self_id as u64,
                            bytes: put.image.len() as u64,
                            banked_us: put.banked.as_micros(),
                        });
                        let mut frames = wire::frame(&wire::encode_request(&Request::Auth {
                            cookie: cookie.as_bytes().to_vec(),
                        }));
                        frames.extend_from_slice(&wire::frame(&wire::encode_request(
                            &Request::PutCkpt {
                                key: put.key,
                                data: put.image,
                            },
                        )));
                        ctx.send_net(server, Msg::CkptRequest { frames });
                    }
                }
                ctx.trace_with(|| format!("report for job {job}"));
                ctx.send_net(
                    schedd,
                    Msg::StarterReport {
                        job,
                        report: *report,
                        cpu,
                        started,
                        ckpt,
                        epoch,
                    },
                );
            }
            Msg::HeartbeatTick { job, epoch } => {
                let State::Running {
                    schedd,
                    job: running,
                    epoch: current,
                    lease: Some(lease),
                    last_ack,
                    ..
                } = self.state
                else {
                    return; // claim gone (or unleased); the loop dies with it
                };
                if running != job || current != epoch || self.crashed(ctx.now) {
                    return;
                }
                if ctx.now.since(last_ack) >= lease.timeout {
                    // The schedd has gone silent past the lease: this side
                    // abandons the claim too, so both sides agree the claim
                    // is dead — no half-orphaned execution.
                    self.stats.leases_expired += 1;
                    ctx.emit(obs::Event::LeaseExpired {
                        job: u64::from(job),
                        machine: ctx.self_id as u64,
                        side: "startd".to_string(),
                    });
                    ctx.trace_with(|| format!("lease expired for job {job}; abandoning claim"));
                    self.state = State::Free;
                    return;
                }
                ctx.send_net(schedd, Msg::Heartbeat { job, epoch });
                ctx.send_self_after(lease.interval, Msg::HeartbeatTick { job, epoch });
            }
            Msg::HeartbeatAck { job, epoch } => {
                if let State::Running {
                    job: running,
                    epoch: current,
                    last_ack,
                    ..
                } = &mut self.state
                {
                    if *running != job {
                        return;
                    }
                    if *current != epoch {
                        let current = *current;
                        self.stats.stale_epochs_dropped += 1;
                        ctx.emit(obs::Event::StaleEpochDropped {
                            job: u64::from(job),
                            kind: "heartbeat-ack".to_string(),
                            got: epoch,
                            current,
                        });
                        return;
                    }
                    *last_ack = ctx.now;
                }
            }
            Msg::ReleaseClaim { job } => {
                if let State::Claimed { job: claimed, .. } = self.state {
                    if claimed == job {
                        self.state = State::Free;
                    }
                }
            }
            _ => {}
        }
    }
}

impl Startd {
    /// Start (or resume) an activated claim: run the starter, precompute
    /// an owner eviction — building the checkpoint image to ship if a
    /// checkpoint server is configured — and settle into `Running`.
    ///
    /// `banked_prev` is the execution time a successful resume recovered
    /// (zero for cold starts); `act.exec_time` is the time still owed.
    fn activate(
        &mut self,
        schedd: ActorId,
        act: Box<Activation>,
        resumed: Option<gridvm::Machine>,
        ckpt: CkptAttempt,
        banked_prev: SimDuration,
        ctx: &mut Context<'_, Msg>,
    ) {
        let job = act.job;
        let (mut report, mut cpu) = match resumed {
            Some(mut m) => {
                // Run the restored interpreter to completion for the true
                // result — the resumed program picks up mid-execution and
                // never observes that it migrated.
                self.stats.executions += 1;
                let image = gridvm::ProgramImage::from_bytes(&act.image)
                    .expect("image validated during checkpoint restore");
                let out = m
                    .run(&image, &self.spec.installation, &mut NoIo, None)
                    .expect("unbudgeted run always terminates");
                self.stats.absorb_vm(&out.vm);
                self.finish(out.termination, out.stdout, out.instructions, &act)
            }
            None => self.execute(&act, ctx),
        };
        // Owner reclamation: if the owner returns before the run finishes,
        // the job is evicted at that instant. Standard-universe jobs are
        // checkpointed first (§2.1); everyone else loses the partial work.
        let mut pending_put = None;
        let t_done = ctx.now + cpu;
        if let Some(evict_at) = self.plan.owner_returns_during(ctx.self_id, ctx.now, t_done) {
            let elapsed = evict_at - ctx.now;
            let mut checkpointed = matches!(act.universe, Universe::Standard);
            let mut stored = None;
            if checkpointed && self.ckpt_server.is_some() {
                // Server mode: "checkpointed" means an image actually gets
                // shipped, and the banked progress is floored to the
                // periodic-checkpoint boundary — the work since the last
                // periodic checkpoint is lost.
                let full = act.exec_time + banked_prev;
                let cumulative = banked_prev + elapsed;
                let banked_cum = match self.policy.ckpt_period {
                    Some(p) if p.as_micros() > 0 => SimDuration::from_micros(
                        cumulative.as_micros() / p.as_micros() * p.as_micros(),
                    ),
                    _ => cumulative,
                };
                let banked_new = SimDuration::from_micros(
                    banked_cum
                        .as_micros()
                        .saturating_sub(banked_prev.as_micros()),
                );
                if banked_cum > SimDuration::ZERO {
                    if let Some(image) = self.build_ckpt(&act, full, banked_cum) {
                        let key = ckpt::key(u64::from(job), act.attempt as u32);
                        stored = Some(StoredCkpt {
                            key: key.clone(),
                            bytes: image.len() as u64,
                            banked: banked_new,
                        });
                        pending_put = Some(PendingPut {
                            key,
                            image,
                            banked: banked_cum,
                        });
                    }
                }
                checkpointed = stored.is_some();
            }
            ctx.trace_with(|| {
                format!(
                    "owner returning at {evict_at}; job {job} will be evicted{}",
                    if checkpointed { " (checkpointing)" } else { "" }
                )
            });
            report = ExecutionReport::Evicted {
                completed: elapsed,
                checkpointed,
                stored,
            };
            cpu = elapsed;
        }
        ctx.trace_with(|| format!("starter running job {job}"));
        self.state = State::Running {
            schedd,
            job,
            epoch: act.epoch,
            lease: act.lease,
            last_ack: ctx.now,
            started: ctx.now,
            report: Box::new(report),
            cpu,
            ckpt,
            pending_put,
        };
        // The execute-side half of the lease: heartbeat until the claim
        // closes (the tick dies with the Running state) or the schedd's
        // acks stop coming.
        if let Some(lease) = act.lease {
            let epoch = act.epoch;
            ctx.send_self_after(lease.interval, Msg::HeartbeatTick { job, epoch });
        }
        ctx.send_self_after(cpu, Msg::ExecutionComplete { job });
    }

    /// The resume failed: the checkpoint is explicitly discarded and the
    /// activation falls back to a cold restart, owing the full execution
    /// time again. This is checkpoint scope in action (P1/P2): the bad
    /// image is caught at the checkpoint layer and never reaches the
    /// program.
    fn discard_and_restart(
        &mut self,
        schedd: ActorId,
        mut act: Box<Activation>,
        reason: String,
        ctx: &mut Context<'_, Msg>,
    ) {
        let banked = act
            .resume
            .as_ref()
            .map(|r| r.banked)
            .unwrap_or(SimDuration::ZERO);
        ctx.emit(obs::Event::CheckpointDiscarded {
            job: u64::from(act.job),
            machine: ctx.self_id as u64,
            reason: reason.clone(),
        });
        ctx.trace_with(|| {
            format!(
                "checkpoint for job {} discarded ({reason}); cold restart",
                act.job
            )
        });
        // The banked work is gone: the cold restart redoes it.
        act.exec_time += banked;
        act.resume = None;
        self.activate(
            schedd,
            act,
            None,
            CkptAttempt::Discarded { reason },
            SimDuration::ZERO,
            ctx,
        );
    }

    /// Decode the checkpoint server's response frames and rebuild the
    /// suspended machine. Every failure mode — transport, protocol, image
    /// integrity, state validation — comes back as a reason string; none
    /// of them can reach the resumed program.
    fn validate_ckpt(&self, frames: &[u8], act: &Activation) -> Result<gridvm::Machine, String> {
        let mut rest = frames;
        let mut last = None;
        loop {
            match wire::deframe(rest) {
                Ok(Some((payload, consumed))) => {
                    rest = &rest[consumed..];
                    match wire::decode_response(&payload) {
                        Ok(r) => last = Some(r),
                        Err(e) => return Err(format!("undecodable server response: {e}")),
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(format!("bad response frame: {e}")),
            }
        }
        // The last response answers the GET (the first is the auth ack).
        let data = match last {
            Some(Response::Data { data }) => data,
            Some(Response::Error(e)) => return Err(format!("server error: {e}")),
            Some(other) => return Err(format!("unexpected server response: {other:?}")),
            None => return Err("empty response from checkpoint server".to_string()),
        };
        let state = ckpt::MachineState::from_bytes(&data).map_err(|e| e.to_string())?;
        let image = gridvm::ProgramImage::from_bytes(&act.image)
            .map_err(|e| format!("program image: {e:?}"))?;
        gridvm::Machine::restore(state, &image, ckpt::fnv1a(&act.image)).map_err(|e| e.to_string())
    }

    /// Build the checkpoint image for an eviction: run a fresh machine for
    /// the banked fraction of the program's total instructions and
    /// serialize the suspended state. `None` means nothing worth storing
    /// (no progress, an undecodable image, or a program that finished
    /// within the budget).
    fn build_ckpt(
        &self,
        act: &Activation,
        full: SimDuration,
        banked: SimDuration,
    ) -> Option<Vec<u8>> {
        if banked.as_micros() == 0 || full.as_micros() == 0 {
            return None;
        }
        let image = gridvm::ProgramImage::from_bytes(&act.image).ok()?;
        let (_exit, out) = run_naive(&act.image, &self.spec.installation, &mut NoIo);
        if out.instructions == 0 {
            return None;
        }
        let budget = (u128::from(out.instructions) * u128::from(banked.as_micros())
            / u128::from(full.as_micros())) as u64;
        let mut m = gridvm::Machine::new(&image);
        if m.run(&image, &self.spec.installation, &mut NoIo, Some(budget))
            .is_some()
        {
            return None; // finished inside the budget: nothing to resume
        }
        Some(m.snapshot(ckpt::fnv1a(&act.image)).to_bytes())
    }

    fn emit_claim(&self, ctx: &mut Context<'_, Msg>, job: u32, outcome: obs::ClaimOutcome) {
        ctx.emit(obs::Event::Claim {
            job: u64::from(job),
            machine: ctx.self_id as u64,
            outcome,
        });
    }

    /// Finish an environment-failure journey's execute-side leg: advance it
    /// through the layers this daemon hosts and emit every hop accumulated
    /// in-process so far (birth, wrapper re-expression, and the new hops).
    fn advance_and_emit(
        &self,
        journey: errorscope::ScopedError,
        ctx: &mut Context<'_, Msg>,
    ) -> errorscope::ScopedError {
        let stack = errorscope::propagate::java_universe_stack();
        let (journey, _done) = crate::telemetry::advance_journey(
            &stack,
            journey,
            crate::telemetry::EXECUTE_SIDE_LAYERS,
        );
        crate::telemetry::emit_journey_hops(ctx, &journey, 0);
        journey
    }

    /// The starter: set up the sandbox and proxy, run the VM, classify.
    /// Returns the report and the CPU time the attempt will consume.
    fn execute(
        &mut self,
        act: &Activation,
        ctx: &mut Context<'_, Msg>,
    ) -> (ExecutionReport, SimDuration) {
        self.stats.executions += 1;
        let t0 = ctx.now;
        let t_end = t0 + act.exec_time;

        // Missing inputs are a job-scope error: the job as submitted can
        // never run anywhere.
        if !act.snapshot.missing.is_empty() {
            let note = format!("missing input files: {:?}", act.snapshot.missing);
            if let Universe::Java(crate::job::JavaMode::Scoped) = act.universe {
                self.react_to_scope(Scope::Job);
                // The journey is born here, in the starter; the schedd's
                // side appends the rest of its hops.
                let journey = errorscope::ScopedError::escaping(
                    codes::MISSING_INPUT,
                    Scope::Job,
                    "starter",
                    note.clone(),
                );
                crate::telemetry::emit_journey_hops(ctx, &journey, 0);
                return (
                    ExecutionReport::Scoped {
                        result: ResultFile::environment_failure(
                            Scope::Job,
                            codes::MISSING_INPUT,
                            note,
                        ),
                        journey: Some(journey),
                    },
                    FAIL_FAST_TIME,
                );
            }
            return self.finish(
                Termination::EnvFailure {
                    scope: Scope::Job,
                    code: codes::MISSING_INPUT,
                    message: note,
                },
                String::new(),
                0,
                act,
            );
        }

        match act.universe {
            Universe::Vanilla | Universe::Standard => {
                // No wrapper, no remote I/O: bare exit code semantics.
                // (Standard additionally checkpoints on eviction, handled
                // by the caller.)
                let (_exit, out) = run_naive(&act.image, &self.spec.installation, &mut NoIo);
                self.stats.absorb_vm(&out.vm);
                self.finish(out.termination, out.stdout, out.instructions, act)
            }
            Universe::Java(mode) => {
                // The starter's scratch sandbox, pre-loaded with the
                // transferred inputs, behind the Chirp proxy.
                let mut fs = MemFs::default();
                for (path, data) in &act.snapshot.files {
                    fs.put(path, data);
                }
                // The remote channel to the shadow: if the submitter's file
                // system fails during the execution window, remote I/O
                // escapes.
                if act.does_remote_io {
                    if let Some(fault) = self.plan.fs_fault_during(act.schedd, t0, t_end) {
                        fs.set_env_fault(Some(fault));
                    }
                }
                let (server_disc, client_disc) = match mode {
                    crate::job::JavaMode::Naive => (
                        ErrorDiscipline::NaiveGeneric,
                        ClientDiscipline::NaiveGeneric,
                    ),
                    crate::job::JavaMode::Scoped => {
                        (ErrorDiscipline::Scoped, ClientDiscipline::Scoped)
                    }
                };
                let cookie = Cookie::generate(u64::from(act.job) ^ 0xC0FFEE);
                let server = ChirpServer::new(fs, cookie.clone()).with_discipline(server_disc);
                let mut client =
                    ChirpClient::new(DirectTransport::new(server)).with_discipline(client_disc);
                let _ = client.auth(cookie.as_bytes());
                let mut io = ChirpJobIo::new(client);

                let out = match mode {
                    crate::job::JavaMode::Naive => {
                        let (_exit, out) = run_naive(&act.image, &self.spec.installation, &mut io);
                        self.stats.absorb_vm(&out.vm);
                        self.finish(out.termination, out.stdout, out.instructions, act)
                    }
                    crate::job::JavaMode::Scoped => {
                        let w = run_wrapped(&act.image, &self.spec.installation, &mut io);
                        self.stats.absorb_vm(&w.vm);
                        // The starter examines the result file and ignores
                        // the JVM result entirely (§4).
                        let result = ResultFile::from_json(&w.result_file_bytes)
                            .expect("wrapper wrote the file it just serialised");
                        let scope = result.scope();
                        self.react_to_scope(scope);
                        let cpu = if w.instructions == 0 && scope != Scope::Program {
                            FAIL_FAST_TIME
                        } else {
                            act.exec_time
                        };
                        let journey = w.journey.map(|j| {
                            // The error crossed the I/O interface as an
                            // escaping error: record the escape itself.
                            if j.origin() == Some("io-library") {
                                ctx.emit(obs::Event::Escape {
                                    span: j.span,
                                    layer: "io-library".to_string(),
                                    code: j.code.as_str().to_string(),
                                    scope: j.scope.name().to_string(),
                                });
                            }
                            self.advance_and_emit(j, ctx)
                        });
                        (ExecutionReport::Scoped { result, journey }, cpu)
                    }
                };
                // Surface the proxy's per-operation telemetry.
                for ev in io.client_mut().take_events() {
                    ctx.emit(ev);
                }
                out
            }
        }
    }

    /// Package a bare termination (naive universes) into a report.
    fn finish(
        &mut self,
        termination: Termination,
        stdout: String,
        instructions: u64,
        act: &Activation,
    ) -> (ExecutionReport, SimDuration) {
        let scope = termination.scope();
        self.react_to_scope(scope);
        let cpu = if instructions == 0 && scope != Scope::Program {
            FAIL_FAST_TIME
        } else {
            act.exec_time
        };
        let (code, note) = match &termination {
            Termination::Completed { exit_code } => (*exit_code, "completed".to_string()),
            Termination::Exception { name, message } => (1, format!("{name}: {message}")),
            Termination::EnvFailure { code, message, .. } => (1, format!("{code}: {message}")),
        };
        (
            ExecutionReport::NaiveExit {
                code,
                stdout,
                truth_scope: scope,
                truth_note: note,
            },
            cpu,
        )
    }

    /// The starter is the handler for remote-resource scope (Figure 3): if
    /// configured to learn, it stops advertising the broken capability.
    fn react_to_scope(&mut self, scope: Scope) {
        if scope == Scope::RemoteResource {
            self.stats.remote_resource_failures += 1;
            if self.policy.learn_from_failures && self.advertising_java {
                self.advertising_java = false;
                self.stats.advertising_java = false;
            }
        }
    }
}
