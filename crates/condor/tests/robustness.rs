//! Robustness tests: stale, duplicate, and malicious protocol messages
//! must never corrupt daemon state. Soft-state protocols survive nonsense.

use condor::prelude::*;
use condor::{Msg, PoolBuilder, Schedd, Startd};
use desim::{SimDuration, SimTime};
use gridvm::programs;

fn one_job_pool(seed: u64) -> (desim::World<Msg>, usize, Vec<usize>) {
    PoolBuilder::new(seed)
        .machine(MachineSpec::healthy("m1", 256))
        .machine(MachineSpec::healthy("m2", 256))
        .job(
            JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                .with_exec_time(SimDuration::from_secs(60)),
        )
        .build()
}

#[test]
fn duplicate_match_notifications_are_idempotent() {
    let (mut world, schedd_id, machines) = one_job_pool(51);
    // Flood the schedd with duplicate / bogus match notifications.
    for _ in 0..10 {
        world.inject(
            schedd_id,
            Msg::MatchNotify {
                job: 1,
                machine: machines[0],
                pool: 0,
            },
        );
        world.inject(
            schedd_id,
            Msg::MatchNotify {
                job: 99, // nonexistent job
                machine: machines[1],
                pool: 0,
            },
        );
    }
    world.run_until(SimTime::from_secs(600));
    let s = world.get::<Schedd>(schedd_id).unwrap();
    assert!(s.all_done());
    assert_eq!(s.metrics.jobs_completed, 1);
    assert_eq!(s.jobs[&1].attempts.len(), 1, "one execution despite spam");
}

#[test]
fn stale_claim_messages_are_ignored() {
    let (mut world, schedd_id, machines) = one_job_pool(52);
    // Bogus accepts/rejects for jobs that were never claimed.
    world.inject(schedd_id, Msg::ClaimAccept { job: 1, epoch: 0 });
    world.inject(schedd_id, Msg::ClaimAccept { job: 77, epoch: 0 });
    world.inject(
        schedd_id,
        Msg::ClaimReject {
            job: 1,
            reason: "spoofed".into(),
            epoch: 0,
        },
    );
    // Bogus reports before anything ran.
    world.inject(
        schedd_id,
        Msg::StarterReport {
            job: 1,
            report: condor::ExecutionReport::NaiveExit {
                code: 0,
                stdout: String::new(),
                truth_scope: errorscope::Scope::Program,
                truth_note: "forged".into(),
            },
            cpu: SimDuration::from_secs(1),
            started: SimTime::ZERO,
            ckpt: condor::CkptAttempt::None,
            epoch: 0,
        },
    );
    world.run_until(SimTime::from_secs(600));
    let s = world.get::<Schedd>(schedd_id).unwrap();
    assert_eq!(s.metrics.jobs_completed, 1);
    // The forged report did not complete the job early: the real attempt
    // has a believable start time.
    assert!(s.jobs[&1].attempts[0].started > SimTime::ZERO);
    let _ = machines;
}

#[test]
fn stale_activations_do_not_run_jobs() {
    let (mut world, _schedd_id, machines) = one_job_pool(53);
    // Activate a claim that was never granted.
    world.inject(
        machines[1],
        Msg::ActivateClaim(Box::new(condor::Activation {
            job: 42,
            image: programs::completes_main(),
            universe: Universe::Java(JavaMode::Scoped),
            snapshot: condor::FsSnapshot::default(),
            exec_time: SimDuration::from_secs(10),
            does_remote_io: false,
            schedd: 1,
            attempt: 0,
            resume: None,
            epoch: 0,
            lease: None,
            pool: 0,
        })),
    );
    world.run_until(SimTime::from_secs(300));
    let st = world.get::<Startd>(machines[1]).unwrap();
    // The startd executed only the legitimately claimed job (if it got it)
    // — never the forged activation for job 42.
    assert!(st.stats.executions <= 1);
}

#[test]
fn unknown_timer_messages_are_harmless() {
    let (mut world, schedd_id, machines) = one_job_pool(54);
    for m in &machines {
        world.inject(*m, Msg::ExecutionComplete { job: 999 });
        world.inject(*m, Msg::ReleaseClaim { job: 999 });
    }
    world.inject(schedd_id, Msg::RetryJob { job: 999 });
    world.inject(schedd_id, Msg::PostmortemDone { job: 999 });
    world.inject(
        schedd_id,
        Msg::ReportTimeout {
            job: 1,
            machine: machines[0],
            attempt: 7,
        },
    );
    world.run_until(SimTime::from_secs(600));
    let s = world.get::<Schedd>(schedd_id).unwrap();
    assert_eq!(s.metrics.jobs_completed, 1);
    assert_eq!(s.metrics.vanished_attempts, 0, "stale timeout ignored");
}

#[test]
fn busy_machine_rejects_second_claim() {
    let (mut world, schedd_id, _machines) = one_job_pool(55);
    // Let the real claim land first.
    world.run_until(SimTime::from_secs(15));
    // Find which machine is claimed and hit it with another request.
    let job_machine = {
        let s = world.get::<Schedd>(schedd_id).unwrap();
        match s.jobs[&1].state {
            JobState::Claiming { machine } | JobState::Running { machine } => Some(machine),
            _ => None,
        }
    };
    if let Some(m) = job_machine {
        let ad = JobSpec::java(2, "eve", programs::completes_main(), JavaMode::Scoped).ad();
        world.inject(
            m,
            Msg::ClaimRequest {
                job: 2,
                ad: Box::new(ad),
                epoch: 0,
                pool: 0,
            },
        );
        world.run_until(SimTime::from_secs(20));
        let st = world.get::<Startd>(m).unwrap();
        assert!(st.stats.claims_rejected >= 1, "busy machine must reject");
    }
    world.run_until(SimTime::from_secs(600));
    assert_eq!(
        world
            .get::<Schedd>(schedd_id)
            .unwrap()
            .metrics
            .jobs_completed,
        1
    );
}
