//! Circuit-breaker recovery against a remote matchmaker.
//!
//! The flock probe doubles as the breaker's half-open trial request: when
//! a remote pool's breaker half-opens, the next starving-job escalation
//! sends one FlockRequest through it. A probe timeout while half-open
//! must reopen the breaker (with a longer open window); a successful
//! negotiation must close it and let flocked jobs flow again.

use condor::prelude::*;
use condor::{CircuitBreaker, FederationBuilder};
use desim::{SimDuration, SimTime};
use gridvm::programs;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Breaker transitions recorded for the remote matchmaker's actor id,
/// as (from, to) pairs in stream order.
fn transitions(report: &condor::FlockReport, matchmaker: usize) -> Vec<(String, String)> {
    report
        .telemetry
        .iter()
        .filter_map(|r| match &r.event {
            obs::Event::BreakerStateChange { machine, from, to }
                if *machine == matchmaker as u64 =>
            {
                Some((from.clone(), to.clone()))
            }
            _ => None,
        })
        .collect()
}

#[test]
fn pool_breaker_reopens_on_probe_timeout_and_closes_on_negotiation() {
    // Pool 1's matchmaker is dead until t=200: probes fail, the breaker
    // opens, the half-open trial probe times out and reopens it, and
    // after the heal a probe finally succeeds, closes the breaker, and
    // the job completes on pool 1's machine.
    let breaker = BreakerPolicy {
        threshold: 2,
        open_for: SimDuration::from_secs(60),
        max_open: SimDuration::from_secs(600),
    };
    let report = FederationBuilder::new(61)
        .pool([])
        .pool([MachineSpec::healthy("r1", 256)])
        .pool_breaker(breaker)
        .faults(FaultPlan::none().crash(
            FederationBuilder::matchmaker_id(1),
            Window::new(SimTime::ZERO, t(200)),
        ))
        .job(
            JobSpec::java(1, "ada", programs::completes_main(), JavaMode::Scoped)
                .with_exec_time(SimDuration::from_secs(30)),
        )
        .run(t(3600));

    assert!(report.quiescent, "{:?}", report.jobs);
    assert_eq!(report.metrics.jobs_completed, 1);

    let trs = transitions(&report, FederationBuilder::matchmaker_id(1));
    assert!(
        trs.iter().any(|(f, to)| f == "closed" && to == "open"),
        "repeated probe timeouts must open the breaker: {trs:?}"
    );
    assert!(
        trs.iter().any(|(f, to)| f == "half-open" && to == "open"),
        "a half-open trial probe that times out must reopen: {trs:?}"
    );
    assert!(
        trs.iter().any(|(f, to)| f == "half-open" && to == "closed"),
        "a successful negotiation must close the breaker: {trs:?}"
    );
    // The reopen window doubles: the close comes only after the heal.
    let unreachable = report
        .telemetry
        .iter()
        .filter(|r| {
            matches!(&r.event,
                obs::Event::FlockFault { pool, kind, .. } if *pool == 1 && kind == "unreachable")
        })
        .count();
    assert!(unreachable >= 3, "every failed probe is an explicit fault");
    // The job eventually ran on the once-broken pool.
    let machine = report.jobs[&1].attempts.last().unwrap().machine;
    assert_eq!(report.pool_of_machine[&machine], 1);
    assert!(
        report.jobs[&1].finished.unwrap() >= t(200),
        "after the heal"
    );
}

#[test]
fn breaker_reopen_window_grows_per_half_open_failure() {
    // Direct state-machine check with the same policy the federation
    // uses: each half-open failure reopens for open_for << reopens.
    let policy = BreakerPolicy {
        threshold: 1,
        open_for: SimDuration::from_secs(60),
        max_open: SimDuration::from_secs(600),
    };
    let mut b = CircuitBreaker::new(policy);
    // First failure opens for 60s.
    assert!(b.on_failure(t(0)).is_some());
    assert!(b.is_blocked(t(30)));
    assert!(!b.is_blocked(t(61)), "half-open admits the probe");
    // Probe timeout while half-open: reopens, now for 120s.
    let tr = b.on_failure(t(71)).expect("reopen transition");
    assert_eq!(tr.from.name(), "half-open");
    assert_eq!(tr.to.name(), "open");
    assert!(b.is_blocked(t(130)), "doubled window still blocks");
    assert!(!b.is_blocked(t(192)), "half-open again after 120s");
    // Successful negotiation closes from half-open.
    let tr = b.on_success(t(193)).expect("close transition");
    assert_eq!(tr.from.name(), "half-open");
    assert_eq!(tr.to.name(), "closed");
    assert!(!b.is_blocked(t(194)));
}
