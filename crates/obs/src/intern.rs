//! String interning for hot-path telemetry.
//!
//! Every metric increment and every recorded event used to carry owned
//! `String`s (metric names, label pairs, actor names), which meant an
//! allocation — often several — per telemetry touch. An [`Interner`] maps
//! each distinct string to a dense `u32` [`Sym`] exactly once; after the
//! first sighting, re-interning is a single hash lookup with no
//! allocation, and equality/hashing of keys collapses to integer work.
//!
//! Symbols are meaningful only relative to the interner that produced
//! them: two interners may assign the same `Sym` to different strings.
//! Holders of cross-interner data (e.g. [`crate::Registry::merge`])
//! resolve through the source interner and re-intern into the
//! destination. Interning order is deterministic — the same sequence of
//! `intern` calls yields the same symbols — which is what lets interned
//! telemetry stay bit-reproducible across runs and across the parallel
//! sweep harness.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-rotate hasher (the FxHash construction) for the
/// interner and metric tables. Telemetry keys are program-chosen metric
/// and actor names, never adversarial input, so trading SipHash's
/// flood-resistance for a few-instruction hash is free speed on the
/// hottest path in the crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The `BuildHasher` for [`FxHasher`]-keyed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on the fast hasher — what the interner and registry use.
pub(crate) type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// An interned string: a dense index into one [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw index (dense, starting at 0 in interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index — crate-internal, for padding slots in
    /// fixed-size key arrays.
    pub(crate) const fn from_raw(raw: u32) -> Sym {
        Sym(raw)
    }
}

/// How many hot-entry cache slots the interner keeps (power of two).
const CACHE_SLOTS: usize = 32;

/// One hot-entry cache slot: the *address and length* of a recently
/// interned `&str`, and the symbol it mapped to. `addr == 0` marks an
/// empty slot (a live `&str` is never null). The address is stored as a
/// plain `usize` — it is never dereferenced, only compared — so the
/// interner stays `Send`/`Sync`-clean and a stale address can at worst
/// miss, never corrupt.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    addr: usize,
    len: usize,
    sym: Sym,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    addr: 0,
    len: 0,
    sym: Sym::from_raw(0),
};

/// A deterministic string-to-symbol table.
///
/// Strings are stored once; `intern` allocates only on the first sighting
/// of a string, and `resolve` is an array index.
///
/// Hot paths re-intern the same few names (metric literals, actor names)
/// millions of times, and even a fast string hash plus table probe costs
/// more than the old code's small-string allocation did. A tiny
/// direct-mapped cache keyed on the argument's address short-circuits
/// that: on a hit the only work is an equality memcmp against the
/// interned bytes. The memcmp makes the cache sound — if an address was
/// reused for different text, the bytes differ and the slow path runs —
/// and the symbol an intern call returns never depends on cache state, so
/// determinism is untouched.
#[derive(Debug, Clone)]
pub struct Interner {
    lookup: FastMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
    cache: [CacheSlot; CACHE_SLOTS],
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            lookup: FastMap::default(),
            strings: Vec::new(),
            cache: [EMPTY_SLOT; CACHE_SLOTS],
        }
    }
}

#[inline]
fn cache_index(addr: usize, len: usize) -> usize {
    // Fibonacci hash of the address: string literals sit a few bytes apart
    // in rodata, so low-bit shifts alone would pile neighbours into one
    // slot. The multiply spreads those close addresses across the table.
    let mixed = ((addr ^ len) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 59) as usize & (CACHE_SLOTS - 1)
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// The symbol for `s`, allocating one if this is its first sighting.
    #[inline]
    pub fn intern(&mut self, s: &str) -> Sym {
        let addr = s.as_ptr() as usize;
        let idx = cache_index(addr, s.len());
        let slot = self.cache[idx];
        if slot.addr == addr
            && slot.len == s.len()
            && self.strings[slot.sym.index()].as_bytes() == s.as_bytes()
        {
            return slot.sym;
        }
        let sym = self.intern_slow(s);
        self.cache[idx] = CacheSlot {
            addr,
            len: s.len(),
            sym,
        };
        sym
    }

    fn intern_slow(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.into());
        self.lookup.insert(self.strings[sym.index()].clone(), sym);
        sym
    }

    /// The symbol for `s`, if it has been interned — never allocates.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).copied()
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// If `sym` did not come from this interner (index out of range); a
    /// symbol from a *different* interner with an in-range index resolves
    /// to the wrong string, which is why symbols must never cross
    /// interner boundaries unresolved.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("schedd");
        let b = i.intern("startd");
        assert_eq!(i.intern("schedd"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("attempt_cpu_us");
        assert_eq!(i.resolve(s), "attempt_cpu_us");
        assert_eq!(i.get("attempt_cpu_us"), Some(s));
        assert_eq!(i.get("absent"), None);
    }

    #[test]
    fn interning_order_determines_symbols() {
        let mut x = Interner::new();
        let mut y = Interner::new();
        for s in ["a", "b", "c", "a", "b"] {
            assert_eq!(x.intern(s), y.intern(s));
        }
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn clone_preserves_mapping() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let j = i.clone();
        assert_eq!(j.resolve(a), "x");
        assert_eq!(j.get("x"), Some(a));
    }
}
