//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! `obs` must stay dependency-free (it sits below every other crate), so
//! its exporters cannot use `serde`. This module is just enough JSON to
//! emit the event stream and metrics snapshot and to parse them back for
//! round-trip tests: objects, arrays, strings, booleans, null, and numbers
//! (unsigned and signed integers are kept exact; everything else is `f64`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact up to `u64::MAX`.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved via `BTreeMap` (sorted), which is
    /// all the exporters need.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` to `out` (no leading comma).
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

/// A parse failure, with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // exporters; reject rather than mis-decode.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("unsupported \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return Err(self.err("invalid utf-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::UInt(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(
            parse("\"hi\\n\\\"there\\\"\"").unwrap(),
            Json::Str("hi\n\"there\"".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ \u{1}";
        let mut doc = String::new();
        write_str(&mut doc, original);
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn unicode_survives() {
        let original = "scopo dell'errore — ошибка — 誤り";
        let mut doc = String::new();
        write_str(&mut doc, original);
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.to_string()));
    }
}
