//! Error-journey spans.
//!
//! Every `ScopedError` is given a [`SpanId`] at birth; each hop the error
//! makes (wrapper → proxy → startd → schedd → user) is recorded as a
//! timestamped [`Event::SpanHop`](crate::Event::SpanHop) carrying that id.
//! Grouping the event stream by span id recovers the complete journey of a
//! single error instance, which is what span-aware auditing consumes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A span identifier. Plain `u64` so downstream crates can embed it in
/// serde-derived types without `obs` needing serde itself.
pub type SpanId = u64;

/// The id of "no span": errors predating span assignment, or paths (the
/// naive discipline) where scope information is destroyed before a span
/// could be born.
pub const NO_SPAN: SpanId = 0;

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique span id (never [`NO_SPAN`]).
pub fn next_span_id() -> SpanId {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// What happened to an error at one hop of its journey. This mirrors the
/// provenance-trail actions of `errorscope::error::HopAction`, with scopes
/// flattened to their string names so the record is self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanAction {
    /// The error came into being at this layer.
    Raised,
    /// Delivered upward unchanged (explicitly, within the vocabulary).
    Forwarded,
    /// Reinterpreted into a wider scope in transit (§3.3).
    Widened {
        /// The scope before widening.
        from: String,
    },
    /// Converted to the escaping mode: outside this interface's vocabulary.
    Escaped,
    /// Re-expressed explicitly in a richer vocabulary (e.g. the wrapper's
    /// result file).
    Reexpressed,
    /// Masked by a recovery technique.
    Masked {
        /// The technique applied.
        technique: String,
    },
    /// Consumed by the manager of its scope.
    Handled,
    /// Converted to an implicit error — a Principle 1 violation.
    Swallowed,
}

impl SpanAction {
    /// The action's wire name (the `action` field of a span-hop event).
    pub fn name(&self) -> &'static str {
        match self {
            SpanAction::Raised => "raised",
            SpanAction::Forwarded => "forwarded",
            SpanAction::Widened { .. } => "widened",
            SpanAction::Escaped => "escaped",
            SpanAction::Reexpressed => "reexpressed",
            SpanAction::Masked { .. } => "masked",
            SpanAction::Handled => "handled",
            SpanAction::Swallowed => "swallowed",
        }
    }
}

impl fmt::Display for SpanAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanAction::Widened { from } => write!(f, "widened(from {from})"),
            SpanAction::Masked { technique } => write!(f, "masked({technique})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, NO_SPAN);
        assert_ne!(b, NO_SPAN);
        assert_ne!(a, b);
    }

    #[test]
    fn action_names_are_stable() {
        assert_eq!(SpanAction::Raised.name(), "raised");
        assert_eq!(
            SpanAction::Widened {
                from: "network".into()
            }
            .name(),
            "widened"
        );
        assert_eq!(
            format!(
                "{}",
                SpanAction::Masked {
                    technique: "retry".into()
                }
            ),
            "masked(retry)"
        );
    }
}
