//! Error-journey spans.
//!
//! Every `ScopedError` is given a [`SpanId`] at birth; each hop the error
//! makes (wrapper → proxy → startd → schedd → user) is recorded as a
//! timestamped [`Event::SpanHop`](crate::Event::SpanHop) carrying that id.
//! Grouping the event stream by span id recovers the complete journey of a
//! single error instance, which is what span-aware auditing consumes.

use std::cell::Cell;
use std::fmt;

/// A span identifier. Plain `u64` so downstream crates can embed it in
/// serde-derived types without `obs` needing serde itself.
pub type SpanId = u64;

/// The id of "no span": errors predating span assignment, or paths (the
/// naive discipline) where scope information is destroyed before a span
/// could be born.
pub const NO_SPAN: SpanId = 0;

thread_local! {
    /// Span ids are allocated per thread from an uncontended counter.
    /// Within a thread the sequence is strictly increasing, which is all
    /// single-run grouping needs; the parallel sweep harness calls
    /// [`reset_span_ids`] before each seed's run so a seed's span ids
    /// depend only on the seed's own execution, never on which worker
    /// thread ran it or what ran there before.
    static NEXT_SPAN: Cell<SpanId> = const { Cell::new(1) };
}

/// Allocate a fresh thread-unique span id (never [`NO_SPAN`]).
pub fn next_span_id() -> SpanId {
    NEXT_SPAN.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// The next span id this thread would allocate, without allocating it.
///
/// Lets a harness *bracket* span allocation: save the counter, run work
/// that pins its own bases via [`reset_span_ids`], then restore — so a
/// worker thread that executes many unrelated tasks (seeds, shards)
/// never leaks one task's counter position into the next.
pub fn peek_span_id() -> SpanId {
    NEXT_SPAN.with(|c| c.get())
}

/// Reset this thread's span counter to `base` (clamped to 1 so
/// [`NO_SPAN`] is never handed out).
///
/// Call at the start of an isolated run — e.g. one seed of a multi-seed
/// sweep — to make its span ids a pure function of the run itself. Two
/// runs that reset to the same base and perform the same work record
/// bit-identical span ids, regardless of thread placement.
pub fn reset_span_ids(base: SpanId) {
    NEXT_SPAN.with(|c| c.set(base.max(1)));
}

/// What happened to an error at one hop of its journey. This mirrors the
/// provenance-trail actions of `errorscope::error::HopAction`, with scopes
/// flattened to their string names so the record is self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanAction {
    /// The error came into being at this layer.
    Raised,
    /// Delivered upward unchanged (explicitly, within the vocabulary).
    Forwarded,
    /// Reinterpreted into a wider scope in transit (§3.3).
    Widened {
        /// The scope before widening.
        from: String,
    },
    /// Converted to the escaping mode: outside this interface's vocabulary.
    Escaped,
    /// Re-expressed explicitly in a richer vocabulary (e.g. the wrapper's
    /// result file).
    Reexpressed,
    /// Masked by a recovery technique.
    Masked {
        /// The technique applied.
        technique: String,
    },
    /// Consumed by the manager of its scope.
    Handled,
    /// Converted to an implicit error — a Principle 1 violation.
    Swallowed,
}

impl SpanAction {
    /// The action's wire name (the `action` field of a span-hop event).
    pub fn name(&self) -> &'static str {
        match self {
            SpanAction::Raised => "raised",
            SpanAction::Forwarded => "forwarded",
            SpanAction::Widened { .. } => "widened",
            SpanAction::Escaped => "escaped",
            SpanAction::Reexpressed => "reexpressed",
            SpanAction::Masked { .. } => "masked",
            SpanAction::Handled => "handled",
            SpanAction::Swallowed => "swallowed",
        }
    }
}

impl fmt::Display for SpanAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanAction::Widened { from } => write!(f, "widened(from {from})"),
            SpanAction::Masked { technique } => write!(f, "masked({technique})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, NO_SPAN);
        assert_ne!(b, NO_SPAN);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_pins_the_sequence() {
        reset_span_ids(100);
        assert_eq!(next_span_id(), 100);
        assert_eq!(next_span_id(), 101);
        // A zero base is clamped: NO_SPAN is never allocated.
        reset_span_ids(0);
        assert_eq!(next_span_id(), 1);
        // Leave the counter far from other tests' expectations.
        reset_span_ids(1_000_000);
    }

    #[test]
    fn action_names_are_stable() {
        assert_eq!(SpanAction::Raised.name(), "raised");
        assert_eq!(
            SpanAction::Widened {
                from: "network".into()
            }
            .name(),
            "widened"
        );
        assert_eq!(
            format!(
                "{}",
                SpanAction::Masked {
                    technique: "retry".into()
                }
            ),
            "masked(retry)"
        );
    }
}
