//! The bounded event collector and its JSONL exporter.
//!
//! Recording is a hot path — every `Context::emit` in the simulator lands
//! here — so the collector stores the recording actor's name as an
//! interned [`Sym`](crate::Sym) rather than an owned `String`: after an
//! actor's first event, recording allocates nothing for the name. Strings
//! are resolved back out through [`EventRef`] views and at JSONL export.

use crate::event::Event;
use crate::intern::{Interner, Sym};
use crate::json;
use crate::ring::RingBuffer;
use crate::span::SpanId;
use std::collections::BTreeMap;
use std::fmt;

/// One recorded event: what, when, and which actor saw it. This is the
/// owned form used by the JSONL parser; live collector storage is the
/// interned [`StoredRecord`], viewed through [`EventRef`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulation time, microseconds.
    pub at_us: u64,
    /// The recording actor's name.
    pub actor: String,
    /// The event.
    pub event: Event,
}

/// The in-ring representation: the actor name *and* the event's hot
/// string fields are symbols in the collector's interner.
#[derive(Debug, Clone, PartialEq)]
struct StoredRecord {
    at_us: u64,
    actor: Sym,
    event: Event<Sym>,
}

/// A borrowed view of one recorded event, with the actor name resolved.
/// The event itself stays in its interned form; [`EventRef::to_record`]
/// resolves it fully when an owned copy is needed.
#[derive(Debug, Clone, Copy)]
pub struct EventRef<'a> {
    /// Simulation time, microseconds.
    pub at_us: u64,
    /// The recording actor's name.
    pub actor: &'a str,
    /// The event, hot string fields interned.
    pub event: &'a Event<Sym>,
    /// The interner the event's symbols resolve through.
    strings: &'a Interner,
}

impl EventRef<'_> {
    /// An owned copy of this record, with every symbol resolved.
    pub fn to_record(&self) -> EventRecord {
        EventRecord {
            at_us: self.at_us,
            actor: self.actor.to_string(),
            event: self.event.resolve_strings(self.strings),
        }
    }

    /// Serialise to a single JSON line (no trailing newline appended).
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"at_us\":");
        out.push_str(&self.at_us.to_string());
        out.push(',');
        json::write_key(out, "actor");
        json::write_str(out, self.actor);
        out.push(',');
        json::write_key(out, "event");
        self.event.write_json_with(self.strings, out);
        out.push('}');
    }
}

impl fmt::Display for EventRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12} {}",
            self.at_us as f64 / 1e6,
            self.actor,
            self.event.resolve_strings(self.strings)
        )
    }
}

/// Stream-level accounting emitted as the first line of a
/// [`Collector::to_jsonl_with_meta`] export. Without it a truncated
/// stream — one whose ring evicted old events to stay within capacity —
/// is indistinguishable from a complete one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMeta {
    /// Events retained in (and exported from) the stream.
    pub events: u64,
    /// Events evicted before export: non-zero means the stream is a
    /// *suffix* of the run, not the whole run.
    pub dropped: u64,
    /// The ring capacity the collector ran with.
    pub capacity: u64,
}

impl StreamMeta {
    /// Serialise as the one-line stream header.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stream\":{{\"events\":{},\"dropped\":{},\"capacity\":{}}}}}",
            self.events, self.dropped, self.capacity
        )
    }

    /// Parse a line previously produced by [`StreamMeta::to_json`].
    /// Returns `Ok(None)` when the line is not a stream header at all.
    pub fn from_json(line: &str) -> Result<Option<StreamMeta>, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let Some(stream) = v.get("stream") else {
            return Ok(None);
        };
        let u = |k: &str| -> Result<u64, String> {
            stream
                .get(k)
                .and_then(json::Json::as_u64)
                .ok_or_else(|| format!("stream header missing integer \"{k}\""))
        };
        Ok(Some(StreamMeta {
            events: u("events")?,
            dropped: u("dropped")?,
            capacity: u("capacity")?,
        }))
    }
}

impl EventRecord {
    /// Serialise to a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"at_us\":");
        out.push_str(&self.at_us.to_string());
        out.push(',');
        json::write_key(&mut out, "actor");
        json::write_str(&mut out, &self.actor);
        out.push(',');
        json::write_key(&mut out, "event");
        self.event.write_json(&mut out);
        out.push('}');
        out
    }

    /// Parse one JSON line produced by [`EventRecord::to_json`].
    pub fn from_json(line: &str) -> Result<EventRecord, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let at_us = v
            .get("at_us")
            .and_then(json::Json::as_u64)
            .ok_or("record missing \"at_us\"")?;
        let actor = v
            .get("actor")
            .and_then(json::Json::as_str)
            .ok_or("record missing \"actor\"")?
            .to_string();
        let event = Event::from_json(v.get("event").ok_or("record missing \"event\"")?)?;
        Ok(EventRecord {
            at_us,
            actor,
            event,
        })
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<12} {}",
            self.at_us as f64 / 1e6,
            self.actor,
            self.event
        )
    }
}

/// A bounded, append-only store of typed events — the primary record of a
/// simulation run. Replaces grepping the free-form trace text.
#[derive(Debug, Clone)]
pub struct Collector {
    ring: RingBuffer<StoredRecord>,
    actors: Interner,
    enabled: bool,
}

impl Collector {
    /// Default capacity: plenty for every experiment in the repo while
    /// bounding a pathological run to tens of megabytes.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A collector with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A collector retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Collector {
            ring: RingBuffer::new(capacity),
            actors: Interner::new(),
            enabled: true,
        }
    }

    /// A collector that drops everything (for memory-sensitive sweeps).
    pub fn disabled() -> Self {
        Collector {
            ring: RingBuffer::new(1),
            actors: Interner::new(),
            enabled: false,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record `event` as seen by `actor` at simulation time `at_us`.
    /// After `actor`'s first event, the name costs one hash lookup and no
    /// allocation; the event's hot string fields (escape layers, scopes,
    /// dispositions, reschedule reasons) are interned the same way, so a
    /// retained record stores `u32` symbols instead of heap strings.
    #[inline]
    pub fn record(&mut self, at_us: u64, actor: &str, event: Event) {
        if !self.enabled {
            return;
        }
        let actor = self.actors.intern(actor);
        let event = event.intern_strings(&mut self.actors);
        self.ring.push(StoredRecord {
            at_us,
            actor,
            event,
        });
    }

    /// Recorded events, oldest first, with actor names resolved.
    pub fn iter(&self) -> impl Iterator<Item = EventRef<'_>> + '_ {
        self.ring.iter().map(|r| EventRef {
            at_us: r.at_us,
            actor: self.actors.resolve(r.actor),
            event: &r.event,
            strings: &self.actors,
        })
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.ring.evicted()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// All events belonging to `span`, in record order.
    pub fn span(&self, span: SpanId) -> Vec<EventRef<'_>> {
        self.iter()
            .filter(|r| r.event.span() == Some(span))
            .collect()
    }

    /// Every span id seen, with its events in record order.
    pub fn spans(&self) -> BTreeMap<SpanId, Vec<EventRef<'_>>> {
        let mut out: BTreeMap<SpanId, Vec<EventRef<'_>>> = BTreeMap::new();
        for r in self.iter() {
            if let Some(id) = r.event.span() {
                out.entry(id).or_default().push(r);
            }
        }
        out
    }

    /// Event counts by wire name, for quick summaries.
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for r in self.iter() {
            *out.entry(r.event.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Export every retained event as JSON Lines (one object per line,
    /// trailing newline included when non-empty). Output is preallocated
    /// from the record count and each line is written in place — no
    /// per-record intermediate `String`.
    pub fn to_jsonl(&self) -> String {
        // ~96 bytes is the observed median line; headroom avoids the first
        // few doublings without over-reserving pathological streams.
        let mut out = String::with_capacity(self.len() * 112);
        for r in self.iter() {
            r.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Stream-level accounting for this collector: how many events are
    /// retained, how many were dropped to stay within capacity, and the
    /// capacity itself.
    pub fn stream_meta(&self) -> StreamMeta {
        StreamMeta {
            events: self.len() as u64,
            dropped: self.evicted(),
            capacity: self.capacity() as u64,
        }
    }

    /// Like [`Collector::to_jsonl`], with a [`StreamMeta`] header line
    /// prepended so consumers can tell a complete stream from a truncated
    /// one. [`Collector::parse_jsonl`] skips the header; use
    /// [`Collector::parse_jsonl_with_meta`] to read it back.
    pub fn to_jsonl_with_meta(&self) -> String {
        let mut out = self.stream_meta().to_json();
        out.push('\n');
        out.push_str(&self.to_jsonl());
        out
    }

    /// Parse a JSONL export back into records. Blank lines and stream
    /// header lines are skipped (so concatenated and headered exports both
    /// parse); any malformed line is an error.
    pub fn parse_jsonl(input: &str) -> Result<Vec<EventRecord>, String> {
        Self::parse_jsonl_with_meta(input).map(|(_, records)| records)
    }

    /// Parse a JSONL export, returning every stream header encountered
    /// (one per concatenated export, in order; empty for legacy headerless
    /// streams) alongside the records.
    pub fn parse_jsonl_with_meta(
        input: &str,
    ) -> Result<(Vec<StreamMeta>, Vec<EventRecord>), String> {
        let mut meta = Vec::new();
        let mut out = Vec::new();
        for (i, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fail = |e: String| format!("line {}: {e}", i + 1);
            // Headers are recognised by the exact prefix the writer emits,
            // so record lines are never parsed twice.
            if line.starts_with("{\"stream\":") {
                if let Some(m) = StreamMeta::from_json(line).map_err(fail)? {
                    meta.push(m);
                    continue;
                }
            }
            out.push(EventRecord::from_json(line).map_err(fail)?);
        }
        Ok((meta, out))
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClaimOutcome, IoOutcome};
    use crate::span::SpanAction;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Claim {
                job: 1,
                machine: 2,
                outcome: ClaimOutcome::Accepted,
            },
            Event::Dispatch { job: 1, machine: 2 },
            Event::SpanHop {
                span: 11,
                layer: "io-library".into(),
                action: SpanAction::Raised,
                scope: "local-resource".into(),
            },
            Event::SpanHop {
                span: 11,
                layer: "wrapper".into(),
                action: SpanAction::Reexpressed,
                scope: "local-resource".into(),
            },
            Event::IoOp {
                op: "read".into(),
                outcome: IoOutcome::Ok,
            },
            Event::Disposition {
                job: 1,
                disposition: "log-and-reschedule".into(),
                scope: "local-resource".into(),
                span: 11,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let mut c = Collector::new();
        for (i, e) in sample_events().into_iter().enumerate() {
            c.record(i as u64 * 1_000_000, "schedd", e);
        }
        let jsonl = c.to_jsonl();
        let parsed = Collector::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, c.iter().map(|r| r.to_record()).collect::<Vec<_>>());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = Collector::parse_jsonl("{\"at_us\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(Collector::parse_jsonl("not json\n").is_err());
        // Blank lines are fine.
        assert_eq!(Collector::parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn capacity_bounds_growth_and_counts_evictions() {
        let mut c = Collector::with_capacity(3);
        for i in 0..8u64 {
            c.record(i, "a", Event::Dispatch { job: i, machine: 0 });
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted(), 5);
        let jobs: Vec<u64> = c
            .iter()
            .map(|r| match r.event {
                Event::Dispatch { job, .. } => *job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(jobs, vec![5, 6, 7]);
    }

    #[test]
    fn meta_header_round_trips_and_is_skipped() {
        let mut c = Collector::with_capacity(3);
        for i in 0..8u64 {
            c.record(i, "a", Event::Dispatch { job: i, machine: 0 });
        }
        let meta = c.stream_meta();
        assert_eq!(
            meta,
            StreamMeta {
                events: 3,
                dropped: 5,
                capacity: 3
            }
        );
        let jsonl = c.to_jsonl_with_meta();
        assert!(jsonl.starts_with("{\"stream\":{\"events\":3,\"dropped\":5,\"capacity\":3}}\n"));
        // The header is invisible to the plain parser…
        let plain = Collector::parse_jsonl(&jsonl).unwrap();
        assert_eq!(plain.len(), 3);
        // …and recovered by the meta-aware one, even for concatenated
        // streams (the sweep harness glues per-seed exports together).
        let twice = format!("{jsonl}{jsonl}");
        let (metas, records) = Collector::parse_jsonl_with_meta(&twice).unwrap();
        assert_eq!(metas, vec![meta, meta]);
        assert_eq!(records.len(), 6);
        // Headerless legacy streams parse with no meta.
        let (metas, records) = Collector::parse_jsonl_with_meta(&c.to_jsonl()).unwrap();
        assert!(metas.is_empty());
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn interned_hot_fields_resolve_and_export_identically() {
        let mut c = Collector::new();
        c.record(
            5,
            "startd:m1",
            Event::Escape {
                span: 3,
                layer: "io-library".into(),
                code: "FilesystemOffline".into(),
                scope: "local-resource".into(),
            },
        );
        c.record(
            9,
            "schedd",
            Event::Reschedule {
                job: 1,
                machine: 2,
                reason: "remote-resource-scope error: jvm missing".into(),
            },
        );
        // The stored form resolves back to exactly what was recorded…
        let records: Vec<EventRecord> = c.iter().map(|r| r.to_record()).collect();
        assert_eq!(
            records[0].event,
            Event::Escape {
                span: 3,
                layer: "io-library".into(),
                code: "FilesystemOffline".into(),
                scope: "local-resource".into(),
            }
        );
        // …and the export round-trips byte-identically through the parser.
        let jsonl = c.to_jsonl();
        let reparsed = Collector::parse_jsonl(&jsonl).unwrap();
        let mut rewritten = String::new();
        for r in &reparsed {
            rewritten.push_str(&r.to_json());
            rewritten.push('\n');
        }
        assert_eq!(rewritten, jsonl);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        c.record(0, "a", Event::Dispatch { job: 1, machine: 1 });
        assert!(c.is_empty());
        assert!(!c.is_enabled());
    }

    #[test]
    fn span_grouping_preserves_order() {
        let mut c = Collector::new();
        for (i, e) in sample_events().into_iter().enumerate() {
            c.record(i as u64, "startd:m01", e);
        }
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        let journey = &spans[&11];
        // Raised, reexpressed, then the disposition that closed it.
        assert_eq!(journey.len(), 3);
        assert!(journey.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(journey[0].event.kind(), "span-hop");
        assert_eq!(journey[2].event.kind(), "disposition");
        assert_eq!(c.span(11).len(), 3);
        assert!(c.span(99).is_empty());
    }

    #[test]
    fn display_matches_trace_shape() {
        let r = EventRecord {
            at_us: 1_500_000,
            actor: "schedd".to_string(),
            event: Event::Dispatch { job: 1, machine: 2 },
        };
        assert_eq!(
            format!("{r}"),
            "[    1.500000s] schedd       dispatch job=1 machine=2"
        );
    }
}
