//! Named counters, gauges, and log-scale histograms.
//!
//! The [`Registry`] is a flat map from `(name, labels)` to a value, in the
//! style of a Prometheus exposition: `condor::Metrics` projects itself onto
//! one of these, with per-scope (`scope=...`) and per-machine
//! (`machine=...`) labels, and the experiment binaries write the snapshot
//! as JSON next to their event streams.
//!
//! [`Histogram`] uses power-of-two buckets over `u64` values (we feed it
//! microsecond durations): bucket 0 holds exactly the value 0, bucket
//! `i >= 1` holds values of bit length `i`, i.e. the range
//! `[2^(i-1), 2^i - 1]`. Bucket 64 therefore ends at `u64::MAX`.

use crate::json;
use std::collections::BTreeMap;
use std::fmt;

/// Number of histogram buckets: one for zero plus one per bit length.
pub const BUCKETS: usize = 65;

/// A log-scale histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value falls into: 0 for 0, else the value's bit length.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` range of bucket `i`.
    ///
    /// # Panics
    /// If `i >= BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (u128: immune to overflow even at `u64::MAX`
    /// samples).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        if self.count > 0 {
            out.push_str(",\"min\":");
            out.push_str(&self.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&self.max.to_string());
        }
        out.push_str(",\"buckets\":[");
        for (n, (i, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let (lo, hi) = Self::bucket_bounds(i);
            out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
        }
        out.push_str("]}");
    }
}

/// A metric identity: a name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// The metric name, e.g. `jobs_completed`.
    pub name: String,
    /// Label pairs, kept sorted so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with no labels.
    pub fn plain(name: &str) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A key with labels (sorted internally).
    pub fn labeled(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn write_json_fields(&self, out: &mut String) {
        json::write_key(out, "name");
        json::write_str(out, &self.name);
        if !self.labels.is_empty() {
            out.push(',');
            json::write_key(out, "labels");
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_key(out, k);
                json::write_str(out, v);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v:?}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// A registry of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricKey::labeled(name, labels))
            .or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::labeled(name, labels), value);
    }

    /// Record a sample into a histogram, creating it if needed.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histograms
            .entry(MetricKey::labeled(name, labels))
            .or_default()
            .record(value);
    }

    /// Merge a whole histogram into a named histogram, creating it if
    /// needed — for folding externally-kept histograms into a snapshot.
    pub fn histogram_merge(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.histograms
            .entry(MetricKey::labeled(name, labels))
            .or_default()
            .merge(h);
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::labeled(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::labeled(name, labels)).copied()
    }

    /// A histogram, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::labeled(name, labels))
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value, histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The whole registry as one JSON document:
    /// `{"counters":[...],"gauges":[...],"histograms":[...]}` with entries
    /// in sorted key order (deterministic output).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "value");
            out.push_str(&v.to_string());
            out.push('}');
        }
        out.push_str("],\"gauges\":[");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "value");
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "histogram");
            h.write_json(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Zero gets its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        // Powers of two start new buckets; their predecessors end them.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_bounds(11), (1024, 2047));
        // The top bucket ends exactly at u64::MAX.
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_handles_zero_and_max_samples() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u128::from(u64::MAX));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(64), 1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (64, 1)]);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(0);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(100));
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn registry_counters_and_labels() {
        let mut r = Registry::new();
        r.counter_add("jobs_completed", &[], 3);
        r.counter_add("jobs_completed", &[], 1);
        r.counter_add("outcomes_total", &[("scope", "program")], 2);
        r.counter_add("outcomes_total", &[("scope", "job")], 1);
        assert_eq!(r.counter("jobs_completed", &[]), 4);
        assert_eq!(r.counter("outcomes_total", &[("scope", "program")]), 2);
        assert_eq!(r.counter("outcomes_total", &[("scope", "pool")]), 0);
        // Label order does not matter.
        r.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn snapshot_parses_and_is_deterministic() {
        let mut r = Registry::new();
        r.counter_add("jobs_completed", &[], 7);
        r.counter_add("outcomes_total", &[("scope", "local-resource")], 2);
        r.gauge_set("cpu_efficiency", &[], 0.875);
        r.observe("attempt_cpu_us", &[("scope", "program")], 0);
        r.observe("attempt_cpu_us", &[("scope", "program")], 120_000_000);
        let doc = r.snapshot_json();
        let v = crate::json::parse(&doc).expect("snapshot parses");
        let counters = v.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters.len(), 2);
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(
            hists[0]
                .get("histogram")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(doc, r.snapshot_json());
    }

    #[test]
    fn registry_merge_folds_all_three_kinds() {
        let mut a = Registry::new();
        a.counter_add("c", &[], 1);
        a.observe("h", &[], 10);
        let mut b = Registry::new();
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 1.5);
        b.observe("h", &[], 20);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(1.5));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 2);
    }
}
