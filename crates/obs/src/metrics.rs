//! Named counters, gauges, and log-scale histograms.
//!
//! The [`Registry`] is a flat map from `(name, labels)` to a value, in the
//! style of a Prometheus exposition: `condor::Metrics` projects itself onto
//! one of these, with per-scope (`scope=...`) and per-machine
//! (`machine=...`) labels, and the experiment binaries write the snapshot
//! as JSON next to their event streams.
//!
//! Internally the registry is keyed on interned symbols ([`crate::Sym`]):
//! a metric touch interns its name and label strings (hash lookups, no
//! allocation after first sighting) and indexes a hash map by a small
//! integer key. Strings are resolved — and entries sorted into the
//! historical `(name, labels)` order — only when a snapshot is exported,
//! so [`Registry::snapshot_json`] output is byte-identical to the old
//! string-keyed implementation.
//!
//! [`Histogram`] uses power-of-two buckets over `u64` values (we feed it
//! microsecond durations): bucket 0 holds exactly the value 0, bucket
//! `i >= 1` holds values of bit length `i`, i.e. the range
//! `[2^(i-1), 2^i - 1]`. Bucket 64 therefore ends at `u64::MAX`.

use crate::intern::{FastMap, Interner, Sym};
use crate::json;
use std::collections::BTreeMap;
use std::fmt;

/// Number of histogram buckets: one for zero plus one per bit length.
pub const BUCKETS: usize = 65;

/// A log-scale histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value falls into: 0 for 0, else the value's bit length.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` range of bucket `i`.
    ///
    /// # Panics
    /// If `i >= BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (u128: immune to overflow even at `u64::MAX`
    /// samples).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        if self.count > 0 {
            out.push_str(",\"min\":");
            out.push_str(&self.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&self.max.to_string());
        }
        out.push_str(",\"buckets\":[");
        for (n, (i, c)) in self.nonzero_buckets().into_iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let (lo, hi) = Self::bucket_bounds(i);
            out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
        }
        out.push_str("]}");
    }
}

/// A metric identity: a name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// The metric name, e.g. `jobs_completed`.
    pub name: String,
    /// Label pairs, kept sorted so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with no labels.
    pub fn plain(name: &str) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A key with labels (sorted internally).
    pub fn labeled(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn write_json_fields(&self, out: &mut String) {
        json::write_key(out, "name");
        json::write_str(out, &self.name);
        if !self.labels.is_empty() {
            out.push(',');
            json::write_key(out, "labels");
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_key(out, k);
                json::write_str(out, v);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v:?}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// How many label pairs a key holds inline before spilling to the heap.
/// Every metric in the repo today uses 0 or 1 labels; 4 leaves headroom.
const INLINE_LABELS: usize = 4;

/// The label set of an interned key. `Inline` covers the common case with
/// zero allocation; label sets wider than [`INLINE_LABELS`] spill to a
/// `Vec`. Construction always canonicalises (pairs sorted by symbol, spill
/// only when the inline array cannot hold them), so derived `Eq`/`Hash`
/// agree with label-set equality.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LabelSyms {
    Inline(u8, [(Sym, Sym); INLINE_LABELS]),
    Spilled(Vec<(Sym, Sym)>),
}

/// An interned metric identity: symbols only, cheap to hash and compare.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SymKey {
    name: Sym,
    labels: LabelSyms,
}

impl SymKey {
    fn label_pairs(&self) -> &[(Sym, Sym)] {
        match &self.labels {
            LabelSyms::Inline(n, pairs) => &pairs[..usize::from(*n)],
            LabelSyms::Spilled(v) => v,
        }
    }
}

/// Hand-rolled to keep key hashing at one word per label pair plus one for
/// the name: the derived impl feeds the hasher ~11 separate integer writes
/// (discriminant, padding slots, each `u32` alone), and with a
/// multiply-based hasher those writes form a serial dependency chain that
/// dominated `counter_add`. Consistent with the derived `Eq`: the hash is
/// a pure function of `(name, live label pairs, label count)`, and equal
/// keys always carry identical zero padding.
impl std::hash::Hash for SymKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let pairs = self.label_pairs();
        state.write_u64(((self.name.index() as u64) << 8) | pairs.len() as u64);
        for &(k, v) in pairs {
            state.write_u64(((k.index() as u64) << 32) | v.index() as u64);
        }
    }
}

/// Canonicalise freshly interned label pairs: sorted by `(Sym, Sym)`.
/// Symbols are bijective with strings, so symbol order is a total order on
/// label pairs — any insertion order of the same label set produces the
/// same key. (Export re-sorts by *string* order separately.)
fn canonical_labels(pairs: &mut [(Sym, Sym)]) -> LabelSyms {
    pairs.sort_unstable();
    if pairs.len() <= INLINE_LABELS {
        let mut inline = [(Sym::from_raw(0), Sym::from_raw(0)); INLINE_LABELS];
        inline[..pairs.len()].copy_from_slice(pairs);
        LabelSyms::Inline(pairs.len() as u8, inline)
    } else {
        LabelSyms::Spilled(pairs.to_vec())
    }
}

/// A registry of named metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    interner: Interner,
    counters: FastMap<SymKey, u64>,
    gauges: FastMap<SymKey, f64>,
    histograms: FastMap<SymKey, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Intern a key for a write: allocation-free after each string's first
    /// sighting (label sets wider than [`INLINE_LABELS`] pairs excepted).
    #[inline]
    fn make_key(&mut self, name: &str, labels: &[(&str, &str)]) -> SymKey {
        let name = self.interner.intern(name);
        if labels.is_empty() {
            return SymKey {
                name,
                labels: LabelSyms::Inline(0, [(Sym::from_raw(0), Sym::from_raw(0)); INLINE_LABELS]),
            };
        }
        if labels.len() <= INLINE_LABELS {
            let mut pairs = [(Sym::from_raw(0), Sym::from_raw(0)); INLINE_LABELS];
            for (slot, (k, v)) in pairs.iter_mut().zip(labels) {
                *slot = (self.interner.intern(k), self.interner.intern(v));
            }
            SymKey {
                name,
                labels: canonical_labels(&mut pairs[..labels.len()]),
            }
        } else {
            let mut pairs: Vec<(Sym, Sym)> = labels
                .iter()
                .map(|(k, v)| (self.interner.intern(k), self.interner.intern(v)))
                .collect();
            SymKey {
                name,
                labels: canonical_labels(&mut pairs),
            }
        }
    }

    /// Look up a key without interning (for reads): `None` means some part
    /// of the key has never been seen, so the metric cannot exist.
    fn find_key(&self, name: &str, labels: &[(&str, &str)]) -> Option<SymKey> {
        let name = self.interner.get(name)?;
        if labels.len() <= INLINE_LABELS {
            let mut pairs = [(Sym::from_raw(0), Sym::from_raw(0)); INLINE_LABELS];
            for (slot, (k, v)) in pairs.iter_mut().zip(labels) {
                *slot = (self.interner.get(k)?, self.interner.get(v)?);
            }
            Some(SymKey {
                name,
                labels: canonical_labels(&mut pairs[..labels.len()]),
            })
        } else {
            let mut pairs = labels
                .iter()
                .map(|(k, v)| Some((self.interner.get(k)?, self.interner.get(v)?)))
                .collect::<Option<Vec<_>>>()?;
            Some(SymKey {
                name,
                labels: canonical_labels(&mut pairs),
            })
        }
    }

    /// Resolve an interned key back to owned strings, in the historical
    /// `(name, sorted labels)` form — export-path only.
    fn resolve_key(&self, key: &SymKey) -> MetricKey {
        let mut labels: Vec<(String, String)> = key
            .label_pairs()
            .iter()
            .map(|&(k, v)| {
                (
                    self.interner.resolve(k).to_string(),
                    self.interner.resolve(v).to_string(),
                )
            })
            .collect();
        labels.sort();
        MetricKey {
            name: self.interner.resolve(key.name).to_string(),
            labels,
        }
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    #[inline]
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = self.make_key(name, labels);
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = self.make_key(name, labels);
        self.gauges.insert(key, value);
    }

    /// Record a sample into a histogram, creating it if needed.
    #[inline]
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = self.make_key(name, labels);
        self.histograms.entry(key).or_default().record(value);
    }

    /// Merge a whole histogram into a named histogram, creating it if
    /// needed — for folding externally-kept histograms into a snapshot.
    pub fn histogram_merge(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let key = self.make_key(name, labels);
        self.histograms.entry(key).or_default().merge(h);
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.find_key(name, labels)
            .and_then(|k| self.counters.get(&k))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&self.find_key(name, labels)?).copied()
    }

    /// A histogram, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&self.find_key(name, labels)?)
    }

    /// All counters as resolved `(key, value)` pairs in key order.
    pub fn counters(&self) -> Vec<(MetricKey, u64)> {
        let mut out: Vec<(MetricKey, u64)> = self
            .counters
            .iter()
            .map(|(k, &v)| (self.resolve_key(k), v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value, histograms merge. Symbols are resolved through the
    /// other registry's interner and re-interned here, so registries built
    /// in different threads (or different seed runs) merge correctly.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            let key = self.reintern_key(other, k);
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let key = self.reintern_key(other, k);
            self.gauges.insert(key, v);
        }
        for (k, h) in &other.histograms {
            let key = self.reintern_key(other, k);
            self.histograms.entry(key).or_default().merge(h);
        }
    }

    /// Translate a key from `other`'s symbol space into ours.
    fn reintern_key(&mut self, other: &Registry, key: &SymKey) -> SymKey {
        let name = self.interner.intern(other.interner.resolve(key.name));
        let mut pairs: Vec<(Sym, Sym)> = key
            .label_pairs()
            .iter()
            .map(|&(k, v)| {
                (
                    self.interner.intern(other.interner.resolve(k)),
                    self.interner.intern(other.interner.resolve(v)),
                )
            })
            .collect();
        SymKey {
            name,
            labels: canonical_labels(&mut pairs),
        }
    }

    /// A map keyed on resolved strings — the canonical form used for
    /// sorted export and cross-interner equality.
    fn sorted<'a, V>(&'a self, map: &'a FastMap<SymKey, V>) -> BTreeMap<MetricKey, &'a V> {
        map.iter().map(|(k, v)| (self.resolve_key(k), v)).collect()
    }

    /// The whole registry as one JSON document:
    /// `{"counters":[...],"gauges":[...],"histograms":[...]}` with entries
    /// in sorted key order (deterministic output, byte-identical to the
    /// pre-interning string-keyed registry).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (k, v)) in self.sorted(&self.counters).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "value");
            out.push_str(&v.to_string());
            out.push('}');
        }
        out.push_str("],\"gauges\":[");
        for (i, (k, v)) in self.sorted(&self.gauges).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "value");
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, (k, h)) in self.sorted(&self.histograms).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            k.write_json_fields(&mut out);
            out.push(',');
            json::write_key(&mut out, "histogram");
            h.write_json(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Equality over *resolved* content: two registries are equal when they
/// hold the same metrics with the same values, regardless of the order
/// their interners learned the strings in.
impl PartialEq for Registry {
    fn eq(&self, other: &Self) -> bool {
        self.sorted(&self.counters) == other.sorted(&other.counters)
            && self.sorted(&self.gauges) == other.sorted(&other.gauges)
            && self.sorted(&self.histograms) == other.sorted(&other.histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Zero gets its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        // Powers of two start new buckets; their predecessors end them.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_bounds(11), (1024, 2047));
        // The top bucket ends exactly at u64::MAX.
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_handles_zero_and_max_samples() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u128::from(u64::MAX));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(64), 1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (64, 1)]);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(0);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 105);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(100));
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn registry_counters_and_labels() {
        let mut r = Registry::new();
        r.counter_add("jobs_completed", &[], 3);
        r.counter_add("jobs_completed", &[], 1);
        r.counter_add("outcomes_total", &[("scope", "program")], 2);
        r.counter_add("outcomes_total", &[("scope", "job")], 1);
        assert_eq!(r.counter("jobs_completed", &[]), 4);
        assert_eq!(r.counter("outcomes_total", &[("scope", "program")]), 2);
        assert_eq!(r.counter("outcomes_total", &[("scope", "pool")]), 0);
        // Label order does not matter.
        r.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn snapshot_parses_and_is_deterministic() {
        let mut r = Registry::new();
        r.counter_add("jobs_completed", &[], 7);
        r.counter_add("outcomes_total", &[("scope", "local-resource")], 2);
        r.gauge_set("cpu_efficiency", &[], 0.875);
        r.observe("attempt_cpu_us", &[("scope", "program")], 0);
        r.observe("attempt_cpu_us", &[("scope", "program")], 120_000_000);
        let doc = r.snapshot_json();
        let v = crate::json::parse(&doc).expect("snapshot parses");
        let counters = v.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters.len(), 2);
        let hists = v.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(
            hists[0]
                .get("histogram")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(doc, r.snapshot_json());
    }

    #[test]
    fn wide_label_sets_spill_and_still_canonicalise() {
        let mut r = Registry::new();
        let labels: Vec<(&str, &str)> = vec![
            ("e", "5"),
            ("a", "1"),
            ("c", "3"),
            ("b", "2"),
            ("d", "4"),
            ("f", "6"),
        ];
        r.counter_add("wide", &labels, 2);
        let mut reversed = labels.clone();
        reversed.reverse();
        r.counter_add("wide", &reversed, 3);
        assert_eq!(r.counter("wide", &labels), 5);
        assert_eq!(r.counter("wide", &reversed), 5);
        // Export sorts by string order and parses cleanly.
        let doc = r.snapshot_json();
        assert!(crate::json::parse(&doc).is_ok());
        assert!(doc.contains("\"a\":\"1\",\"b\":\"2\",\"c\":\"3\""));
    }

    #[test]
    fn equality_and_merge_cross_interner_order() {
        // Same content, interned in opposite orders: must be equal, and
        // snapshots must be byte-identical.
        let mut a = Registry::new();
        a.counter_add("x", &[], 1);
        a.counter_add("y", &[("scope", "job")], 2);
        let mut b = Registry::new();
        b.counter_add("y", &[("scope", "job")], 2);
        b.counter_add("x", &[], 1);
        assert_eq!(a, b);
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        // Merging re-interns through the source registry's table.
        let mut m = Registry::new();
        m.counter_add("z", &[], 10);
        m.merge(&a);
        assert_eq!(m.counter("x", &[]), 1);
        assert_eq!(m.counter("y", &[("scope", "job")]), 2);
        assert_eq!(m.counter("z", &[]), 10);
    }

    #[test]
    fn counters_iterate_resolved_and_sorted() {
        let mut r = Registry::new();
        r.counter_add("zeta", &[], 1);
        r.counter_add("alpha", &[("m", "1")], 2);
        let counters = r.counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].0.name, "alpha");
        assert_eq!(counters[1].0.name, "zeta");
        assert_eq!(counters[0].1, 2);
    }

    #[test]
    fn registry_merge_folds_all_three_kinds() {
        let mut a = Registry::new();
        a.counter_add("c", &[], 1);
        a.observe("h", &[], 10);
        let mut b = Registry::new();
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 1.5);
        b.observe("h", &[], 20);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(1.5));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 2);
    }
}
