//! Unified telemetry for the simulated grid.
//!
//! The paper's argument is about *where errors travel*; this crate records
//! that journey as data instead of prose. It provides:
//!
//! * [`RingBuffer`] — the bounded storage shared by the event collector and
//!   `desim`'s trace log, so long simulations cannot grow memory without
//!   bound.
//! * [`Event`] / [`EventRecord`] / [`Collector`] — typed protocol events
//!   (claim, dispatch, escape, reschedule, disposition, I/O op, violation)
//!   plus **error-journey spans**: every `ScopedError` hop becomes a
//!   timestamped [`Event::SpanHop`] keyed by the span id the error received
//!   at birth.
//! * [`Registry`] / [`Histogram`] — named counters, gauges, and log-scale
//!   histograms with per-scope and per-machine labels.
//! * [`Interner`] / [`Sym`] — hot-path string interning: metric keys and
//!   event actor names are stored as dense `u32` symbols and resolved back
//!   to strings only at export time, so steady-state telemetry allocates
//!   nothing.
//! * Exporters — a JSONL event stream ([`Collector::to_jsonl`]) and a JSON
//!   metrics snapshot ([`Registry::snapshot_json`]) — with a hand-rolled
//!   parser ([`json`]) so exports can be round-tripped and validated
//!   without any external dependency.
//!
//! `obs` sits *below* every other crate in the workspace (including
//! `desim`), so it is deliberately dependency-free. Timestamps are plain
//! `u64` microseconds; the simulator's `SimTime` converts trivially.

#![warn(missing_docs)]

pub mod collector;
pub mod event;
pub mod intern;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;

pub use collector::{Collector, EventRecord, EventRef, StreamMeta};
pub use event::{ClaimOutcome, Event, IoOutcome};
pub use intern::{Interner, Sym};
pub use metrics::{Histogram, MetricKey, Registry};
pub use ring::RingBuffer;
pub use span::{next_span_id, peek_span_id, reset_span_ids, SpanAction, SpanId, NO_SPAN};
