//! A bounded FIFO ring buffer.
//!
//! Both the typed event [`Collector`](crate::Collector) and `desim`'s text
//! trace log store their records here, so a long-running simulation holds a
//! window of the most recent records rather than the whole history. The
//! number of evicted records is kept so consumers can tell a complete
//! record from a truncated one.

use std::collections::VecDeque;

/// A bounded FIFO buffer: pushing past capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    evicted: u64,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` entries. A capacity of zero is
    /// promoted to one so `push` always retains the newest entry.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Append an entry, evicting the oldest if the buffer is full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(item);
    }

    /// Entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.buf.iter()
    }

    /// The entry at position `i` (0 = oldest retained).
    pub fn get(&self, i: usize) -> Option<&T> {
        self.buf.get(i)
    }

    /// The most recent entry.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries have been evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drop all retained entries (the eviction count is unchanged).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl<'a, T> IntoIterator for &'a RingBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_keeps_everything() {
        let mut r = RingBuffer::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn eviction_preserves_fifo_order() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(i);
        }
        // The three newest survive, oldest first.
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 7);
        assert_eq!(r.get(0), Some(&7));
        assert_eq!(r.last(), Some(&9));
    }

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let mut r = RingBuffer::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(r.evicted(), 1);
    }

    #[test]
    fn clear_keeps_the_eviction_count() {
        let mut r = RingBuffer::new(2);
        for i in 0..5 {
            r.push(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 3);
    }
}
