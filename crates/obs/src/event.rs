//! The typed event vocabulary of the grid.
//!
//! One [`Event`] per protocol-significant moment: the claiming handshake,
//! job dispatch, an error escaping an interface, a reschedule, the schedd's
//! final disposition, a remote I/O operation, a principle violation, and —
//! the heart of the layer — a [`SpanHop`](Event::SpanHop) for every hop of
//! an error's journey through the software stack.
//!
//! Events serialise to single-line JSON objects (see
//! [`Collector::to_jsonl`](crate::Collector::to_jsonl)) and parse back via
//! [`Event::from_json`], so an exported stream can be re-read and audited
//! offline.

use crate::intern::{Interner, Sym};
use crate::json::{self, Json};
use crate::span::{SpanAction, SpanId};
use std::fmt;

/// Resolves one of an event's interned-or-owned string fields to `&str`.
///
/// The event enum is generic over its hot string fields ([`Event<S>`]);
/// serialization is written once against this trait so the owned form
/// (`S = String`, resolver [`PlainStr`]) and the collector's interned form
/// (`S = Sym`, resolver [`Interner`]) produce byte-identical JSON.
pub(crate) trait ResolveStr<S> {
    /// The text behind `s`.
    fn str<'a>(&'a self, s: &'a S) -> &'a str;
}

/// The trivial resolver for `Event<String>`: the field *is* the text.
pub(crate) struct PlainStr;

impl ResolveStr<String> for PlainStr {
    fn str<'a>(&'a self, s: &'a String) -> &'a str {
        s
    }
}

impl ResolveStr<Sym> for Interner {
    fn str<'a>(&'a self, s: &'a Sym) -> &'a str {
        self.resolve(*s)
    }
}

/// How a claim attempt concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The schedd asked for the machine.
    Requested,
    /// The startd accepted.
    Accepted,
    /// The startd declined.
    Rejected {
        /// Why.
        reason: String,
    },
    /// No answer arrived in time.
    TimedOut,
}

impl ClaimOutcome {
    fn name(&self) -> &'static str {
        match self {
            ClaimOutcome::Requested => "requested",
            ClaimOutcome::Accepted => "accepted",
            ClaimOutcome::Rejected { .. } => "rejected",
            ClaimOutcome::TimedOut => "timed-out",
        }
    }
}

/// How a remote I/O operation concluded, from the library's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOutcome {
    /// Success.
    Ok,
    /// An explicit, in-vocabulary error.
    Error {
        /// The protocol error code.
        code: String,
    },
    /// The condition escaped the interface (Principle 2).
    Escaped {
        /// The escaping error's code.
        code: String,
    },
}

impl IoOutcome {
    fn name(&self) -> &'static str {
        match self {
            IoOutcome::Ok => "ok",
            IoOutcome::Error { .. } => "error",
            IoOutcome::Escaped { .. } => "escaped",
        }
    }
}

/// One typed telemetry event.
///
/// The type is generic over its *hot* string fields — the ones written on
/// every escape/reschedule/disposition the scheduler emits. Constructed
/// events use the default `S = String`; inside the [`Collector`]
/// (crate::Collector) those fields are interned and stored as
/// `Event<Sym>`, so a retained record carries three `u32`s where it used
/// to carry three heap strings. Cold fields (rejection reasons, span-hop
/// layers, violation details) stay owned in both forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<S = String> {
    /// A step of the claiming protocol for `job` on `machine`.
    Claim {
        /// Which job.
        job: u64,
        /// The machine (startd actor id).
        machine: u64,
        /// What happened.
        outcome: ClaimOutcome,
    },
    /// The shadow activated a claim: `job` begins executing on `machine`.
    Dispatch {
        /// Which job.
        job: u64,
        /// The machine.
        machine: u64,
    },
    /// The matchmaker paired `job` with `machine` in a negotiation cycle
    /// and notified the schedd ("notifies schedds and startds of
    /// compatible partners", §2.1).
    Match {
        /// Which job.
        job: u64,
        /// The machine (startd actor id).
        machine: u64,
    },
    /// An error escaped an interface (Principle 2 in action).
    Escape {
        /// The error's journey span.
        span: SpanId,
        /// The interface it escaped.
        layer: S,
        /// Machine-readable condition.
        code: S,
        /// The error's scope name.
        scope: S,
    },
    /// The schedd put a job back in the idle queue.
    Reschedule {
        /// Which job.
        job: u64,
        /// The machine the failed attempt ran on.
        machine: u64,
        /// Why, human-readable.
        reason: S,
    },
    /// The schedd's final ruling on an execution report.
    Disposition {
        /// Which job.
        job: u64,
        /// The disposition name (`return-completed`, `log-and-reschedule`…).
        disposition: S,
        /// The scope that drove the ruling.
        scope: S,
        /// The error journey that ended here ([`crate::NO_SPAN`] when the
        /// outcome carried no scoped error — completions, naive exits).
        span: SpanId,
    },
    /// One remote I/O operation observed at the Chirp boundary.
    IoOp {
        /// The operation name (`open`, `read`, `write`…).
        op: String,
        /// How it went.
        outcome: IoOutcome,
    },
    /// An error-scope principle was violated.
    Violation {
        /// Which principle (1–4).
        principle: u8,
        /// The machine whose report exposed the breach (0 when the
        /// violation is not attributable to one).
        machine: u64,
        /// What happened.
        detail: String,
    },
    /// A checkpoint of `job` was written to the checkpoint server.
    CheckpointTaken {
        /// Which job.
        job: u64,
        /// The machine that took the checkpoint.
        machine: u64,
        /// Size of the serialized image.
        bytes: u64,
        /// Progress banked by this checkpoint, in simulated microseconds.
        banked_us: u64,
    },
    /// A resumed activation restored `job` from a stored checkpoint.
    CheckpointRestored {
        /// Which job.
        job: u64,
        /// The machine that resumed it.
        machine: u64,
        /// Work recovered instead of recomputed, in simulated microseconds.
        saved_us: u64,
    },
    /// A stored checkpoint failed validation and was discarded — an
    /// *explicit* checkpoint-scope error. The job cold-restarts; the
    /// corruption never surfaces inside the resumed program.
    CheckpointDiscarded {
        /// Which job.
        job: u64,
        /// The machine that rejected the image.
        machine: u64,
        /// The validation failure, human-readable.
        reason: String,
    },
    /// A claim lease expired: heartbeats stopped flowing for longer than
    /// the lease timeout, converting a *silent* partition into an explicit
    /// scope-of-the-claim error on one side of the claim.
    LeaseExpired {
        /// Which job.
        job: u64,
        /// The machine holding (or held by) the claim.
        machine: u64,
        /// Which side noticed: `"schedd"` or `"startd"`.
        side: String,
    },
    /// A message stamped with a stale claim epoch was rejected and counted
    /// instead of acted on (late report, duplicated frame, resurrected
    /// partition).
    StaleEpochDropped {
        /// Which job the message referred to.
        job: u64,
        /// What kind of message carried the stale stamp (`"report"`,
        /// `"heartbeat"`, `"activation"`…).
        kind: String,
        /// The epoch stamped on the message.
        got: u64,
        /// The claim's current epoch at the receiver.
        current: u64,
    },
    /// A per-machine circuit breaker changed state.
    BreakerStateChange {
        /// The machine whose health the breaker tracks.
        machine: u64,
        /// The state it left (`"closed"`, `"open"`, `"half-open"`).
        from: String,
        /// The state it entered.
        to: String,
    },
    /// A scheduled network fault crossed a window edge and was applied to
    /// (or removed from) the fabric.
    NetFaultApplied {
        /// The fault kind: `"partition"`, `"loss"`, `"latency"`,
        /// `"duplication"`.
        kind: String,
        /// The affected link, as `"a-b"` (undirected host pair).
        link: String,
        /// `true` when entering the window, `false` when leaving it.
        active: bool,
    },
    /// A memory bit-flip was injected into live state — the fault
    /// campaign's silent-data-corruption model (a DRAM fault the scrubber
    /// logged). Unlike [`Event::NetFaultApplied`], this is evidence a real
    /// post-mortem could hold: hardware error logs exist, so the localizer
    /// is allowed to read it.
    MemFlip {
        /// The job whose state was hit.
        job: u64,
        /// The actor id of the host where the flip landed (the restoring
        /// machine for a heap flip, the checkpoint server for an image
        /// flip).
        machine: u64,
        /// What was hit: `"heap-word"` (live VM heap, post-validation) or
        /// `"ckpt-image"` (stored checkpoint bytes, pre-validation).
        target: String,
        /// The absolute bit index that changed within the target.
        bit: u64,
    },
    /// A remote-pool interaction failed during flocking — saturation,
    /// an unreachable matchmaker, a revoked flock claim, or silence on
    /// an inter-pool link — and the schedd converted it into an explicit
    /// pool-scope error instead of hanging.
    FlockFault {
        /// The job whose flock attempt (or remote claim) was hit.
        job: u64,
        /// The remote pool the failure is attributed to.
        pool: u64,
        /// What failed: `"saturated"`, `"unreachable"`, `"revoked"`,
        /// `"lease"`, or `"claim"`.
        kind: String,
    },
    /// One hop of an error's journey through the layer stack.
    SpanHop {
        /// The journey this hop belongs to.
        span: SpanId,
        /// The layer where it happened.
        layer: String,
        /// What the layer did.
        action: SpanAction,
        /// The error's scope name *after* the action.
        scope: String,
    },
}

impl<S> Event<S> {
    /// The event's wire name (the `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Claim { .. } => "claim",
            Event::Dispatch { .. } => "dispatch",
            Event::Match { .. } => "match",
            Event::Escape { .. } => "escape",
            Event::Reschedule { .. } => "reschedule",
            Event::Disposition { .. } => "disposition",
            Event::IoOp { .. } => "io-op",
            Event::Violation { .. } => "violation",
            Event::CheckpointTaken { .. } => "ckpt-taken",
            Event::CheckpointRestored { .. } => "ckpt-restored",
            Event::CheckpointDiscarded { .. } => "ckpt-discarded",
            Event::LeaseExpired { .. } => "lease-expired",
            Event::StaleEpochDropped { .. } => "stale-epoch-dropped",
            Event::BreakerStateChange { .. } => "breaker-state-change",
            Event::NetFaultApplied { .. } => "net-fault-applied",
            Event::MemFlip { .. } => "mem-flip",
            Event::FlockFault { .. } => "flock-fault",
            Event::SpanHop { .. } => "span-hop",
        }
    }

    /// The span this event belongs to, if any.
    pub fn span(&self) -> Option<SpanId> {
        match self {
            Event::Escape { span, .. } | Event::SpanHop { span, .. } => Some(*span),
            Event::Disposition { span, .. } if *span != crate::NO_SPAN => Some(*span),
            _ => None,
        }
    }

    /// Rebuild the event with every hot string field mapped through `f`,
    /// leaving all other fields untouched. This is the one exhaustive
    /// match both directions of the `String`↔[`Sym`] conversion share.
    pub fn map_strings<T>(self, mut f: impl FnMut(S) -> T) -> Event<T> {
        match self {
            Event::Claim {
                job,
                machine,
                outcome,
            } => Event::Claim {
                job,
                machine,
                outcome,
            },
            Event::Dispatch { job, machine } => Event::Dispatch { job, machine },
            Event::Match { job, machine } => Event::Match { job, machine },
            Event::Escape {
                span,
                layer,
                code,
                scope,
            } => Event::Escape {
                span,
                layer: f(layer),
                code: f(code),
                scope: f(scope),
            },
            Event::Reschedule {
                job,
                machine,
                reason,
            } => Event::Reschedule {
                job,
                machine,
                reason: f(reason),
            },
            Event::Disposition {
                job,
                disposition,
                scope,
                span,
            } => Event::Disposition {
                job,
                disposition: f(disposition),
                scope: f(scope),
                span,
            },
            Event::IoOp { op, outcome } => Event::IoOp { op, outcome },
            Event::Violation {
                principle,
                machine,
                detail,
            } => Event::Violation {
                principle,
                machine,
                detail,
            },
            Event::CheckpointTaken {
                job,
                machine,
                bytes,
                banked_us,
            } => Event::CheckpointTaken {
                job,
                machine,
                bytes,
                banked_us,
            },
            Event::CheckpointRestored {
                job,
                machine,
                saved_us,
            } => Event::CheckpointRestored {
                job,
                machine,
                saved_us,
            },
            Event::CheckpointDiscarded {
                job,
                machine,
                reason,
            } => Event::CheckpointDiscarded {
                job,
                machine,
                reason,
            },
            Event::LeaseExpired { job, machine, side } => {
                Event::LeaseExpired { job, machine, side }
            }
            Event::StaleEpochDropped {
                job,
                kind,
                got,
                current,
            } => Event::StaleEpochDropped {
                job,
                kind,
                got,
                current,
            },
            Event::BreakerStateChange { machine, from, to } => {
                Event::BreakerStateChange { machine, from, to }
            }
            Event::NetFaultApplied { kind, link, active } => {
                Event::NetFaultApplied { kind, link, active }
            }
            Event::MemFlip {
                job,
                machine,
                target,
                bit,
            } => Event::MemFlip {
                job,
                machine,
                target,
                bit,
            },
            Event::FlockFault { job, pool, kind } => Event::FlockFault { job, pool, kind },
            Event::SpanHop {
                span,
                layer,
                action,
                scope,
            } => Event::SpanHop {
                span,
                layer,
                action,
                scope,
            },
        }
    }

    /// Append this event as a JSON object to `out`, resolving hot string
    /// fields through `res`. The byte output is identical for the owned
    /// and interned instantiations.
    pub(crate) fn write_json_with<R: ResolveStr<S>>(&self, res: &R, out: &mut String) {
        out.push_str("{\"type\":\"");
        out.push_str(self.kind());
        out.push('"');
        let field_u64 = |out: &mut String, k: &str, v: u64| {
            out.push(',');
            json::write_key(out, k);
            out.push_str(&v.to_string());
        };
        let field_str = |out: &mut String, k: &str, v: &str| {
            out.push(',');
            json::write_key(out, k);
            json::write_str(out, v);
        };
        match self {
            Event::Claim {
                job,
                machine,
                outcome,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_str(out, "outcome", outcome.name());
                if let ClaimOutcome::Rejected { reason } = outcome {
                    field_str(out, "reason", reason);
                }
            }
            Event::Dispatch { job, machine } | Event::Match { job, machine } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
            }
            Event::Escape {
                span,
                layer,
                code,
                scope,
            } => {
                field_u64(out, "span", *span);
                field_str(out, "layer", res.str(layer));
                field_str(out, "code", res.str(code));
                field_str(out, "scope", res.str(scope));
            }
            Event::Reschedule {
                job,
                machine,
                reason,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_str(out, "reason", res.str(reason));
            }
            Event::Disposition {
                job,
                disposition,
                scope,
                span,
            } => {
                field_u64(out, "job", *job);
                field_str(out, "disposition", res.str(disposition));
                field_str(out, "scope", res.str(scope));
                field_u64(out, "span", *span);
            }
            Event::IoOp { op, outcome } => {
                field_str(out, "op", op);
                field_str(out, "outcome", outcome.name());
                match outcome {
                    IoOutcome::Ok => {}
                    IoOutcome::Error { code } | IoOutcome::Escaped { code } => {
                        field_str(out, "code", code);
                    }
                }
            }
            Event::Violation {
                principle,
                machine,
                detail,
            } => {
                field_u64(out, "principle", u64::from(*principle));
                field_u64(out, "machine", *machine);
                field_str(out, "detail", detail);
            }
            Event::CheckpointTaken {
                job,
                machine,
                bytes,
                banked_us,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_u64(out, "bytes", *bytes);
                field_u64(out, "banked_us", *banked_us);
            }
            Event::CheckpointRestored {
                job,
                machine,
                saved_us,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_u64(out, "saved_us", *saved_us);
            }
            Event::CheckpointDiscarded {
                job,
                machine,
                reason,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_str(out, "reason", reason);
            }
            Event::LeaseExpired { job, machine, side } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_str(out, "side", side);
            }
            Event::StaleEpochDropped {
                job,
                kind,
                got,
                current,
            } => {
                field_u64(out, "job", *job);
                field_str(out, "kind", kind);
                field_u64(out, "got", *got);
                field_u64(out, "current", *current);
            }
            Event::BreakerStateChange { machine, from, to } => {
                field_u64(out, "machine", *machine);
                field_str(out, "from", from);
                field_str(out, "to", to);
            }
            Event::NetFaultApplied { kind, link, active } => {
                field_str(out, "kind", kind);
                field_str(out, "link", link);
                out.push(',');
                json::write_key(out, "active");
                out.push_str(if *active { "true" } else { "false" });
            }
            Event::MemFlip {
                job,
                machine,
                target,
                bit,
            } => {
                field_u64(out, "job", *job);
                field_u64(out, "machine", *machine);
                field_str(out, "target", target);
                field_u64(out, "bit", *bit);
            }
            Event::FlockFault { job, pool, kind } => {
                field_u64(out, "job", *job);
                field_u64(out, "pool", *pool);
                field_str(out, "kind", kind);
            }
            Event::SpanHop {
                span,
                layer,
                action,
                scope,
            } => {
                field_u64(out, "span", *span);
                field_str(out, "layer", layer);
                field_str(out, "action", action.name());
                match action {
                    SpanAction::Widened { from } => field_str(out, "from", from),
                    SpanAction::Masked { technique } => field_str(out, "technique", technique),
                    _ => {}
                }
                field_str(out, "scope", scope);
            }
        }
        out.push('}');
    }
}

impl Event {
    /// Append this event as a JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        self.write_json_with(&PlainStr, out)
    }

    /// Intern the hot string fields into `interner`, producing the
    /// collector's compact storage form.
    pub fn intern_strings(self, interner: &mut Interner) -> Event<Sym> {
        self.map_strings(|s| interner.intern(&s))
    }

    /// Reconstruct an event from a parsed JSON object.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("event missing \"type\"")?;
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} event missing integer \"{k}\""))
        };
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} event missing string \"{k}\""))
        };
        match kind {
            "claim" => {
                let outcome = match s("outcome")?.as_str() {
                    "requested" => ClaimOutcome::Requested,
                    "accepted" => ClaimOutcome::Accepted,
                    "rejected" => ClaimOutcome::Rejected {
                        reason: s("reason")?,
                    },
                    "timed-out" => ClaimOutcome::TimedOut,
                    other => return Err(format!("unknown claim outcome {other:?}")),
                };
                Ok(Event::Claim {
                    job: u("job")?,
                    machine: u("machine")?,
                    outcome,
                })
            }
            "dispatch" => Ok(Event::Dispatch {
                job: u("job")?,
                machine: u("machine")?,
            }),
            "match" => Ok(Event::Match {
                job: u("job")?,
                machine: u("machine")?,
            }),
            "escape" => Ok(Event::Escape {
                span: u("span")?,
                layer: s("layer")?,
                code: s("code")?,
                scope: s("scope")?,
            }),
            "reschedule" => Ok(Event::Reschedule {
                job: u("job")?,
                machine: u("machine")?,
                reason: s("reason")?,
            }),
            "disposition" => Ok(Event::Disposition {
                job: u("job")?,
                disposition: s("disposition")?,
                scope: s("scope")?,
                span: u("span")?,
            }),
            "io-op" => {
                let outcome = match s("outcome")?.as_str() {
                    "ok" => IoOutcome::Ok,
                    "error" => IoOutcome::Error { code: s("code")? },
                    "escaped" => IoOutcome::Escaped { code: s("code")? },
                    other => return Err(format!("unknown io outcome {other:?}")),
                };
                Ok(Event::IoOp {
                    op: s("op")?,
                    outcome,
                })
            }
            "violation" => {
                let p = u("principle")?;
                Ok(Event::Violation {
                    principle: u8::try_from(p)
                        .map_err(|_| format!("principle {p} out of range"))?,
                    machine: u("machine").unwrap_or(0),
                    detail: s("detail")?,
                })
            }
            "ckpt-taken" => Ok(Event::CheckpointTaken {
                job: u("job")?,
                machine: u("machine")?,
                bytes: u("bytes")?,
                banked_us: u("banked_us")?,
            }),
            "ckpt-restored" => Ok(Event::CheckpointRestored {
                job: u("job")?,
                machine: u("machine")?,
                saved_us: u("saved_us")?,
            }),
            "ckpt-discarded" => Ok(Event::CheckpointDiscarded {
                job: u("job")?,
                machine: u("machine")?,
                reason: s("reason")?,
            }),
            "lease-expired" => Ok(Event::LeaseExpired {
                job: u("job")?,
                machine: u("machine")?,
                side: s("side")?,
            }),
            "stale-epoch-dropped" => Ok(Event::StaleEpochDropped {
                job: u("job")?,
                kind: s("kind")?,
                got: u("got")?,
                current: u("current")?,
            }),
            "breaker-state-change" => Ok(Event::BreakerStateChange {
                machine: u("machine")?,
                from: s("from")?,
                to: s("to")?,
            }),
            "net-fault-applied" => Ok(Event::NetFaultApplied {
                kind: s("kind")?,
                link: s("link")?,
                active: v
                    .get("active")
                    .and_then(Json::as_bool)
                    .ok_or("net-fault-applied event missing boolean \"active\"")?,
            }),
            "mem-flip" => Ok(Event::MemFlip {
                job: u("job")?,
                machine: u("machine")?,
                target: s("target")?,
                bit: u("bit")?,
            }),
            "flock-fault" => Ok(Event::FlockFault {
                job: u("job")?,
                pool: u("pool")?,
                kind: s("kind")?,
            }),
            "span-hop" => {
                let action = match s("action")?.as_str() {
                    "raised" => SpanAction::Raised,
                    "forwarded" => SpanAction::Forwarded,
                    "widened" => SpanAction::Widened { from: s("from")? },
                    "escaped" => SpanAction::Escaped,
                    "reexpressed" => SpanAction::Reexpressed,
                    "masked" => SpanAction::Masked {
                        technique: s("technique")?,
                    },
                    "handled" => SpanAction::Handled,
                    "swallowed" => SpanAction::Swallowed,
                    other => return Err(format!("unknown span action {other:?}")),
                };
                Ok(Event::SpanHop {
                    span: u("span")?,
                    layer: s("layer")?,
                    action,
                    scope: s("scope")?,
                })
            }
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

impl Event<Sym> {
    /// Resolve the hot string fields back out of `interner`, producing an
    /// owned event equal to the one originally recorded.
    pub fn resolve_strings(&self, interner: &Interner) -> Event {
        self.clone()
            .map_strings(|s| interner.resolve(s).to_string())
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Claim {
                job,
                machine,
                outcome,
            } => match outcome {
                ClaimOutcome::Rejected { reason } => {
                    write!(f, "claim job={job} machine={machine} rejected: {reason}")
                }
                o => write!(f, "claim job={job} machine={machine} {}", o.name()),
            },
            Event::Dispatch { job, machine } => {
                write!(f, "dispatch job={job} machine={machine}")
            }
            Event::Match { job, machine } => {
                write!(f, "match job={job} machine={machine}")
            }
            Event::Escape {
                span,
                layer,
                code,
                scope,
            } => write!(f, "escape span={span} at {layer}: {code} [{scope}]"),
            Event::Reschedule {
                job,
                machine,
                reason,
            } => write!(f, "reschedule job={job} from machine={machine}: {reason}"),
            Event::Disposition {
                job,
                disposition,
                scope,
                span,
            } => write!(
                f,
                "disposition job={job} {disposition} [{scope}] span={span}"
            ),
            Event::IoOp { op, outcome } => match outcome {
                IoOutcome::Ok => write!(f, "io {op} ok"),
                IoOutcome::Error { code } => write!(f, "io {op} error: {code}"),
                IoOutcome::Escaped { code } => write!(f, "io {op} escaped: {code}"),
            },
            Event::Violation {
                principle,
                machine,
                detail,
            } => {
                write!(f, "violation P{principle} machine={machine}: {detail}")
            }
            Event::CheckpointTaken {
                job,
                machine,
                bytes,
                banked_us,
            } => write!(
                f,
                "ckpt taken job={job} machine={machine} {bytes}B banked={banked_us}us"
            ),
            Event::CheckpointRestored {
                job,
                machine,
                saved_us,
            } => write!(
                f,
                "ckpt restored job={job} machine={machine} saved={saved_us}us"
            ),
            Event::CheckpointDiscarded {
                job,
                machine,
                reason,
            } => write!(f, "ckpt discarded job={job} machine={machine}: {reason}"),
            Event::LeaseExpired { job, machine, side } => {
                write!(
                    f,
                    "lease expired job={job} machine={machine} seen-by={side}"
                )
            }
            Event::StaleEpochDropped {
                job,
                kind,
                got,
                current,
            } => write!(
                f,
                "stale epoch dropped job={job} {kind} got={got} current={current}"
            ),
            Event::BreakerStateChange { machine, from, to } => {
                write!(f, "breaker machine={machine} {from} -> {to}")
            }
            Event::NetFaultApplied { kind, link, active } => write!(
                f,
                "net fault {kind} link={link} {}",
                if *active { "applied" } else { "cleared" }
            ),
            Event::MemFlip {
                job,
                machine,
                target,
                bit,
            } => write!(f, "mem flip job={job} machine={machine} {target} bit={bit}"),
            Event::FlockFault { job, pool, kind } => {
                write!(f, "flock fault job={job} pool={pool} {kind}")
            }
            Event::SpanHop {
                span,
                layer,
                action,
                scope,
            } => write!(f, "span={span} {action} at {layer} [{scope}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: Event) {
        let mut doc = String::new();
        e.write_json(&mut doc);
        let parsed = Event::from_json(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(parsed, e, "document was {doc}");

        // Byte identity: re-serializing the parsed event reproduces the
        // original document exactly, so the parser can never drift from
        // the writer.
        let mut redoc = String::new();
        parsed.write_json(&mut redoc);
        assert_eq!(redoc, doc, "reserialization must be byte-identical");

        // The interned form serializes to the same bytes, and resolving
        // it recovers the original event.
        let mut interner = Interner::new();
        let interned = e.clone().intern_strings(&mut interner);
        let mut idoc = String::new();
        interned.write_json_with(&interner, &mut idoc);
        assert_eq!(idoc, doc, "interned serialization must be byte-identical");
        assert_eq!(interned.resolve_strings(&interner), e);
        assert_eq!(interned.kind(), e.kind());
        assert_eq!(interned.span(), e.span());
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Event::Claim {
            job: 1,
            machine: 3,
            outcome: ClaimOutcome::Requested,
        });
        round_trip(Event::Claim {
            job: 1,
            machine: 3,
            outcome: ClaimOutcome::Rejected {
                reason: "busy \"again\"".into(),
            },
        });
        round_trip(Event::Dispatch { job: 2, machine: 4 });
        round_trip(Event::Match { job: 2, machine: 4 });
        round_trip(Event::Escape {
            span: 9,
            layer: "io-library".into(),
            code: "FilesystemOffline".into(),
            scope: "local-resource".into(),
        });
        round_trip(Event::Reschedule {
            job: 5,
            machine: 2,
            reason: "machine vanished".into(),
        });
        round_trip(Event::Disposition {
            job: 5,
            disposition: "log-and-reschedule".into(),
            scope: "remote-resource".into(),
            span: 9,
        });
        round_trip(Event::IoOp {
            op: "read".into(),
            outcome: IoOutcome::Escaped {
                code: "ConnectionTimedOut".into(),
            },
        });
        round_trip(Event::Violation {
            principle: 1,
            machine: 4,
            detail: "swallowed at jvm".into(),
        });
        round_trip(Event::CheckpointTaken {
            job: 3,
            machine: 2,
            bytes: 4096,
            banked_us: 1_500_000,
        });
        round_trip(Event::CheckpointRestored {
            job: 3,
            machine: 4,
            saved_us: 1_500_000,
        });
        round_trip(Event::CheckpointDiscarded {
            job: 3,
            machine: 4,
            reason: "checksum mismatch".into(),
        });
        round_trip(Event::LeaseExpired {
            job: 4,
            machine: 6,
            side: "schedd".into(),
        });
        round_trip(Event::StaleEpochDropped {
            job: 4,
            kind: "report".into(),
            got: 2,
            current: 3,
        });
        round_trip(Event::BreakerStateChange {
            machine: 6,
            from: "closed".into(),
            to: "open".into(),
        });
        round_trip(Event::NetFaultApplied {
            kind: "partition".into(),
            link: "1-5".into(),
            active: true,
        });
        round_trip(Event::NetFaultApplied {
            kind: "loss".into(),
            link: "1-2".into(),
            active: false,
        });
        round_trip(Event::MemFlip {
            job: 4,
            machine: 2,
            target: "heap-word".into(),
            bit: 257,
        });
        round_trip(Event::MemFlip {
            job: 9,
            machine: 7,
            target: "ckpt-image".into(),
            bit: 40,
        });
        round_trip(Event::FlockFault {
            job: 3,
            pool: 2,
            kind: "unreachable".into(),
        });
        round_trip(Event::FlockFault {
            job: 4,
            pool: 1,
            kind: "saturated".into(),
        });
        round_trip(Event::SpanHop {
            span: 7,
            layer: "rpc".into(),
            action: SpanAction::Widened {
                from: "network".into(),
            },
            scope: "process".into(),
        });
        round_trip(Event::SpanHop {
            span: 7,
            layer: "shadow".into(),
            action: SpanAction::Handled,
            scope: "local-resource".into(),
        });
    }

    #[test]
    fn span_accessor_finds_span_events() {
        let hop: Event = Event::SpanHop {
            span: 3,
            layer: "x".into(),
            action: SpanAction::Raised,
            scope: "job".into(),
        };
        assert_eq!(hop.span(), Some(3));
        let dispatch: Event = Event::Dispatch { job: 1, machine: 2 };
        assert_eq!(dispatch.span(), None);
        // A no-span disposition is not part of any journey.
        let no_span: Event = Event::Disposition {
            job: 1,
            disposition: "return-completed".into(),
            scope: "program".into(),
            span: crate::NO_SPAN,
        };
        assert_eq!(no_span.span(), None);
    }
}
