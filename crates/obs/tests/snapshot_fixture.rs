//! Regression guard for the metrics snapshot wire format.
//!
//! The fixture in `tests/fixtures/registry_snapshot.json` was generated
//! from the pre-interning `Registry` (string-keyed `BTreeMap`s). The
//! interned registry must keep `snapshot_json` byte-identical: same entry
//! order (sorted by name, then labels), same escaping, same number
//! formatting. Regenerate with `REGEN_FIXTURES=1 cargo test -p obs`.

use obs::Registry;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/registry_snapshot.json"
);

/// A registry touching every serialization path: plain and labeled
/// counters (inserted out of label order), multi-label keys, gauges
/// (finite and non-finite), histograms (zero, huge, and mid-range
/// samples), and strings that need JSON escaping.
fn sample_registry() -> Registry {
    let mut r = Registry::new();
    r.counter_add("jobs_completed", &[], 7);
    r.counter_add("outcomes", &[("scope", "program")], 3);
    r.counter_add("outcomes", &[("scope", "local-resource")], 2);
    r.counter_add("net_msgs_dropped", &[("link", "1-5")], 11);
    // Labels given unsorted; the snapshot must sort them.
    r.counter_add("x", &[("b", "2"), ("a", "1")], 1);
    r.counter_add("escape\"me", &[("k\\ey", "v\"al")], 9);
    r.gauge_set("cpu_efficiency", &[], 0.875);
    r.gauge_set("advertising_java", &[("machine", "ws0")], 1.0);
    r.gauge_set("broken", &[], f64::NAN);
    r.observe("attempt_cpu_us", &[("scope", "program")], 0);
    r.observe("attempt_cpu_us", &[("scope", "program")], 120_000_000);
    r.observe("attempt_cpu_us", &[("scope", "network")], 1023);
    r.observe("attempt_cpu_us", &[("scope", "network")], 1024);
    r.observe("huge", &[], u64::MAX);
    r
}

#[test]
fn snapshot_json_matches_committed_fixture() {
    let got = sample_registry().snapshot_json();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE).expect("fixture present");
    assert_eq!(
        got, want,
        "Registry::snapshot_json drifted from the committed wire format"
    );
}

#[test]
fn snapshot_fixture_parses_as_json() {
    let doc = sample_registry().snapshot_json();
    let v = obs::json::parse(&doc).expect("snapshot parses");
    assert_eq!(v.get("counters").unwrap().as_arr().unwrap().len(), 6);
    assert_eq!(v.get("gauges").unwrap().as_arr().unwrap().len(), 3);
    assert_eq!(v.get("histograms").unwrap().as_arr().unwrap().len(), 3);
}
